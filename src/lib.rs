//! Facade crate for the transactional-mobility pub/sub workspace.
//!
//! Re-exports every layer under one roof so the examples (and
//! downstream users) can write `transmob::broker::...` instead of
//! depending on each `transmob-*` crate individually.
//!
//! * [`pubsub`] — content-based data model: values, predicates,
//!   filters, publications, and the counting match index.
//! * [`broker`] — routing tables (SRT/PRT), the broker core, covering
//!   optimizations, and the synchronous test network.
//! * [`core`] — the movement transaction: coordinator protocol,
//!   mobile-client stub, model checker.
//! * [`sim`] — discrete-event simulator and metrics.
//! * [`workloads`] — paper-style workload generators.
//! * [`runtime`] — threaded/TCP runtimes driving real brokers.
//! * [`bench`] — shared benchmark harness helpers.

pub use transmob_bench as bench;
pub use transmob_broker as broker;
pub use transmob_core as core;
pub use transmob_pubsub as pubsub;
pub use transmob_runtime as runtime;
pub use transmob_sim as sim;
pub use transmob_workloads as workloads;
