//! Game-world migration: the paper's motivating multiplayer-game
//! scenario (Sec. 1).
//!
//! A *zone manager* component owns a region of the game world. It
//! subscribes to player actions in its zone and publishes world-state
//! updates. When the player population shifts toward another part of
//! the network, the zone manager migrates — as a pub/sub client — to a
//! broker closer to the players, using the transactional movement
//! protocol. Players observe a seamless stream of world updates:
//! nothing lost, nothing duplicated, and at no point are there two
//! active zone managers (the paper's consistency property).
//!
//! ```text
//! cargo run --example game_world_migration
//! ```

use std::time::Duration;

use transmob::broker::Topology;
use transmob::core::{MobileBrokerConfig, ProtocolKind};
use transmob::pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob::runtime::Network;
use transmob::workloads::default_14;

fn main() {
    // The paper's default 14-broker overlay (Fig. 6).
    let net = Network::builder()
        .overlay(default_14())
        .options(MobileBrokerConfig::reconfig())
        .start();
    let _ = Topology::chain(2); // (see transmob::broker for custom overlays)

    // The zone manager starts near the original player hotspot (B2).
    let manager = net.create_client(BrokerId(2), ClientId(100));
    manager.subscribe(
        Filter::builder()
            .eq("zone", "emerald-forest")
            .any("action")
            .build(),
    );
    manager.advertise(
        Filter::builder()
            .eq("zone", "emerald-forest")
            .any("tick")
            .build(),
    );

    // Two players: one near the old hotspot, one far away (B13).
    let near = net.create_client(BrokerId(1), ClientId(1));
    let far = net.create_client(BrokerId(13), ClientId(2));
    for p in [&near, &far] {
        p.advertise(
            Filter::builder()
                .eq("zone", "emerald-forest")
                .any("action")
                .build(),
        );
        p.subscribe(
            Filter::builder()
                .eq("zone", "emerald-forest")
                .any("tick")
                .build(),
        );
    }
    std::thread::sleep(Duration::from_millis(150));

    let act = |who: u32, what: &str| {
        Publication::new()
            .with("zone", "emerald-forest")
            .with("action", what)
            .with("player", i64::from(who))
    };
    let tick = |n: i64| {
        Publication::new()
            .with("zone", "emerald-forest")
            .with("tick", n)
    };

    // Phase 1: players act, the manager reacts with world ticks.
    near.publish(act(1, "chop-tree"));
    far.publish(act(2, "light-fire"));
    let mut actions_seen = 0;
    while manager.recv_timeout(Duration::from_millis(500)).is_some() {
        actions_seen += 1;
    }
    println!("manager saw {actions_seen} player actions at B2");
    manager.publish(tick(1));

    // Phase 2: the population shifted toward B13 — migrate the zone
    // manager there, transactionally.
    let ok = manager.move_to(BrokerId(13), ProtocolKind::Reconfig, Duration::from_secs(5));
    println!("zone manager migrated to B13: {ok}");
    assert!(ok);

    // Phase 3: play continues; the far player's actions now reach the
    // manager over one hop instead of crossing the backbone.
    far.publish(act(2, "build-hut"));
    let seen = manager
        .recv_timeout(Duration::from_secs(2))
        .expect("action after migration");
    println!("manager saw after migration: {seen}");
    manager.publish(tick(2));

    // Both players received every tick exactly once.
    std::thread::sleep(Duration::from_millis(200));
    for (name, p) in [("near", &near), ("far", &far)] {
        let ticks = p.drain();
        let unique: std::collections::BTreeSet<_> = ticks.iter().map(|t| t.id).collect();
        println!(
            "player {name}: {} ticks, {} unique",
            ticks.len(),
            unique.len()
        );
        assert_eq!(ticks.len(), 2, "player {name} missed a tick");
        assert_eq!(unique.len(), 2, "player {name} saw duplicates");
    }

    net.shutdown();
    println!("done: world migrated with no loss, no duplicates");
}
