//! Stream-operator relocation: the paper's adaptive stream-processing
//! scenario (Sec. 1, [13][20]).
//!
//! A dataflow `filter → aggregate` pipeline runs over the pub/sub
//! network: a *source* publishes raw readings, an *aggregate operator*
//! (subscriber **and** publisher) consumes them and emits windowed
//! averages, and a *sink* consumes the averages. The query planner
//! decides the operator should run closer to the source and relocates
//! it with the transactional protocol — exercising simultaneous
//! subscriber *and* publisher mobility for one client.
//!
//! ```text
//! cargo run --example stream_operator_relocation
//! ```

use std::time::Duration;

use transmob::broker::Topology;
use transmob::core::{MobileBrokerConfig, ProtocolKind};
use transmob::pubsub::{BrokerId, ClientId, Filter, Publication, Value};
use transmob::runtime::Network;

fn main() {
    // A chain: source side (B1) — middle (B3) — sink side (B5).
    let net = Network::builder()
        .overlay(Topology::chain(5))
        .options(MobileBrokerConfig::reconfig())
        .start();

    let source = net.create_client(BrokerId(1), ClientId(1));
    let operator = net.create_client(BrokerId(5), ClientId(2)); // starts at the sink side
    let sink = net.create_client(BrokerId(5), ClientId(3));

    source.advertise(
        Filter::builder()
            .eq("stream", "temps")
            .any("celsius")
            .build(),
    );
    operator.subscribe(
        Filter::builder()
            .eq("stream", "temps")
            .ge("celsius", -50)
            .build(),
    );
    operator.advertise(
        Filter::builder()
            .eq("stream", "avg-temps")
            .any("avg")
            .build(),
    );
    sink.subscribe(
        Filter::builder()
            .eq("stream", "avg-temps")
            .any("avg")
            .build(),
    );
    std::thread::sleep(Duration::from_millis(100));

    let reading = |c: i64| {
        Publication::new()
            .with("stream", "temps")
            .with("celsius", c)
    };

    // Window 1 processed at the sink side.
    let mut window = Vec::new();
    for c in [20, 22, 24] {
        source.publish(reading(c));
    }
    for _ in 0..3 {
        let r = operator
            .recv_timeout(Duration::from_secs(2))
            .expect("reading");
        if let Some(Value::Int(c)) = r.content.get("celsius").cloned() {
            window.push(c);
        }
    }
    let avg1 = window.iter().sum::<i64>() / window.len() as i64;
    operator.publish(
        Publication::new()
            .with("stream", "avg-temps")
            .with("avg", avg1)
            .with("window", 1),
    );
    println!("window 1 avg={avg1} computed at B5");

    // The planner relocates the operator next to the source. Readings
    // published while the operator is in transit are buffered by the
    // movement transaction and replayed at the new site.
    operator.move_to_async(BrokerId(1), ProtocolKind::Reconfig);
    for c in [30, 32, 34] {
        source.publish(reading(c));
    }
    let outcome = operator
        .next_move_outcome(Duration::from_secs(5))
        .expect("movement finished");
    assert!(outcome.committed);
    println!("operator relocated to B1 (transaction {})", outcome.m);

    // Window 2 processed at the source side — including the readings
    // published mid-flight.
    let mut window = Vec::new();
    for _ in 0..3 {
        let r = operator
            .recv_timeout(Duration::from_secs(2))
            .expect("reading after relocation");
        if let Some(Value::Int(c)) = r.content.get("celsius").cloned() {
            window.push(c);
        }
    }
    let avg2 = window.iter().sum::<i64>() / window.len() as i64;
    operator.publish(
        Publication::new()
            .with("stream", "avg-temps")
            .with("avg", avg2)
            .with("window", 2),
    );
    println!("window 2 avg={avg2} computed at B1 (no readings lost in transit)");

    // The sink saw both windows exactly once.
    let w1 = sink.recv_timeout(Duration::from_secs(2)).expect("window 1");
    let w2 = sink.recv_timeout(Duration::from_secs(2)).expect("window 2");
    println!("sink received: {w1}");
    println!("sink received: {w2}");
    assert!(sink.try_recv().is_none(), "sink saw duplicates");

    net.shutdown();
    println!("done");
}
