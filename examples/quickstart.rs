//! Quickstart: a three-broker overlay, one publisher, one subscriber,
//! and a transactional movement of the subscriber between brokers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use transmob::broker::Topology;
use transmob::core::{MobileBrokerConfig, ProtocolKind};
use transmob::pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob::runtime::Network;

fn main() {
    // A chain of three brokers: B1 - B2 - B3.
    let net = Network::builder()
        .overlay(Topology::chain(3))
        .options(MobileBrokerConfig::reconfig())
        .start();

    // A publisher of stock quotes at B1 and a subscriber at B3.
    let publisher = net.create_client(BrokerId(1), ClientId(1));
    let subscriber = net.create_client(BrokerId(3), ClientId(2));

    publisher.advertise(Filter::builder().eq("symbol", "IBM").ge("price", 0).build());
    subscriber.subscribe(
        Filter::builder()
            .eq("symbol", "IBM")
            .lt("price", 100)
            .build(),
    );
    std::thread::sleep(Duration::from_millis(100)); // let routing settle

    publisher.publish(Publication::new().with("symbol", "IBM").with("price", 88));
    let quote = subscriber
        .recv_timeout(Duration::from_secs(2))
        .expect("first quote delivered");
    println!("received before move: {quote}");

    // Transactionally move the subscriber to B2. The reconfiguration
    // protocol rewrites routing state hop-by-hop along the B3→B2 path;
    // the subscriber misses nothing and sees no duplicates.
    let committed = subscriber.move_to(BrokerId(2), ProtocolKind::Reconfig, Duration::from_secs(5));
    println!("movement committed: {committed}");
    assert!(committed);

    publisher.publish(Publication::new().with("symbol", "IBM").with("price", 91));
    let quote = subscriber
        .recv_timeout(Duration::from_secs(2))
        .expect("second quote delivered at the new broker");
    println!("received after move:  {quote}");

    net.shutdown();
    println!("done");
}
