//! Protocol comparison: a condensed version of the paper's Fig. 9
//! experiment on the discrete-event testbed.
//!
//! Runs both movement protocols over the paper's 14-broker overlay
//! with each Fig. 7 subscription workload and prints the movement
//! latency and normalized message overhead side by side — the
//! reconfiguration protocol stays flat while the covering protocol
//! degrades as the workload's covering density grows.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use transmob::core::ProtocolKind;
use transmob::sim::SimDuration;
use transmob::workloads::{default_14, paper_default, SubWorkload};
use transmob_bench::{run_experiment, ExperimentConfig};

fn main() {
    println!("paper Fig. 9 (condensed): 100 clients ping-pong B1<->B13 / B2<->B14\n");
    println!(
        "{:<10} {:>4}  {:>22}  {:>22}",
        "workload", "x", "reconfig (ms / msgs)", "covering (ms / msgs)"
    );
    for workload in SubWorkload::SWEEP {
        let x = workload.covering_degree().unwrap_or(0);
        let mut row = format!("{:<10} {x:>4}", workload.to_string());
        for protocol in [ProtocolKind::Reconfig, ProtocolKind::Covering] {
            let mut cfg =
                ExperimentConfig::new(protocol, default_14(), paper_default(100, workload));
            cfg.pause = SimDuration::from_secs(5);
            cfg.duration = SimDuration::from_secs(60);
            let r = run_experiment(&cfg);
            assert_eq!(r.anomalies, 0, "protocol anomaly detected");
            row.push_str(&format!(
                "  {:>10.1} / {:>8.1}",
                r.mean_latency_ms, r.messages_per_move
            ));
        }
        println!("{row}");
    }
    println!(
        "\nreconfig cost tracks only the source-target path; covering grows \
         with the workload's covering density (see EXPERIMENTS.md for the \
         full-scale runs)."
    );
}
