//! Failure injection: the movement transaction under rejection,
//! timeout and broker crash, plus the exhaustive Fig. 5 model check.
//!
//! Demonstrates the paper's safety claims operationally:
//!
//! 1. the model checker regenerates the Fig. 5 global state graph and
//!    verifies both safety properties, with and without failures;
//! 2. a rejected movement leaves the client running at the source;
//! 3. a broker crash delays — but never loses — messages (the paper's
//!    Sec. 3.5 fault model), and a movement started during the outage
//!    completes after recovery.
//!
//! ```text
//! cargo run --example failure_injection
//! ```

use transmob::broker::Topology;
use transmob::core::modelcheck::{explore, ExploreConfig};
use transmob::core::{ClientOp, InstantNet, MobileBrokerConfig, NetEvent, ProtocolKind};
use transmob::pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob::sim::{NetworkModel, Sim, SimDuration, SimTime};

fn main() {
    // --- 1. Model check (Fig. 5) -------------------------------------
    let ex = explore(ExploreConfig::fig5());
    println!("Fig. 5 reachable coordinator states: {:?}", ex.labels());
    ex.check_final_states()
        .expect("exactly one started+clean in finals");
    ex.check_at_most_one_started()
        .expect("at most one started everywhere");
    let with_failures = explore(ExploreConfig::failures());
    with_failures
        .check_final_states()
        .expect("safe with crashes");
    with_failures
        .check_at_most_one_started()
        .expect("isolated with crashes");
    println!(
        "model check: {} states failure-free, {} with crash+timeout — all safe\n",
        ex.states.len(),
        with_failures.states.len()
    );

    // --- 2. Rejected movement ----------------------------------------
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(4))
        .options(MobileBrokerConfig::reconfig())
        .start();
    net.create_client(BrokerId(1), ClientId(1));
    net.create_client(BrokerId(4), ClientId(2));
    net.client_op(
        ClientId(1),
        ClientOp::Advertise(Filter::builder().ge("x", 0).build()),
    );
    net.client_op(
        ClientId(2),
        ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
    );
    // Moving to a broker outside the overlay is refused outright.
    net.client_op(
        ClientId(2),
        ClientOp::MoveTo(BrokerId(99), ProtocolKind::Reconfig),
    );
    let aborted = net.take_events().iter().any(|e| {
        matches!(
            e,
            NetEvent::MoveFinished {
                committed: false,
                ..
            }
        )
    });
    net.client_op(
        ClientId(1),
        ClientOp::Publish(Publication::new().with("x", 1)),
    );
    println!(
        "rejected movement: aborted={aborted}, client still served at {:?}, {} delivery",
        net.find_client(ClientId(2)).expect("client hosted"),
        net.deliveries_to(ClientId(2)).len()
    );
    assert!(aborted);
    assert_eq!(net.deliveries_to(ClientId(2)).len(), 1);

    // --- 3. Crash during movement (simulator) ------------------------
    let mut sim = Sim::builder()
        .overlay(Topology::chain(5))
        .options(MobileBrokerConfig::reconfig())
        .network(NetworkModel::cluster())
        .seed(7)
        .start();
    sim.create_client(BrokerId(1), ClientId(1));
    sim.create_client(BrokerId(5), ClientId(2));
    sim.schedule_cmd(
        SimTime(0),
        ClientId(1),
        ClientOp::Advertise(Filter::builder().ge("x", 0).build()),
    );
    sim.schedule_cmd(
        SimTime(0),
        ClientId(2),
        ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
    );
    sim.run_to_quiescence();
    let t0 = sim.now();
    // Crash a mid-path broker for two (virtual) seconds and start a
    // movement right through it.
    sim.crash_broker(BrokerId(3), t0 + SimDuration::from_secs(2));
    sim.schedule_cmd(
        t0 + SimDuration::from_millis(10),
        ClientId(2),
        ClientOp::MoveTo(BrokerId(2), ProtocolKind::Reconfig),
    );
    sim.schedule_cmd(
        t0 + SimDuration::from_millis(20),
        ClientId(1),
        ClientOp::Publish(Publication::new().with("x", 9)),
    );
    sim.run_to_quiescence();
    let rec = sim
        .metrics
        .finished_moves()
        .next()
        .map(|(_, r)| (r.committed, r.latency()))
        .expect("movement finished");
    println!(
        "crash during movement: committed={:?}, latency={} (includes the 2 s outage), \
         deliveries={}",
        rec.0.unwrap(),
        rec.1.unwrap(),
        sim.metrics.delivery_count
    );
    assert_eq!(rec.0, Some(true), "movement must complete after recovery");
    assert!(rec.1.unwrap() >= SimDuration::from_secs(1));
    assert_eq!(sim.metrics.delivery_count, 1, "publication lost in crash");
    assert_eq!(sim.total_anomalies(), 0);
    println!("\ndone: all failure scenarios behaved transactionally");
}
