//! The broker overlay over real TCP sockets: every overlay link is a
//! loopback socket carrying JSON-framed protocol messages — the bytes
//! a multi-host deployment would put on the wire. Runs the quickstart
//! scenario (subscribe, publish, transactional move) end to end over
//! that transport.
//!
//! ```text
//! cargo run --example tcp_overlay
//! ```

use std::time::Duration;

use transmob::core::{MobileBrokerConfig, ProtocolKind};
use transmob::pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob::runtime::tcp::TcpNetwork;
use transmob::workloads::default_14;

fn main() -> std::io::Result<()> {
    // The paper's 14-broker overlay: 13 links = 13 sockets.
    let net = TcpNetwork::builder()
        .overlay(default_14())
        .options(MobileBrokerConfig::reconfig())
        .start()?;
    println!("overlay up: 14 brokers, 13 TCP links");

    let publisher = net.create_client(BrokerId(6), ClientId(1));
    let subscriber = net.create_client(BrokerId(13), ClientId(2));
    publisher.advertise(Filter::builder().eq("feed", "alerts").any("sev").build());
    subscriber.subscribe(Filter::builder().eq("feed", "alerts").ge("sev", 3).build());
    std::thread::sleep(Duration::from_millis(150));

    publisher.publish(Publication::new().with("feed", "alerts").with("sev", 5));
    let alert = subscriber
        .recv_timeout(Duration::from_secs(3))
        .expect("alert over TCP");
    println!("received over sockets: {alert}");

    // Transactional movement across the backbone — negotiate,
    // reconfigure, state and ack all serialized over the wire.
    let committed =
        subscriber.move_to(BrokerId(2), ProtocolKind::Reconfig, Duration::from_secs(10));
    println!("movement over sockets committed: {committed}");
    assert!(committed);
    assert_eq!(net.home_of(ClientId(2)), Some(BrokerId(2)));

    publisher.publish(Publication::new().with("feed", "alerts").with("sev", 4));
    let alert = subscriber
        .recv_timeout(Duration::from_secs(3))
        .expect("post-move alert");
    println!("received at the new broker: {alert}");

    net.shutdown();
    println!("done");
    Ok(())
}
