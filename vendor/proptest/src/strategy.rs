//! Strategy trait and the built-in strategies the workspace uses.

use std::fmt::Debug;

/// Deterministic RNG driving all generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name, deterministically.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges ------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*}
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

// --- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*}
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- `any` ---------------------------------------------------------------

/// Types with a canonical strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized + Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Canonical `bool` strategy (fair coin).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $s:ident),*) => {$(
        /// Canonical full-range strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct $s;

        impl Strategy for $s {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $s;

            fn arbitrary() -> $s {
                $s
            }
        }
    )*}
}
impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, usize => AnyUsize);

// --- regex-literal string strategy ---------------------------------------

/// `&'static str` is interpreted as a (tiny subset of a) regex, the way
/// real proptest treats string literals. Supported: literal characters,
/// `.`, `[...]` classes with ranges, `\\x` escapes, and the repeaters
/// `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_regex(self);
        let mut out = String::new();
        for (elem, lo, hi) in &elements {
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(elem.pick(rng));
            }
        }
        out
    }
}

#[derive(Debug)]
enum RegexElem {
    Lit(char),
    Any,
    Class(Vec<(char, char)>),
}

impl RegexElem {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            RegexElem::Lit(c) => *c,
            RegexElem::Any => {
                // printable ASCII
                char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
            }
            RegexElem::Class(ranges) => {
                let total: usize = ranges
                    .iter()
                    .map(|(a, b)| (*b as usize) - (*a as usize) + 1)
                    .sum();
                let mut k = rng.below(total);
                for (a, b) in ranges {
                    let span = (*b as usize) - (*a as usize) + 1;
                    if k < span {
                        return char::from_u32(*a as u32 + k as u32).unwrap();
                    }
                    k -= span;
                }
                unreachable!()
            }
        }
    }
}

fn parse_regex(pattern: &str) -> Vec<(RegexElem, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let elem = match chars[i] {
            '.' => {
                i += 1;
                RegexElem::Any
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 1;
                RegexElem::Lit(c)
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let a = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        let b = chars[i + 1];
                        i += 2;
                        ranges.push((a, b));
                    } else {
                        ranges.push((a, a));
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in regex {pattern:?}"
                );
                i += 1; // ']'
                RegexElem::Class(ranges)
            }
            c => {
                i += 1;
                RegexElem::Lit(c)
            }
        };
        // Optional repetition suffix.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                i += 1;
                let mut lo = 0usize;
                while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                    lo = lo * 10 + d as usize;
                    i += 1;
                }
                let hi = if chars.get(i) == Some(&',') {
                    i += 1;
                    let mut hi = 0usize;
                    while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                        hi = hi * 10 + d as usize;
                        i += 1;
                    }
                    hi
                } else {
                    lo
                };
                assert_eq!(
                    chars.get(i),
                    Some(&'}'),
                    "malformed repetition in regex {pattern:?}"
                );
                i += 1;
                (lo, hi)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        out.push((elem, lo, hi));
    }
    out
}
