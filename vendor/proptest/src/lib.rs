//! Vendored, offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of proptest this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, range and
//! regex-literal strategies, `collection::vec`, tuples,
//! `prop_oneof!`, `any::<bool>()`, the `proptest!` test macro with
//! `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: value generation is driven by a
//! deterministic per-test RNG (seeded from the test's module path and
//! name), there is **no shrinking**, and `proptest-regressions` files
//! are neither read nor written. Failures print the generated inputs
//! so they can be turned into deterministic unit tests by hand.

pub mod strategy;

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::{Strategy, TestRng};

    /// Size specification for collection strategies, mirroring
    /// `proptest::collection::SizeRange` loosely.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case plumbing: config, RNG, error types.

    use std::fmt;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure (from `prop_assert!` etc.).
        Fail(String),
        /// Input rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    pub use crate::strategy::TestRng;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::collection::SizeRange;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// --- macros --------------------------------------------------------------

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::strategy::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> $crate::test_runner::TestCaseResult {
                            $body;
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__e)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            __cfg.cases,
                            __e,
                            __inputs
                        );
                    }
                    ::std::result::Result::Err(__p) => {
                        eprintln!(
                            "proptest case {}/{} panicked\n  inputs: {}",
                            __case + 1,
                            __cfg.cases,
                            __inputs
                        );
                        ::std::panic::resume_unwind(__p);
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                );
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Chooses uniformly between several strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
