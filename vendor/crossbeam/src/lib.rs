//! Vendored, offline, API-compatible subset of `crossbeam`.
//!
//! Only `crossbeam::channel` is provided, built on
//! `std::sync::mpsc`. The `Receiver` is made `Clone + Sync` (the part
//! std lacks) by wrapping it in `Arc<Mutex<..>>`; for the
//! single-consumer-per-receiver patterns in this workspace the lock is
//! uncontended.

pub mod channel {
    //! MPMC channel API mirroring `crossbeam::channel`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: Flavor::Unbounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a bounded channel with capacity `cap`: sends block once
    /// `cap` messages are queued, providing backpressure (the
    /// pipelined broker loops bound their in-flight batches with
    /// this). `cap = 0` gives a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: Flavor::Bounded(tx),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half.
    pub struct Sender<T> {
        inner: Flavor<T>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message (blocking while a bounded channel is full);
        /// errors if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half; clonable (receivers share one queue).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn with<R>(&self, f: impl FnOnce(&mpsc::Receiver<T>) -> R) -> R {
            let guard = self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            f(&guard)
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.with(|rx| rx.recv().map_err(|_| RecvError))
        }

        /// Blocks with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.with(|rx| {
                rx.recv_timeout(timeout).map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.with(|rx| {
                rx.try_recv().map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
            })
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Send on a disconnected channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Outcome of [`Receiver::recv_timeout`] failures.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders dropped.
        Disconnected,
    }

    /// Outcome of [`Receiver::try_recv`] failures.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped.
        Disconnected,
    }
}
