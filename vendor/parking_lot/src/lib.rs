//! Vendored, offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives. Like real parking_lot (and unlike
//! std), locks do not poison: a panic while holding the lock leaves it
//! usable, implemented here by unwrapping `PoisonError` into the inner
//! guard.

use std::sync::{self, TryLockError};

/// Mutex without poisoning, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// See [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Reader-writer lock without poisoning, mirroring
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// See [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// See [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
