//! Vendored, offline, API-compatible subset of `criterion`.
//!
//! Implements the measurement surface the workspace's benches use:
//! `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a simple calibrated loop (no statistics, plots or
//! HTML reports): each benchmark is warmed up, then timed over enough
//! iterations to fill a ~60 ms window, and the mean ns/iter is printed.
//! If the environment variable `CRITERION_JSON` names a file, one JSON
//! line per benchmark (`{"group":..,"bench":..,"ns_per_iter":..}`) is
//! appended to it, which is how this repo records `BENCH_*.json`
//! baselines.
//!
//! Setting `CRITERION_QUICK` (any value) collapses the measurement
//! window to a single iteration per benchmark: a CI smoke mode that
//! proves every bench still compiles and runs without paying for
//! calibrated timings (the numbers it prints are meaningless).
//!
//! Like real criterion, positional command-line arguments act as
//! substring filters: `cargo bench --bench routing -- publish_batch`
//! runs only benchmarks whose `group/id` label contains
//! `publish_batch` (any one of several filters may match). Arguments
//! starting with `-` are accepted and ignored for CLI parity.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench("", id, &mut f);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; sampling is adaptive in this stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.into_benchmark_id(), &mut f);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_bench(&self.name, &id.into_benchmark_id(), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversion into a benchmark id string.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Batch sizing for `iter_batched`; only influences how many routine
/// calls share one setup in this stub.
pub enum BatchSize {
    /// Many iterations per batch.
    SmallInput,
    /// Few iterations per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills
        // the measurement window.
        let window = measurement_window();
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= window || n >= 1 << 30 {
                self.total = elapsed;
                self.iters = n;
                return;
            }
            let factor = (window.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.5, 100.0);
            n = ((n as f64) * factor).ceil() as u64;
        }
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let window = measurement_window();
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= window || n >= 1 << 24 {
                self.total = elapsed;
                self.iters = n;
                return;
            }
            let factor = (window.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.5, 100.0);
            n = ((n as f64) * factor).ceil() as u64;
        }
    }
}

/// Zero under `CRITERION_QUICK` (every calibration loop exits after
/// its first single-iteration pass), ~60 ms otherwise.
fn measurement_window() -> Duration {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        Duration::ZERO
    } else {
        Duration::from_millis(60)
    }
}

/// Positional (non-`-`) CLI arguments, used as substring filters on
/// benchmark labels; empty means "run everything".
fn cli_filters() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect()
}

fn run_bench(group: &str, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let filters = cli_filters();
    if !filters.is_empty() && !filters.iter().any(|f| label.contains(f.as_str())) {
        return;
    }
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench: {label:<50} (no measurement)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    println!("bench: {label:<50} {ns:>14.1} ns/iter ({} iters)", b.iters);
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
                group, id, ns, b.iters
            );
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
