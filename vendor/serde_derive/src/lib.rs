//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` subset.
//!
//! Hand-rolled on top of `proc_macro` alone (no `syn`/`quote`, which
//! are unavailable offline). Supports exactly the shapes this
//! workspace uses:
//!
//! * unit / newtype / tuple / named-field structs,
//! * enums with unit, newtype, tuple and struct variants
//!   (externally tagged, matching `serde_json`'s default),
//! * type generics (bounds `T: Serialize` / `T: Deserialize<'de>` are
//!   added per parameter),
//! * the field attributes `#[serde(with = "path")]` and
//!   `#[serde(default)]` (missing fields fall back to
//!   `Default::default()` on deserialize).
//!
//! Anything else (lifetimes, const generics, other serde attributes)
//! fails loudly at compile time rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
    /// `#[serde(default)]`: on deserialize, a missing entry falls
    /// back to `Default::default()` instead of erroring.
    default: bool,
}

#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Body {
    UnitStruct,
    TupleStruct(Vec<Field>),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    params: Vec<String>,
    body: Body,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// --- parsing -------------------------------------------------------------

fn parse_input(ts: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility until `struct`/`enum`.
    let mut is_enum = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // attribute body group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum found in input"),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    // Generic parameters.
    let mut params = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expecting = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expecting = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' && depth == 1 => {
                    panic!("serde_derive: lifetime parameters are not supported")
                }
                Some(TokenTree::Ident(id)) if depth == 1 && expecting => {
                    let s = id.to_string();
                    if s == "const" {
                        panic!("serde_derive: const generics are not supported");
                    }
                    params.push(s);
                    expecting = false;
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generics"),
            }
            i += 1;
        }
    }

    // Skip a `where` clause if present (none expected in this workspace).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "where" => {
                panic!("serde_derive: where clauses are not supported")
            }
            TokenTree::Group(_) | TokenTree::Punct(_) => break,
            _ => i += 1,
        }
    }

    let body = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            None => Body::UnitStruct,
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        }
    };

    Input { name, params, body }
}

/// Consumes leading attributes at `*i`, returning the recognized
/// serde field attributes (`with = "..."`, `default`) if present.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            let found = serde_attrs_from_attr(g.stream());
            if found.with.is_some() {
                attrs.with = found.with;
            }
            attrs.default |= found.default;
            *i += 1;
        }
    }
    attrs
}

fn serde_attrs_from_attr(attr: TokenStream) -> FieldAttrs {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match (inner.first(), inner.get(1), inner.get(2)) {
                (
                    Some(TokenTree::Ident(kw)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if kw.to_string() == "with" && eq.as_char() == '=' => {
                    let s = lit.to_string();
                    FieldAttrs {
                        with: Some(s.trim_matches('"').to_string()),
                        default: false,
                    }
                }
                (Some(TokenTree::Ident(kw)), None, None) if kw.to_string() == "default" => {
                    FieldAttrs {
                        with: None,
                        default: true,
                    }
                }
                _ => panic!(
                    "serde_derive: only #[serde(with = \"path\")] and #[serde(default)] \
                     are supported, got #[serde({})]",
                    args.stream()
                ),
            }
        }
        _ => FieldAttrs::default(), // non-serde attribute (doc comment etc.)
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Consumes a type (or any expression) up to a depth-0 comma.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(tt) = tokens.get(*i) {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        skip_until_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push(Field {
            name,
            with: attrs.with,
            default: attrs.default,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_until_comma(&tokens, &mut i);
        i += 1;
        fields.push(Field {
            name: fields.len().to_string(),
            with: attrs.with,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        let _ = skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(parse_tuple_fields(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Optional discriminant `= expr`.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_until_comma(&tokens, &mut i);
        }
        // Separator.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// --- code generation -----------------------------------------------------

const CONTENT: &str = "::serde::content::Content";

fn ser_field_content(place: &str, with: &Option<String>) -> String {
    match with {
        None => format!("::serde::content::to_content({place})"),
        Some(path) => format!(
            "match {path}::serialize({place}, ::serde::ser::ContentSerializer) {{ \
                ::std::result::Result::Ok(__c) => __c, \
                ::std::result::Result::Err(__e) => return ::std::result::Result::Err(\
                    <__S::Error as ::serde::ser::Error>::custom(__e)), }}"
        ),
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_generics, ty_generics) = if input.params.is_empty() {
        (String::new(), String::new())
    } else {
        let bounds: Vec<String> = input
            .params
            .iter()
            .map(|p| format!("{p}: ::serde::Serialize"))
            .collect();
        (
            format!("<{}>", bounds.join(", ")),
            format!("<{}>", input.params.join(", ")),
        )
    };

    let body = match &input.body {
        Body::UnitStruct => format!("__serializer.serialize_content({CONTENT}::Null)"),
        Body::TupleStruct(fields) if fields.len() == 1 => match &fields[0].with {
            None => "::serde::Serialize::serialize(&self.0, __serializer)".to_string(),
            Some(_) => {
                let c = ser_field_content("&self.0", &fields[0].with);
                format!("__serializer.serialize_content({c})")
            }
        },
        Body::TupleStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| ser_field_content(&format!("&self.{}", f.name), &f.with))
                .collect();
            format!(
                "__serializer.serialize_content({CONTENT}::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    let c = ser_field_content(&format!("&self.{}", f.name), &f.with);
                    format!(
                        "({CONTENT}::Str(::std::string::String::from(\"{}\")), {c})",
                        f.name
                    )
                })
                .collect();
            format!(
                "__serializer.serialize_content({CONTENT}::Map(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vn} => __serializer.serialize_content(\
                                {CONTENT}::Str(::std::string::String::from(\"{vn}\"))),"
                        ),
                        VariantBody::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => __serializer.serialize_content(\
                                {CONTENT}::Map(::std::vec![({CONTENT}::Str(\
                                ::std::string::String::from(\"{vn}\")), \
                                ::serde::content::to_content(__f0))])),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::content::to_content(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => __serializer.serialize_content(\
                                    {CONTENT}::Map(::std::vec![({CONTENT}::Str(\
                                    ::std::string::String::from(\"{vn}\")), \
                                    {CONTENT}::Seq(::std::vec![{}]))])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({CONTENT}::Str(::std::string::String::from(\"{0}\")), \
                                         ::serde::content::to_content({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => __serializer.serialize_content(\
                                    {CONTENT}::Map(::std::vec![({CONTENT}::Str(\
                                    ::std::string::String::from(\"{vn}\")), \
                                    {CONTENT}::Map(::std::vec![{}]))])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    format!(
        "#[automatically_derived] \
         #[allow(warnings, clippy::all, clippy::pedantic)] \
         impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{ \
            fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                -> ::std::result::Result<__S::Ok, __S::Error> {{ {body} }} \
         }}"
    )
}

fn de_err(msg_expr: &str) -> String {
    format!("<__D::Error as ::serde::de::Error>::custom({msg_expr})")
}

fn de_field_from(content_expr: &str, with: &Option<String>) -> String {
    let de_call = match with {
        None => "::serde::Deserialize::deserialize".to_string(),
        Some(path) => format!("{path}::deserialize"),
    };
    format!("{de_call}(::serde::de::ContentDeserializer::<__D::Error>::new({content_expr}))?")
}

/// Extraction of one named field from the content map `map_var`,
/// honouring `#[serde(default)]` (missing entry falls back to
/// `Default::default()`).
fn de_named_field(f: &Field, map_var: &str) -> String {
    if f.default {
        let de = de_field_from("__c", &f.with);
        format!(
            "match ::serde::content::take_entry_opt(&mut {map_var}, \"{}\") {{ \
                ::std::option::Option::Some(__c) => {de}, \
                ::std::option::Option::None => ::std::default::Default::default(), \
            }}",
            f.name
        )
    } else {
        let take = format!(
            "::serde::content::take_entry::<__D::Error>(&mut {map_var}, \"{}\")?",
            f.name
        );
        de_field_from(&take, &f.with)
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_generics, ty_generics) = if input.params.is_empty() {
        ("<'de>".to_string(), String::new())
    } else {
        let bounds: Vec<String> = input
            .params
            .iter()
            .map(|p| format!("{p}: ::serde::Deserialize<'de>"))
            .collect();
        (
            format!("<'de, {}>", bounds.join(", ")),
            format!("<{}>", input.params.join(", ")),
        )
    };

    let body = match &input.body {
        Body::UnitStruct => format!(
            "let _ = ::serde::Deserializer::take_content(__deserializer)?; \
             ::std::result::Result::Ok({name})"
        ),
        Body::TupleStruct(fields) if fields.len() == 1 => match &fields[0].with {
            None => format!(
                "::std::result::Result::Ok({name}(\
                    ::serde::Deserialize::deserialize(__deserializer)?))"
            ),
            Some(_) => {
                let e = de_field_from(
                    "::serde::Deserializer::take_content(__deserializer)?",
                    &fields[0].with,
                );
                format!("::std::result::Result::Ok({name}({e}))")
            }
        },
        Body::TupleStruct(fields) => {
            let elems: Vec<String> = fields
                .iter()
                .map(|f| {
                    de_field_from(
                        "::serde::content::next_elem::<__D::Error>(&mut __it)?",
                        &f.with,
                    )
                })
                .collect();
            format!(
                "let __c = ::serde::Deserializer::take_content(__deserializer)?; \
                 let __seq = ::serde::content::as_seq::<__D::Error>(__c)?; \
                 let mut __it = __seq.into_iter(); \
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::NamedStruct(fields) if fields.is_empty() => format!(
            "let _ = ::serde::Deserializer::take_content(__deserializer)?; \
             ::std::result::Result::Ok({name} {{}})"
        ),
        Body::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, de_named_field(f, "__m")))
                .collect();
            format!(
                "let __c = ::serde::Deserializer::take_content(__deserializer)?; \
                 let mut __m = ::serde::content::as_map::<__D::Error>(__c)?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.body, VariantBody::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        VariantBody::Tuple(1) => {
                            let e = de_field_from("__v", &None);
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({e})),")
                        }
                        VariantBody::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|_| {
                                    de_field_from(
                                        "::serde::content::next_elem::<__D::Error>(&mut __eit)?",
                                        &None,
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                    let __seq = ::serde::content::as_seq::<__D::Error>(__v)?; \
                                    let mut __eit = __seq.into_iter(); \
                                    ::std::result::Result::Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{}: {}", f.name, de_named_field(f, "__vm")))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ \
                                    let mut __vm = ::serde::content::as_map::<__D::Error>(__v)?; \
                                    ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                items.join(", ")
                            )
                        }
                        VariantBody::Unit => unreachable!(),
                    }
                })
                .collect();
            let unknown = de_err(&format!(
                "::std::format!(\"unknown variant `{{}}` of {name}\", __other)"
            ));
            let bad_tag = de_err(&format!("\"enum {name}: tag must be a string\""));
            let empty_map = de_err(&format!("\"enum {name}: empty map\""));
            let bad_repr = de_err(&format!(
                "::std::format!(\"invalid representation of enum {name}: {{}}\", \
                 __other.kind_name())"
            ));
            format!(
                "let __c = ::serde::Deserializer::take_content(__deserializer)?; \
                 match __c {{ \
                    {CONTENT}::Str(__s) => match __s.as_str() {{ \
                        {unit} \
                        __other => ::std::result::Result::Err({unknown}), \
                    }}, \
                    {CONTENT}::Map(__m) => {{ \
                        let mut __mit = __m.into_iter(); \
                        let (__k, __v) = match __mit.next() {{ \
                            ::std::option::Option::Some(__kv) => __kv, \
                            ::std::option::Option::None => \
                                return ::std::result::Result::Err({empty_map}), \
                        }}; \
                        let _ = &__v; \
                        let __k = match __k {{ \
                            {CONTENT}::Str(__s) => __s, \
                            _ => return ::std::result::Result::Err({bad_tag}), \
                        }}; \
                        match __k.as_str() {{ \
                            {payload} \
                            __other => ::std::result::Result::Err({unknown}), \
                        }} \
                    }}, \
                    __other => ::std::result::Result::Err({bad_repr}), \
                 }}",
                unit = unit_arms.join(" "),
                payload = payload_arms.join(" "),
            )
        }
    };

    format!(
        "#[automatically_derived] \
         #[allow(warnings, clippy::all, clippy::pedantic)] \
         impl{impl_generics} ::serde::Deserialize<'de> for {name}{ty_generics} {{ \
            fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                -> ::std::result::Result<Self, __D::Error> {{ {body} }} \
         }}"
    )
}
