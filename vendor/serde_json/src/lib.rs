//! Vendored, offline, API-compatible subset of `serde_json`.
//!
//! Provides [`to_string`], [`to_string_pretty`] and [`from_str`] over
//! the shared [`serde::content::Content`] data model, encoding the
//! same externally-tagged JSON the real crate produces for the types
//! this workspace serializes (structs as objects, newtypes as their
//! payload, enums externally tagged, integer map keys stringified).

use std::fmt;

use serde::content::Content;
use serde::de::ContentDeserializer;
use serde::ser::ContentSerializer;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content, None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let content = value
        .serialize(ContentSerializer)
        .map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_content(&mut out, &content, Some(2), 0)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize(ContentDeserializer::<Error>::new(content))
}

// --- encoder -------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a trailing `.0` on integral floats, so the
                // value parses back as a float rather than an integer.
                out.push_str(&format!("{v:?}"));
            } else {
                // Matches serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(out, k)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

/// Map keys must be strings in JSON; primitive keys are stringified the
/// way real serde_json does.
fn write_key(out: &mut String, k: &Content) -> Result<()> {
    match k {
        Content::Str(s) => {
            write_escaped(out, s);
            Ok(())
        }
        Content::I64(v) => {
            write_escaped(out, &v.to_string());
            Ok(())
        }
        Content::U64(v) => {
            write_escaped(out, &v.to_string());
            Ok(())
        }
        Content::Bool(b) => {
            write_escaped(out, if *b { "true" } else { "false" });
            Ok(())
        }
        other => Err(Error(format!(
            "map key must be a string, got {}",
            other.kind_name()
        ))),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.bad("null"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.bad("true"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.bad("false"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.bad("`,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.bad("`,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.bad("a JSON value")),
        }
    }

    fn bad(&self, what: &str) -> Error {
        Error(format!("expected {} at offset {}", what, self.pos))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.bad("closing `\"`")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !self.eat_literal("\\u") {
                                    return Err(self.bad("low surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(c).ok_or_else(|| self.bad("valid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.bad("valid code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.bad("escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8".to_string()))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.bad("4 hex digits"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid UTF-8 in \\u escape".to_string()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.bad("4 hex digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
