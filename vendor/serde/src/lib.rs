//! Vendored, offline, API-compatible subset of `serde`.
//!
//! This workspace builds in environments with no crates.io access, so
//! the handful of external crates it uses are vendored as small
//! API-compatible subsets under `vendor/`. This crate mirrors the
//! parts of `serde` the workspace exercises:
//!
//! * `Serialize` / `Deserialize` traits with the real generic
//!   signatures (`fn serialize<S: Serializer>`, `Deserialize<'de>`),
//! * `#[derive(Serialize, Deserialize)]` via the sibling
//!   `serde_derive` stub (named/tuple/unit structs; unit/newtype/
//!   tuple/struct enum variants; generics; `#[serde(with = "...")]`),
//! * `ser::Serializer` with `collect_seq`/`collect_map`/`collect_str`,
//! * `de::Deserializer`, `de::DeserializeOwned`, `de::Error::custom`.
//!
//! Unlike real serde's visitor-driven design, every format bottoms out
//! in one self-describing [`content::Content`] tree — dramatically
//! simpler, and faithful for the externally-tagged JSON data model the
//! workspace relies on. Swapping the real crates back in is a
//! one-line `Cargo.toml` change per dependency.

pub mod content;
pub mod de;
pub mod ser;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
