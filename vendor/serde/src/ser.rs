//! Serialization half of the vendored `serde` subset.
//!
//! The trait surface matches real `serde` closely enough for this
//! workspace (generic `serialize<S: Serializer>`, `collect_seq`,
//! `ser::Error::custom`), but every serializer bottoms out in the
//! shared [`Content`](crate::content::Content) tree.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;

use crate::content::{to_content, Content};

/// Error constructor trait, mirroring `serde::ser::Error`.
pub trait Error: Sized + Display {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can serialize the [`Content`] data model.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully-built content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes an iterator as a sequence (mirrors
    /// `Serializer::collect_seq`).
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let items: Vec<Content> = iter.into_iter().map(|v| to_content(&v)).collect();
        self.serialize_content(Content::Seq(items))
    }

    /// Serializes an iterator of pairs as a map (mirrors
    /// `Serializer::collect_map`).
    fn collect_map<K, V, I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        K: Serialize,
        V: Serialize,
        I: IntoIterator<Item = (K, V)>,
    {
        let items: Vec<(Content, Content)> = iter
            .into_iter()
            .map(|(k, v)| (to_content(&k), to_content(&v)))
            .collect();
        self.serialize_content(Content::Map(items))
    }

    /// Serializes a display-able value as a string (mirrors
    /// `Serializer::collect_str`).
    fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(value.to_string()))
    }
}

/// A value serializable into the [`Content`] data model.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Error type of [`ContentSerializer`]; never produced by the built-in
/// impls but constructible via `custom` so `with`-style modules can
/// fail.
#[derive(Debug)]
pub struct ContentError(pub String);

impl Display for ContentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// The identity serializer: produces the [`Content`] tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

// --- impls for std types -------------------------------------------------

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::I64(*self as i64))
            }
        }
    )*}
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    s.serialize_content(Content::I64(v as i64))
                } else {
                    s.serialize_content(Content::U64(v))
                }
            }
        }
    )*}
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self as f64))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::F64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Str(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_content(Content::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_content(Content::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_content(Content::Seq(vec![$(to_content(&self.$n)),+]))
            }
        }
    )*}
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_map(self.iter())
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_map(self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize + ?Sized + ToOwned> Serialize for std::borrow::Cow<'_, T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}
