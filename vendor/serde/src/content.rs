//! A self-describing data model that every serializer/deserializer in
//! this vendored subset goes through. Mirrors `serde`'s private
//! `Content` type, made public so the sibling `serde_json` stub can
//! share it.

use crate::de;
use crate::ser;

/// Generic self-describing value: the intermediate representation all
/// (de)serialization in this stub flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `()` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when a value does not fit `i64`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, tuple structs).
    Seq(Vec<Content>),
    /// Map (objects, structs); insertion-ordered key/value pairs.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Human-readable kind tag for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serializes any value into a [`Content`] tree. Infallible for the
/// types this stub supports (errors degrade to `Content::Null`).
pub fn to_content<T: ser::Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ser::ContentSerializer) {
        Ok(c) => c,
        Err(_) => Content::Null,
    }
}

/// Removes the entry with string key `key` from a map body, erroring if
/// absent. Used by derived `Deserialize` impls for named structs.
pub fn take_entry<E: de::Error>(
    map: &mut Vec<(Content, Content)>,
    key: &str,
) -> Result<Content, E> {
    let pos = map
        .iter()
        .position(|(k, _)| matches!(k, Content::Str(s) if s == key));
    match pos {
        Some(i) => Ok(map.swap_remove(i).1),
        None => Err(E::custom(format!("missing field `{key}`"))),
    }
}

/// Removes and returns the entry for `key`, or `None` when the map has
/// no such key (callers supply a default — `#[serde(default)]`).
pub fn take_entry_opt(map: &mut Vec<(Content, Content)>, key: &str) -> Option<Content> {
    let pos = map
        .iter()
        .position(|(k, _)| matches!(k, Content::Str(s) if s == key));
    pos.map(|i| map.swap_remove(i).1)
}

/// Coerces content to a sequence body.
pub fn as_seq<E: de::Error>(c: Content) -> Result<Vec<Content>, E> {
    match c {
        Content::Seq(v) => Ok(v),
        other => Err(E::custom(format!(
            "expected sequence, got {}",
            other.kind_name()
        ))),
    }
}

/// Coerces content to a map body.
pub fn as_map<E: de::Error>(c: Content) -> Result<Vec<(Content, Content)>, E> {
    match c {
        Content::Map(m) => Ok(m),
        other => Err(E::custom(format!(
            "expected map, got {}",
            other.kind_name()
        ))),
    }
}

/// Pulls the next element out of a sequence iterator, erroring on
/// premature end. Used by derived tuple-struct/tuple-variant impls.
pub fn next_elem<E: de::Error>(it: &mut std::vec::IntoIter<Content>) -> Result<Content, E> {
    it.next()
        .ok_or_else(|| E::custom("sequence ended early".to_string()))
}
