//! Deserialization half of the vendored `serde` subset.
//!
//! Everything deserializes from the shared
//! [`Content`](crate::content::Content) tree via
//! [`Deserializer::take_content`]. Primitive impls are lenient the way
//! `serde_json` is: integers parse from strings (map keys), floats
//! accept integers, and integral floats accept integer slots.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

use crate::content::{as_seq, next_elem, Content};

/// Error constructor trait, mirroring `serde::de::Error`.
pub trait Error: Sized + Display {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can produce the [`Content`] data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes the deserializer, yielding its content tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value deserializable from the [`Content`] data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input (mirrors
/// `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// The identity deserializer: hands out a pre-built [`Content`] tree.
pub struct ContentDeserializer<E> {
    content: Content,
    marker: PhantomData<fn() -> E>,
}

impl<E> ContentDeserializer<E> {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;

    fn take_content(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

fn de_content<'de, T: Deserialize<'de>, E: Error>(c: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(c))
}

// --- impls for std types -------------------------------------------------

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_content()? {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| <D::Error as Error>::custom("integer out of range")),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| <D::Error as Error>::custom("integer out of range")),
                    Content::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| <D::Error as Error>::custom("invalid integer string")),
                    other => Err(<D::Error as Error>::custom(format!(
                        "expected integer, got {}",
                        other.kind_name()
                    ))),
                }
            }
        }
    )*}
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_content()? {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| <D::Error as Error>::custom("invalid float string")),
                    other => Err(<D::Error as Error>::custom(format!(
                        "expected float, got {}",
                        other.kind_name()
                    ))),
                }
            }
        }
    )*}
}
impl_de_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Bool(b) => Ok(b),
            Content::Str(s) if s == "true" => Ok(true),
            Content::Str(s) if s == "false" => Ok(false),
            other => Err(<D::Error as Error>::custom(format!(
                "expected bool, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(<D::Error as Error>::custom(format!(
                "expected string, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Str(s) => {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(<D::Error as Error>::custom("expected single character")),
                }
            }
            other => Err(<D::Error as Error>::custom(format!(
                "expected char, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(()),
            other => Err(<D::Error as Error>::custom(format!(
                "expected null, got {}",
                other.kind_name()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_content()? {
            Content::Null => Ok(None),
            c => Ok(Some(de_content::<T, D::Error>(c)?)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let seq = as_seq::<D::Error>(d.take_content()?)?;
        seq.into_iter().map(de_content::<T, D::Error>).collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let seq = as_seq::<D::Error>(d.take_content()?)?;
        seq.into_iter().map(de_content::<T, D::Error>).collect()
    }
}

macro_rules! impl_de_tuple {
    ($(($($t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<Dz: Deserializer<'de>>(d: Dz) -> Result<Self, Dz::Error> {
                let seq = as_seq::<Dz::Error>(d.take_content()?)?;
                let mut it = seq.into_iter();
                let out = ($(de_content::<$t, Dz::Error>(next_elem::<Dz::Error>(&mut it)?)?,)+);
                if it.next().is_some() {
                    return Err(<Dz::Error as Error>::custom("tuple has extra elements"));
                }
                Ok(out)
            }
        }
    )*}
}
impl_de_tuple! {
    (T1)
    (T1, T2)
    (T1, T2, T3)
    (T1, T2, T3, T4)
    (T1, T2, T3, T4, T5)
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let pairs = crate::content::as_map::<D::Error>(d.take_content()?)?;
        pairs
            .into_iter()
            .map(|(k, v)| Ok((de_content::<K, D::Error>(k)?, de_content::<V, D::Error>(v)?)))
            .collect()
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let pairs = crate::content::as_map::<D::Error>(d.take_content()?)?;
        pairs
            .into_iter()
            .map(|(k, v)| Ok((de_content::<K, D::Error>(k)?, de_content::<V, D::Error>(v)?)))
            .collect()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let seq = as_seq::<D::Error>(d.take_content()?)?;
        seq.into_iter().map(de_content::<T, D::Error>).collect()
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let seq = as_seq::<D::Error>(d.take_content()?)?;
        seq.into_iter().map(de_content::<T, D::Error>).collect()
    }
}
