//! Vendored, offline, API-compatible subset of `rand` 0.8.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods the workspace uses (`gen`, `gen_range`,
//! `gen_bool`). The generator is SplitMix64 — not cryptographic, but
//! deterministic, fast and well distributed, which is all the
//! simulator needs.

/// A seedable RNG, mirroring `rand::SeedableRng` (the `seed_from_u64`
/// part of it).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a full-range value; backs [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// User-facing RNG methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a full-range value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `[low, high)`.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from a half-open range; backs [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }

        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<$t>,
            ) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*}
}
impl_standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty gen_range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

pub mod rngs {
    //! RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic RNG (SplitMix64), mirroring `rand::rngs::StdRng`'s
    /// API surface.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
