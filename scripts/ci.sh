#!/usr/bin/env bash
# CI gate for the transmob workspace.
#
# Formatting and lints are hard failures; the vendored offline stubs
# under vendor/ are workspace-excluded, so the gates only cover our
# own crates.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
# Bench smoke: compile every criterion bench and run each benchmark
# for a single iteration (CRITERION_QUICK, see vendor/criterion) so
# bench code cannot silently rot between perf PRs.
CRITERION_QUICK=1 cargo bench -p transmob-bench -q
