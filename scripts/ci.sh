#!/usr/bin/env bash
# CI gate for the transmob workspace.
#
# Tiers, in order — every invocation runs each tier or prints an
# explicit skip notice for it:
#
#   1. formatting + lints + full workspace tests (hard failures; the
#      vendored offline stubs under vendor/ are workspace-excluded),
#      then the TCP runtime suites again under TRANSMOB_WIRE=json —
#      the workspace pass exercised the default binary codec, this
#      differential pass proves the JSON debug codec stays equivalent
#   2. chaos smoke — seeded fault schedules per protocol (recovery
#      tier: crash/restart link faults; churn tier: permanent broker
#      deaths + overlay self-repair, DESIGN.md §14; cyclic tier: the
#      same churn contract on a ring overlay with multi-path
#      forwarding, DESIGN.md §15); scales via CHAOS_CASES
#      (e.g. CHAOS_CASES=5000), skipped under CI_FAST=1
#   3. bench smoke — every criterion bench, one iteration each
#      (CRITERION_QUICK, see vendor/criterion), so bench code cannot
#      silently rot between perf PRs; captured once and reused by the
#      regression gate, never run twice
#   4. bench-regression gate — scripts/bench_check.sh compares medians
#      against the committed BENCH_routing.json (presence-only check
#      under CI_FAST=1)
#   5. seeded interleaving smoke for the parallel matching stage
#      (INTERLEAVE_SEEDS scales the schedule sweep, default 64)
#   6. TSAN tier — opt in with TSAN=1: rebuilds the parallel matching
#      tests AND the pipelined runtime drivers (worker pool, ingest/
#      apply broker loop) with -Zsanitizer=thread (nightly) and runs
#      them under ThreadSanitizer; prints a skip notice when not
#      requested or when the toolchain cannot build it
set -euo pipefail
cd "$(dirname "$0")/.."

# ---- tier 1: fmt + lints + tests --------------------------------------
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
# Differential codec pass: the same TCP suites over the JSON debug
# framing (the workspace run above used the default binary codec).
TRANSMOB_WIRE=json cargo test -p transmob-runtime -q

# ---- tier 2: chaos smoke ----------------------------------------------
if [[ "${CI_FAST:-0}" == "1" ]]; then
    echo "ci: CI_FAST=1 - skipping chaos smoke"
else
    CHAOS_CASES="${CHAOS_CASES:-32}" \
        cargo test -p transmob-sim --test chaos_recovery -q
    CHAOS_CASES="${CHAOS_CASES:-32}" \
        cargo test -p transmob-sim --test chaos_churn -q
    CHAOS_CASES="${CHAOS_CASES:-32}" \
        cargo test -p transmob-sim --test chaos_cyclic -q
fi

# ---- tier 3: bench smoke (single pass, capture reused below) ----------
QUICK_JSON=$(mktemp)
trap 'rm -f "$QUICK_JSON"' EXIT
CRITERION_QUICK=1 CRITERION_JSON="$QUICK_JSON" cargo bench -p transmob-bench -q

# ---- tier 4: bench-regression gate ------------------------------------
BENCH_QUICK_JSON="$QUICK_JSON" scripts/bench_check.sh

# ---- tier 5: parallel interleaving smoke ------------------------------
INTERLEAVE_SEEDS="${INTERLEAVE_SEEDS:-64}" \
    cargo test -p transmob-pubsub --test parallel_interleavings -q

# ---- tier 6: TSAN -----------------------------------------------------
# The offline toolchain has no rust-src, so std is not instrumented:
# the build needs -Cunsafe-allow-abi-mismatch=sanitizer, an explicit
# --target (host proc-macros must stay unsanitized), and the libtest
# false-positive suppressions in scripts/tsan.supp.
if [[ "${TSAN:-0}" == "1" ]]; then
    HOST=$(rustc +nightly -vV 2>/dev/null | awk '/^host:/ {print $2}')
    TSAN_RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer"
    if [[ -n "$HOST" ]] && RUSTFLAGS="$TSAN_RUSTFLAGS" CARGO_TARGET_DIR=target/tsan \
        cargo +nightly build -q -p transmob-pubsub -p transmob-runtime --target "$HOST" 2>/dev/null; then
        echo "ci: TSAN tier - parallel matching + pipelined runtime under ThreadSanitizer"
        RUSTFLAGS="$TSAN_RUSTFLAGS" CARGO_TARGET_DIR=target/tsan \
            TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp" \
            INTERLEAVE_SEEDS="${INTERLEAVE_SEEDS:-16}" \
            cargo +nightly test -q -p transmob-pubsub -p transmob-runtime --target "$HOST" -- --test-threads=1
    else
        echo "ci: TSAN=1 but this toolchain cannot build -Zsanitizer=thread - skipping TSAN tier"
    fi
else
    echo "ci: TSAN tier skipped (opt in with TSAN=1)"
fi
