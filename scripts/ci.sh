#!/usr/bin/env bash
# CI gate for the transmob workspace.
#
# Formatting and lints are hard failures; the vendored offline stubs
# under vendor/ are workspace-excluded, so the gates only cover our
# own crates.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
# Chaos smoke: a small fixed budget of seeded fault schedules per
# protocol (the nightly-sized run scales via CHAOS_CASES, e.g.
# CHAOS_CASES=5000 scripts/ci.sh).
CHAOS_CASES="${CHAOS_CASES:-32}" cargo test -p transmob-sim --test chaos_recovery -q
# Bench smoke: compile every criterion bench and run each benchmark
# for a single iteration (CRITERION_QUICK, see vendor/criterion) so
# bench code cannot silently rot between perf PRs.
CRITERION_QUICK=1 cargo bench -p transmob-bench -q
# Batch-pipeline smoke: the publish_batch group specifically must keep
# running, so the amortization numbers in BENCH_routing.json stay
# reproducible (regenerate with CRITERION_JSON=BENCH_routing.json).
CRITERION_QUICK=1 cargo bench -p transmob-bench -q --bench routing -- publish_batch
