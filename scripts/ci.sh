#!/usr/bin/env bash
# CI gate for the transmob workspace.
#
# Formatting and lints are hard failures; the vendored offline stubs
# under vendor/ are workspace-excluded, so the gates only cover our
# own crates.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
