#!/usr/bin/env bash
# Bench-regression gate: re-measures the routing benches and compares
# per-benchmark medians against the committed baseline
# BENCH_routing.json.
#
#   - Gated groups: publish_batch, srt_overlap, covering_release. A
#     median more than 25% slower than the committed baseline fails
#     the gate.
#   - The baseline must record the parallel_match group (sequential
#     plus shard counts 1/4/8 at 10k rows) with a >=2x speedup of
#     shards4 over the sequential sweep AND a >=2x speedup of shards4
#     (4 workers) over shards1 (1 worker) — the acceptance bars of the
#     parallel matching stage and of the pooled multi-worker kernel.
#   - The baseline must record the cyclic_routing group (tree /
#     tree_dedup / extra1 / extra3 at 7 brokers) with the forced-dedup
#     tree row within 10% of the plain tree row — the multi-path PR's
#     acceptance bar: tree deployments pay <10% for the dedup gate.
#     Non-fast runs re-measure that ratio live with the dedicated
#     dedup_gate binary (interleaved paired slices, immune to the
#     between-row machine drift that criterion medians carry).
#   - The TCP wire-protocol baseline BENCH_tcp.json must record the
#     tcp_throughput group (bin/json x batch 64/256), tcp_latency p99
#     rows and tcp_summary msgs/sec rows, with the binary codec >=2x
#     the JSON message rate at batch 256 — the ISSUE 7 acceptance bar.
#     Non-fast runs re-measure that ratio live.
#   - CI_FAST=1 skips re-measurement (single-iteration timings are
#     meaningless) and only checks the baseline shape plus that every
#     gated benchmark still runs; set BENCH_QUICK_JSON=<file> to reuse
#     an existing CRITERION_QUICK capture instead of re-running.
#   - BENCH_CHECK_RUNS (default 3) measurement repetitions feed each
#     median, damping scheduler noise on small CI boxes.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_routing.json
TCP_BASELINE=BENCH_tcp.json
GATED=(publish_batch srt_overlap covering_release)

# TCP baseline shape + codec-speedup checks (every mode).
python3 - "$TCP_BASELINE" <<'PY'
import json, sys

rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
def latest(group, field="ns_per_iter"):
    out = {}
    for r in rows:
        if r["group"] == group and field in r:
            out[r["bench"]] = r[field]
    return out

thr = latest("tcp_throughput")
for need in ("bin/64", "bin/256", "json/64", "json/256"):
    if need not in thr:
        sys.exit(f"bench_check: {sys.argv[1]} missing tcp_throughput/{need}")
lat = latest("tcp_latency")
for need in ("bin/p99", "json/p99"):
    if need not in lat:
        sys.exit(f"bench_check: {sys.argv[1]} missing tcp_latency/{need}")
summary = latest("tcp_summary", "msgs_per_sec")
for need in ("bin/256", "json/256"):
    if need not in summary:
        sys.exit(f"bench_check: {sys.argv[1]} missing tcp_summary/{need} msgs/sec")
ratio = thr["json/256"] / thr["bin/256"]
if ratio < 2.0:
    sys.exit(f"bench_check: baseline binary codec only {ratio:.2f}x JSON at batch 256 (< 2x)")
print(
    f"bench_check: tcp baseline ok (binary {ratio:.1f}x JSON msg rate at batch 256, "
    f"p99 bin {lat['bin/p99']/1e3:.0f}us vs json {lat['json/p99']/1e3:.0f}us)"
)
PY

# Baseline shape checks (every mode): parallel_match recorded, >=2x.
python3 - "$BASELINE" <<'PY'
import json, sys

rows = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
pm = {r["bench"]: r["ns_per_iter"] for r in rows if r["group"] == "parallel_match"}
for need in ("sequential/10000", "shards1/10000", "shards4/10000", "shards8/10000"):
    if need not in pm:
        sys.exit(f"bench_check: baseline missing parallel_match/{need}")
ratio = pm["sequential/10000"] / pm["shards4/10000"]
if ratio < 2.0:
    sys.exit(f"bench_check: baseline parallel_match shards4 speedup {ratio:.2f}x < 2x")
# shardsN rows run workers = min(N, 4): shards1 is the single-worker
# inline stage, shards4 the pooled 4-worker kernel.
wratio = pm["shards1/10000"] / pm["shards4/10000"]
if wratio < 2.0:
    sys.exit(
        f"bench_check: baseline parallel_match shards4/workers4 over "
        f"shards1/workers1 speedup {wratio:.2f}x < 2x"
    )
print(
    f"bench_check: baseline ok (parallel_match shards4 speedup {ratio:.2f}x "
    f"vs sequential, {wratio:.2f}x vs shards1/workers1)"
)
cy = {r["bench"]: r["ns_per_iter"] for r in rows if r["group"] == "cyclic_routing"}
for need in ("tree/7", "tree_dedup/7", "extra1/7", "extra3/7"):
    if need not in cy:
        sys.exit(f"bench_check: baseline missing cyclic_routing/{need}")
dratio = cy["tree_dedup/7"] / cy["tree/7"]
if dratio > 1.10:
    sys.exit(f"bench_check: baseline dedup overhead {dratio:.2f}x > 1.10x on the tree")
print(f"bench_check: baseline ok (cyclic_routing dedup overhead {dratio:.2f}x on the tree)")
PY

if [[ "${CI_FAST:-0}" == "1" ]]; then
    out="${BENCH_QUICK_JSON:-}"
    cleanup=""
    if [[ -z "$out" ]]; then
        out=$(mktemp)
        cleanup="$out"
        trap 'rm -f "$cleanup"' EXIT
        CRITERION_QUICK=1 CRITERION_JSON="$out" \
            cargo bench -p transmob-bench -q --bench routing -- \
            "${GATED[@]}" parallel_match broker_pipeline cyclic_routing
        CRITERION_QUICK=1 CRITERION_JSON="$out" \
            cargo bench -p transmob-bench -q --bench tcp -- tcp_throughput
    fi
    python3 - "$out" "$BASELINE" "${GATED[@]}" <<'PY'
import json, sys

seen = set()
for line in open(sys.argv[1]):
    r = json.loads(line)
    seen.add((r["group"], r["bench"]))
base = set()
for line in open(sys.argv[2]):
    r = json.loads(line)
    base.add((r["group"], r["bench"]))
gated = set(sys.argv[3:]) | {"parallel_match", "broker_pipeline", "cyclic_routing"}
missing = sorted(k for k in base if k[0] in gated and k not in seen)
if missing:
    sys.exit(f"bench_check: benchmarks vanished from the quick run: {missing}")
for need in ("bin/64", "bin/256", "json/64", "json/256"):
    if ("tcp_throughput", need) not in seen:
        sys.exit(f"bench_check: tcp_throughput/{need} vanished from the quick run")
print(f"bench_check: CI_FAST=1 - all {len([k for k in seen if k[0] in gated])} "
      "gated benchmarks plus tcp_throughput still run; timing gate skipped")
PY
    exit 0
fi

runs="${BENCH_CHECK_RUNS:-3}"
out=$(mktemp)
trap 'rm -f "$out"' EXIT
for _ in $(seq "$runs"); do
    CRITERION_JSON="$out" cargo bench -p transmob-bench -q --bench routing -- \
        "${GATED[@]}" parallel_match cyclic_routing
done

python3 - "$out" "$BASELINE" "${GATED[@]}" <<'PY'
import json, statistics, sys

meas = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    meas.setdefault((r["group"], r["bench"]), []).append(r["ns_per_iter"])
base = {}
for line in open(sys.argv[2]):
    r = json.loads(line)
    base[(r["group"], r["bench"])] = r["ns_per_iter"]
gated = set(sys.argv[3:])

failures = []
for key in sorted(k for k in meas if k[0] in gated):
    med = statistics.median(meas[key])
    if key not in base:
        print(f"bench_check: note: {key[0]}/{key[1]} has no baseline (new bench)")
        continue
    ratio = med / base[key]
    verdict = "FAIL" if ratio > 1.25 else "ok"
    print(f"bench_check: {verdict} {key[0]}/{key[1]} "
          f"median {med:,.0f} ns vs baseline {base[key]:,.0f} ns ({ratio:.2f}x)")
    if ratio > 1.25:
        failures.append(key)

missing = sorted(k for k in base if k[0] in gated and k not in meas)
if missing:
    sys.exit(f"bench_check: gated benchmarks vanished: {missing}")
if not any(k[0] == "parallel_match" for k in meas):
    sys.exit("bench_check: parallel_match group was not measured")
missing_cy = [n for n in ("tree/7", "tree_dedup/7", "extra1/7", "extra3/7")
              if ("cyclic_routing", n) not in meas]
if missing_cy:
    sys.exit(f"bench_check: cyclic_routing rows were not measured: {missing_cy}")

if failures:
    sys.exit(f"bench_check: regression >25% in {failures}")
print("bench_check: regression gate passed")
PY

# Live dedup-overhead gate: the forced-dedup tree must stay within 10%
# of the plain tree. Criterion rows run seconds apart and machine
# drift between them dwarfs the bar, so the gate uses the dedicated
# paired-measurement binary (interleaved A/B slices, median of paired
# ratios — see crates/bench/src/bin/dedup_gate.rs).
dedup_json=$(cargo run -q --release -p transmob-bench --bin dedup_gate)
python3 - "$dedup_json" <<'PY'
import json, sys

r = json.loads(sys.argv[1])
ratio = r["ratio"]
if ratio > 1.10:
    sys.exit(f"bench_check: live dedup overhead {ratio:.2f}x > 1.10x on the tree "
             f"({r['tree_dedup_ns_per_pub']:.0f} vs {r['tree_ns_per_pub']:.0f} ns/pub)")
print(f"bench_check: live dedup gate passed ({ratio:.2f}x on the tree, "
      f"{r['tree_dedup_ns_per_pub']:.0f} vs {r['tree_ns_per_pub']:.0f} ns/pub)")
PY

# Live codec-speedup gate: re-measure the wire throughput and demand
# the binary codec keeps its >=2x message rate at batch 256.
tcp_out=$(mktemp)
trap 'rm -f "$out" "$tcp_out"' EXIT
CRITERION_JSON="$tcp_out" cargo bench -p transmob-bench -q --bench tcp -- tcp_throughput

python3 - "$tcp_out" <<'PY'
import json, sys

thr = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    if r["group"] == "tcp_throughput":
        thr[r["bench"]] = r["ns_per_iter"]
for need in ("bin/256", "json/256"):
    if need not in thr:
        sys.exit(f"bench_check: live run missing tcp_throughput/{need}")
ratio = thr["json/256"] / thr["bin/256"]
if ratio < 2.0:
    sys.exit(f"bench_check: live binary codec only {ratio:.2f}x JSON at batch 256 (< 2x)")
print(f"bench_check: live codec gate passed (binary {ratio:.1f}x JSON at batch 256)")
PY
