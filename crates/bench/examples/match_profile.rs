//! Stage-level profiler for the batch matching stages: repeated-batch
//! timings of the exact `parallel_match` bench workload, without
//! criterion's single-shot quick mode. Used to tune the pooled stage;
//! kept because single-iteration captures on small CI boxes are too
//! noisy to steer micro-optimization.
//!
//! ```text
//! cargo run --release -p transmob-bench --example match_profile -- [rows] [batch] [reps]
//! ```

use std::time::Instant;

use transmob_broker::routing::Prt;
use transmob_broker::Hop;
use transmob_pubsub::{ClientId, Parallelism, Publication, SubId, Subscription};
use transmob_workloads::wide::{wide_publication, wide_sub_filter};

fn loaded_prt_wide(n: usize) -> Prt {
    let mut prt = Prt::new();
    for i in 0..n {
        let sub = Subscription::new(SubId::new(ClientId(i as u64), i as u32), wide_sub_filter(i));
        prt.insert(sub, Hop::Client(ClientId(i as u64)));
    }
    prt
}

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args.next().map_or(10_000, |a| a.parse().unwrap());
    let batch: usize = args.next().map_or(256, |a| a.parse().unwrap());
    let reps: usize = args.next().map_or(20, |a| a.parse().unwrap());
    let pubs: Vec<Publication> = (0..batch).map(wide_publication).collect();

    let configs: [(&str, Parallelism); 5] = [
        ("sequential      ", Parallelism::sequential()),
        ("shards1/workers1", Parallelism::sharded(1, 1)),
        ("shards4/workers1", Parallelism::sharded(4, 1)),
        ("shards1/workers4", Parallelism::sharded(1, 4)),
        ("shards4/workers4", Parallelism::sharded(4, 4)),
    ];
    println!("rows={rows} batch={batch} reps={reps}");
    for (name, par) in configs {
        let mut prt = loaded_prt_wide(rows);
        prt.set_parallelism(par);
        // Warmup: spawn pool workers, grow scratch, fault pages.
        for _ in 0..3 {
            std::hint::black_box(prt.matching_batch(std::hint::black_box(&pubs)));
        }
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(prt.matching_batch(std::hint::black_box(&pubs)));
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = times[times.len() / 2];
        let min = times[0];
        println!("{name}  median {med:8.3} ms/batch   min {min:8.3} ms/batch");
    }
}
