//! Micro-benchmarks of the content-based primitives: publication
//! matching, covering (subsumption) and intersection checks, and
//! filter normalization — the operations every broker performs per
//! message, whose cost model the simulator's `per_entry` processing
//! parameter abstracts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use transmob_pubsub::{Filter, Publication};
use transmob_workloads::SubWorkload;

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    for arity in [1usize, 3, 6] {
        let filter: Filter = (0..arity)
            .fold(Filter::builder(), |b, i| {
                b.ge(&format!("a{i}"), 0).le(&format!("a{i}"), 100)
            })
            .build();
        let hit = (0..arity).fold(Publication::new(), |p, i| p.with(format!("a{i}"), 50));
        let miss = (0..arity).fold(Publication::new(), |p, i| p.with(format!("a{i}"), 500));
        g.bench_with_input(BenchmarkId::new("hit", arity), &arity, |b, _| {
            b.iter(|| black_box(&filter).matches(black_box(&hit)))
        });
        g.bench_with_input(BenchmarkId::new("miss", arity), &arity, |b, _| {
            b.iter(|| black_box(&filter).matches(black_box(&miss)))
        });
    }
    g.finish();
}

fn bench_covering(c: &mut Criterion) {
    let mut g = c.benchmark_group("covering");
    let root = SubWorkload::Covered.instance(0, 0);
    let leaf = SubWorkload::Covered.instance(5, 37);
    let distinct = SubWorkload::Distinct.instance(2, 11);
    g.bench_function("covers/true", |b| {
        b.iter(|| black_box(&root).covers(black_box(&leaf)))
    });
    g.bench_function("covers/false", |b| {
        b.iter(|| black_box(&leaf).covers(black_box(&root)))
    });
    g.bench_function("overlaps/true", |b| {
        b.iter(|| black_box(&root).overlaps(black_box(&leaf)))
    });
    g.bench_function("overlaps/false", |b| {
        b.iter(|| black_box(&root).overlaps(black_box(&distinct)))
    });
    g.finish();
}

fn bench_filter_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_build");
    for preds in [2usize, 6, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(preds), &preds, |b, &n| {
            b.iter(|| {
                let f = (0..n)
                    .fold(Filter::builder(), |fb, i| {
                        fb.ge(&format!("a{}", i % 4), i as i64)
                    })
                    .build();
                black_box(f)
            })
        });
    }
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload_assign_400", |b| {
        b.iter(|| {
            for i in 0..400 {
                black_box(SubWorkload::Covered.assign(i));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_matching,
    bench_covering,
    bench_filter_construction,
    bench_workload_generation
);
criterion_main!(benches);
