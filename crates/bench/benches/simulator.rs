//! Simulator-throughput benchmarks: events per second of the
//! discrete-event engine under the paper's default experiment, and the
//! cost of one full figure-style run at small scale — the numbers that
//! bound how large a `--full` sweep can go.

use criterion::{criterion_group, criterion_main, Criterion};
use transmob_bench::{run_experiment, ExperimentConfig};
use transmob_core::ProtocolKind;
use transmob_sim::SimDuration;
use transmob_workloads::{default_14, paper_default, SubWorkload};

fn bench_experiment_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_run");
    g.sample_size(10);
    for (name, protocol) in [
        ("reconfig", ProtocolKind::Reconfig),
        ("covering", ProtocolKind::Covering),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = ExperimentConfig::new(
                    protocol,
                    default_14(),
                    paper_default(40, SubWorkload::Covered),
                );
                cfg.pause = SimDuration::from_secs(2);
                cfg.duration = SimDuration::from_secs(20);
                cfg.pub_rate = 1.0;
                run_experiment(&cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiment_run);
criterion_main!(benches);
