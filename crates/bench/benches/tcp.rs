//! Wire-protocol benchmarks for the TCP runtime: frame throughput of
//! the binary codec against the JSON debug codec over a real loopback
//! socket pair, and end-to-end publish→notify latency through a full
//! [`TcpNetwork`]. Recorded into `BENCH_tcp.json`
//! (`CRITERION_JSON=BENCH_tcp.json cargo bench -p transmob-bench
//! --bench tcp`); `scripts/bench_check.sh` gates the binary codec at
//! ≥ 2× the JSON message rate for 256-message batches.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, BenchmarkId, Criterion};
use transmob_broker::{PubSubMsg, Topology};
use transmob_core::{Message, MobileBrokerConfig};
use transmob_pubsub::{BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg};
use transmob_runtime::codec::{Frame, FrameDecoder, FrameEncoder, WireMode};
use transmob_runtime::tcp::{TcpNetwork, TcpOptions, DEFAULT_DOWN_QUEUE_HWM};

/// A connected loopback socket pair.
fn sock_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let dialed = TcpStream::connect(addr).expect("connect");
    let (accepted, _) = listener.accept().expect("accept");
    (dialed, accepted)
}

/// A publication batch shaped like broker traffic: a few attributes of
/// mixed type, names repeating across messages (what the binary
/// codec's string interner exploits).
fn make_batch(n: usize) -> Vec<Message> {
    (0..n)
        .map(|i| {
            Message::PubSub(PubSubMsg::Publish(PublicationMsg::new(
                PubId(i as u64),
                ClientId(1),
                Publication::new()
                    .with("symbol", format!("T{}", i % 32))
                    .with("price", (i as f64) * 0.25)
                    .with("volume", i as i64 * 100)
                    .with("halted", i % 7 == 0),
            )))
        })
        .collect()
}

/// One frame per iteration over a real socket, reader thread decoding
/// and acking on a channel — socket, syscall, and codec costs
/// included; msgs/sec follows as `batch / ns_per_iter`.
fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_throughput");
    for mode in [WireMode::Binary, WireMode::Json] {
        for batch in [64usize, 256] {
            let frame = Frame::Msg {
                from: 1,
                msgs: make_batch(batch),
            };
            g.bench_with_input(BenchmarkId::new(mode.token(), batch), &frame, |b, frame| {
                let (w_sock, r_sock) = sock_pair();
                let (ack_tx, ack_rx) = mpsc::channel::<usize>();
                let reader = std::thread::spawn(move || {
                    let mut r = BufReader::new(r_sock);
                    let mut dec = FrameDecoder::new(mode);
                    while let Ok(Some(f)) = dec.read_frame(&mut r) {
                        if let Frame::Msg { msgs, .. } = f {
                            if ack_tx.send(msgs.len()).is_err() {
                                break;
                            }
                        }
                    }
                });
                let mut enc = FrameEncoder::new(mode);
                let mut w = BufWriter::new(w_sock.try_clone().expect("clone"));
                b.iter(|| {
                    let bytes = enc.encode(frame).expect("encoding is total");
                    w.write_all(bytes).expect("write");
                    w.flush().expect("flush");
                    // The ack bounds the in-flight window so the
                    // loopback buffer cannot absorb the benchmark.
                    ack_rx.recv().expect("reader ack")
                });
                drop(w);
                let _ = w_sock.shutdown(Shutdown::Both);
                let _ = reader.join();
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);

/// Mirrors the vendored criterion's CLI filter semantics for the
/// manually measured section below.
fn label_selected(label: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| label.contains(f.as_str()))
}

fn append_json_row(group: &str, bench: &str, field: &str, value: f64, iters: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            file,
            "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"{field}\":{value:.1},\"iters\":{iters}}}"
        );
    }
}

/// Publish→notify latency through a full two-broker overlay; returns
/// the p99 in nanoseconds.
fn measure_p99_latency(mode: WireMode, samples: usize) -> u64 {
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(2))
        .options(MobileBrokerConfig::reconfig())
        .tcp(TcpOptions {
            wire: mode,
            down_queue_hwm: DEFAULT_DOWN_QUEUE_HWM,
            ..TcpOptions::default()
        })
        .bind(|_| "127.0.0.1:0".to_string())
        .start()
        .expect("sockets");
    let p = net.create_client(BrokerId(1), ClientId(1));
    let s = net.create_client(BrokerId(2), ClientId(2));
    let space = Filter::builder().ge("x", 0).build();
    p.advertise(space.clone());
    s.subscribe(space);
    std::thread::sleep(Duration::from_millis(150));
    for i in 0..10 {
        p.publish(Publication::new().with("x", i));
        s.recv_timeout(Duration::from_secs(2)).expect("warmup");
    }
    let mut lat: Vec<u64> = Vec::with_capacity(samples);
    for i in 0..samples {
        let t = Instant::now();
        p.publish(Publication::new().with("x", i as i64));
        s.recv_timeout(Duration::from_secs(2)).expect("delivery");
        lat.push(t.elapsed().as_nanos() as u64);
    }
    net.shutdown();
    lat.sort_unstable();
    lat[(lat.len() * 99 / 100).min(lat.len() - 1)]
}

/// The manually measured tail: p99 end-to-end latency per codec, plus
/// msgs/sec summary rows derived from the `tcp_throughput` timings
/// already appended to `CRITERION_JSON`.
fn latency_and_summary() {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let samples = if quick { 5 } else { 300 };
    for mode in [WireMode::Binary, WireMode::Json] {
        let label = format!("tcp_latency/{}/p99", mode.token());
        if !label_selected(&label) {
            continue;
        }
        let p99 = measure_p99_latency(mode, samples);
        println!("bench: {label:<50} {p99:>14} ns (p99 of {samples})");
        append_json_row(
            "tcp_latency",
            &format!("{}/p99", mode.token()),
            "ns_per_iter",
            p99 as f64,
            samples,
        );
    }
    // msgs/sec summary: derived from the last recorded timing of each
    // tcp_throughput bench (batch size is the bench id's suffix).
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let Ok(contents) = std::fs::read_to_string(&path) else {
        return;
    };
    let mut latest: Vec<(String, f64)> = Vec::new();
    for line in contents.lines() {
        let Some(rest) = line.strip_prefix("{\"group\":\"tcp_throughput\",\"bench\":\"") else {
            continue;
        };
        let Some((bench, tail)) = rest.split_once('"') else {
            continue;
        };
        let Some(ns) = tail
            .strip_prefix(",\"ns_per_iter\":")
            .and_then(|t| t.split(',').next())
            .and_then(|t| t.parse::<f64>().ok())
        else {
            continue;
        };
        latest.retain(|(b, _)| b != bench);
        latest.push((bench.to_string(), ns));
    }
    for (bench, ns) in latest {
        let Some(batch) = bench.rsplit('/').next().and_then(|b| b.parse::<f64>().ok()) else {
            continue;
        };
        let rate = batch * 1e9 / ns.max(1.0);
        println!("bench: tcp_summary/{bench:<38} {rate:>14.0} msgs/sec");
        append_json_row("tcp_summary", &bench, "msgs_per_sec", rate, 1);
    }
}

fn main() {
    benches();
    latency_and_summary();
}
