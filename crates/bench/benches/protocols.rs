//! End-to-end movement-protocol benchmarks on the deterministic
//! instant network: one full movement transaction under each protocol,
//! scaling with path length and bystander population, plus the
//! make-before-break covering ablation and the hop-by-hop
//! reconfiguration step in isolation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use transmob_broker::Topology;
use transmob_core::{ClientOp, InstantNet, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId};
use transmob_workloads::{full_space_adv, SubWorkload};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

/// A chain network with a publisher at B1, `bystanders` covered-
/// workload subscribers at the far end, and the mover (a root
/// subscription) also at the far end.
fn setup(chain: u32, bystanders: usize, config: MobileBrokerConfig) -> InstantNet {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(chain))
        .options(config)
        .start();
    net.create_client(b(1), ClientId(1));
    net.client_op(ClientId(1), ClientOp::Advertise(full_space_adv()));
    for i in 0..bystanders {
        let cid = ClientId(1000 + i as u64);
        net.create_client(b(chain), cid);
        net.client_op(cid, ClientOp::Subscribe(SubWorkload::Covered.assign(i + 1)));
    }
    let mover = ClientId(500);
    net.create_client(b(chain), mover);
    net.client_op(
        mover,
        ClientOp::Subscribe(SubWorkload::Covered.instance(0, 99)),
    );
    net
}

fn bench_move_by_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_movement");
    for (name, protocol, config) in [
        (
            "reconfig",
            ProtocolKind::Reconfig,
            MobileBrokerConfig::reconfig(),
        ),
        (
            "covering",
            ProtocolKind::Covering,
            MobileBrokerConfig::covering(),
        ),
        (
            "covering_make_before_break",
            ProtocolKind::Covering,
            MobileBrokerConfig {
                make_before_break: true,
                ..MobileBrokerConfig::covering()
            },
        ),
    ] {
        let net = setup(8, 50, config);
        g.bench_function(name, |bch| {
            bch.iter_batched(
                || net.clone(),
                |mut net| {
                    net.client_op(ClientId(500), ClientOp::MoveTo(b(2), black_box(protocol)));
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_move_by_path_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("reconfig_path_length");
    for chain in [4u32, 8, 16] {
        let net = setup(chain, 20, MobileBrokerConfig::reconfig());
        g.bench_with_input(BenchmarkId::from_parameter(chain), &chain, |bch, _| {
            bch.iter_batched(
                || net.clone(),
                |mut net| {
                    net.client_op(
                        ClientId(500),
                        ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
                    );
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_move_by_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("move_vs_bystanders");
    for n in [10usize, 100, 300] {
        for (name, protocol, config) in [
            (
                "reconfig",
                ProtocolKind::Reconfig,
                MobileBrokerConfig::reconfig(),
            ),
            (
                "covering",
                ProtocolKind::Covering,
                MobileBrokerConfig::covering(),
            ),
        ] {
            let net = setup(8, n, config);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |bch, _| {
                bch.iter_batched(
                    || net.clone(),
                    |mut net| {
                        net.client_op(ClientId(500), ClientOp::MoveTo(b(2), black_box(protocol)));
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_move_by_protocol,
    bench_move_by_path_length,
    bench_move_by_population
);
criterion_main!(benches);
