//! Broker routing-table operation benchmarks, including the
//! DESIGN.md ablations:
//!
//! - publication forwarding cost vs. PRT size (the congestion knob);
//! - subscription handling with covering off / lazy / active;
//! - the covering-release strategies — the paper's conservative
//!   release vs. the precise variant — on the root-departure burst.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use transmob_broker::{
    BrokerConfig, BrokerCore, CoveringMode, Hop, Prt, PubSubMsg, Srt, SyncNet, Topology,
};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Parallelism, PubId, Publication, PublicationMsg,
    SubId, Subscription,
};
use transmob_workloads::{
    full_space_adv, wide_publication, wide_sub_filter, SubWorkload, ATTR, ATTR_TAG, ATTR_Y,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

/// A broker with `n` workload subscriptions installed from a client
/// and the full-space advertisement pointing off-broker.
fn loaded_broker(n: usize, config: BrokerConfig) -> BrokerCore {
    let mut core = BrokerCore::new(b(1), [b(2), b(3)], config);
    core.handle(
        Hop::Broker(b(2)),
        PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(ClientId(1), 0),
            full_space_adv(),
        )),
    );
    for i in 0..n {
        let cid = ClientId(1000 + i as u64);
        let sub = Subscription::new(SubId::new(cid, 0), SubWorkload::Covered.assign(i));
        core.handle(Hop::Client(cid), PubSubMsg::Subscribe(sub));
    }
    core
}

fn bench_publish_vs_table_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("publish_forwarding");
    for n in [10usize, 100, 400] {
        let core = loaded_broker(n, BrokerConfig::plain());
        let p = PublicationMsg::new(PubId(1), ClientId(1), Publication::new().with(ATTR, 1500));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter_batched(
                || core.clone(),
                |mut core| core.handle(Hop::Broker(b(2)), PubSubMsg::Publish(black_box(p.clone()))),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_subscribe_by_covering_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe");
    for (name, mode) in [
        ("off", CoveringMode::Off),
        ("lazy", CoveringMode::Lazy),
        ("active", CoveringMode::Active),
    ] {
        let config = BrokerConfig {
            sub_covering: mode,
            adv_covering: CoveringMode::Off,
            conservative_release: true,
            ..Default::default()
        };
        let core = loaded_broker(100, config);
        let sub = Subscription::new(
            SubId::new(ClientId(9999), 0),
            SubWorkload::Covered.instance(4, 50),
        );
        g.bench_function(name, |bch| {
            bch.iter_batched(
                || core.clone(),
                |mut core| {
                    core.handle(
                        Hop::Client(ClientId(9999)),
                        PubSubMsg::Subscribe(black_box(sub.clone())),
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The DESIGN.md release-strategy ablation: cost of unsubscribing the
/// only forwarded root while many covered subscriptions are quenched
/// behind it.
fn bench_release_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("root_unsubscribe_release");
    for (name, config) in [
        ("conservative", BrokerConfig::covering()),
        ("precise", BrokerConfig::covering_precise_release()),
    ] {
        // One root (forwarded) + 99 covered leaves (quenched).
        let mut core = BrokerCore::new(b(1), [b(2)], config);
        core.handle(
            Hop::Broker(b(2)),
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                full_space_adv(),
            )),
        );
        let root = Subscription::new(
            SubId::new(ClientId(500), 0),
            SubWorkload::Covered.instance(0, 0),
        );
        core.handle(
            Hop::Client(ClientId(500)),
            PubSubMsg::Subscribe(root.clone()),
        );
        for i in 0..99 {
            let cid = ClientId(1000 + i as u64);
            let group = 1 + (i % 9);
            let sub = Subscription::new(
                SubId::new(cid, 0),
                SubWorkload::Covered.instance(group, (i / 9) as i64),
            );
            core.handle(Hop::Client(cid), PubSubMsg::Subscribe(sub));
        }
        g.bench_function(name, |bch| {
            bch.iter_batched(
                || core.clone(),
                |mut core| {
                    black_box(
                        core.handle(Hop::Client(ClientId(500)), PubSubMsg::Unsubscribe(root.id)),
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_advertise_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("advertise");
    let core = loaded_broker(200, BrokerConfig::plain());
    let adv = Advertisement::new(AdvId::new(ClientId(77), 0), full_space_adv());
    g.bench_function("flood_with_pull_200_subs", |bch| {
        bch.iter_batched(
            || core.clone(),
            |mut core| {
                core.handle(
                    Hop::Broker(b(3)),
                    PubSubMsg::Advertise(black_box(adv.clone())),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// A PRT with `n` workload subscriptions (the 40-group random pool,
/// so range structure and shifts vary across the table).
fn loaded_prt(n: usize) -> Prt {
    let mut prt = Prt::new();
    for i in 0..n {
        let sub = Subscription::new(
            SubId::new(ClientId(i as u64), i as u32),
            SubWorkload::Random.assign(i),
        );
        prt.insert(sub, Hop::Client(ClientId(i as u64)));
    }
    prt
}

/// The tentpole ablation: publication matching through the counting
/// match index vs. the linear reference scan, as the PRT grows.
fn bench_prt_matching_index_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("prt_matching");
    for n in [1_000usize, 10_000, 100_000] {
        let prt = loaded_prt(n);
        let p = Publication::new().with(ATTR, 1500);
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.matching(black_box(&p))))
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.matching_linear(black_box(&p))))
        });
    }
    g.finish();
}

/// Overlap (subscription-routing intersection) through the index vs.
/// the linear scan, as the SRT grows.
fn bench_srt_overlap_index_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("srt_overlap");
    for n in [1_000usize, 10_000] {
        let mut srt = Srt::new();
        for i in 0..n {
            let adv = Advertisement::new(
                AdvId::new(ClientId(i as u64), i as u32),
                SubWorkload::Random.assign(i),
            );
            srt.insert(adv, Hop::Broker(b(2)));
        }
        let q = SubWorkload::Covered.instance(3, 7);
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(srt.overlapping(black_box(&q))))
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |bch, _| {
            bch.iter(|| black_box(srt.overlapping_linear(black_box(&q))))
        });
    }
    g.finish();
}

/// The containment ablation behind the release cascade: enumerating
/// the candidates a withdrawn root had quenched (`covered_by`, the
/// `release_quenched_subs` hot path) and the quench check for a fresh
/// subscription (`covering`), through the dual-endpoint containment
/// index vs. the linear `Filter::covers` scan.
fn bench_covering_release_index_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("covering_release");
    for n in [1_000usize, 10_000] {
        let prt = loaded_prt(n);
        // A withdrawn band-0 root releases everything it covered…
        let root = SubWorkload::Covered.instance(0, 0);
        // …and a fresh leaf asks whether anything quenches it.
        let leaf = SubWorkload::Covered.instance(3, 7);
        g.bench_with_input(BenchmarkId::new("covered_by_indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covered_by(black_box(&root))))
        });
        g.bench_with_input(BenchmarkId::new("covered_by_linear", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covered_by_linear(black_box(&root))))
        });
        g.bench_with_input(BenchmarkId::new("covering_indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covering(black_box(&leaf))))
        });
        g.bench_with_input(BenchmarkId::new("covering_linear", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covering_linear(black_box(&leaf))))
        });
    }
    g.finish();
}

/// A PRT mixing the 40-group random pool with the two-attribute and
/// string-prefix pools, so batch matching exercises the numeric sweep,
/// the second attribute group, and the string buckets together.
fn loaded_prt_mixed(n: usize) -> Prt {
    let mut prt = Prt::new();
    for i in 0..n {
        let w = match i % 3 {
            0 => SubWorkload::Random,
            1 => SubWorkload::MultiAttr,
            _ => SubWorkload::StrPrefix,
        };
        let sub = Subscription::new(SubId::new(ClientId(i as u64), i as u32), w.assign(i / 3));
        prt.insert(sub, Hop::Client(ClientId(i as u64)));
    }
    prt
}

/// A batch of `k` publications spread across the attribute space, each
/// carrying all three workload attributes.
fn pub_batch(k: usize) -> Vec<Publication> {
    (0..k)
        .map(|i| {
            Publication::new()
                .with(ATTR, ((i * 997) % 100_000) as i64)
                .with(ATTR_Y, ((i * 131) % 6_000) as i64)
                .with(ATTR_TAG, format!("g{}x", i % 10))
        })
        .collect()
}

/// The PR's tentpole ablation: amortized batch matching through
/// `matching_routes_batch`. Every row processes the *same* 256
/// publications per iteration, chunked at the row's batch size, so
/// `ns_per_iter` is directly comparable across batch sizes and the
/// amortization ratio is `ns(batch1) / ns(batchK)`.
fn bench_publish_batch(c: &mut Criterion) {
    const TOTAL: usize = 256;
    let mut g = c.benchmark_group("publish_batch");
    for n in [1_000usize, 10_000] {
        let prt = loaded_prt_mixed(n);
        let pubs = pub_batch(TOTAL);
        for k in [1usize, 16, 64, 256] {
            g.bench_with_input(BenchmarkId::new(format!("batch{k}"), n), &n, |bch, _| {
                bch.iter(|| {
                    for chunk in pubs.chunks(k) {
                        black_box(prt.matching_routes_batch(black_box(chunk)));
                    }
                })
            });
        }
        // The pre-batching API as the outside baseline.
        g.bench_with_input(BenchmarkId::new("unbatched", n), &n, |bch, _| {
            bch.iter(|| {
                for p in &pubs {
                    black_box(prt.matching_routes(black_box(p)));
                }
            })
        });
    }
    g.finish();
}

/// A PRT of `n` wide-attribute two-band subscriptions: work in every
/// shard, hits ≫ matches (the shape the parallel merge targets).
fn loaded_prt_wide(n: usize) -> Prt {
    let mut prt = Prt::new();
    for i in 0..n {
        let sub = Subscription::new(SubId::new(ClientId(i as u64), i as u32), wide_sub_filter(i));
        prt.insert(sub, Hop::Client(ClientId(i as u64)));
    }
    prt
}

/// The sharded parallel matching stage against the sequential
/// amortized sweep, 10k wide PRT rows, one 256-publication batch per
/// iteration. `sequential` is the workers = 0 fallback; `shardsN` rows
/// run the parallel stage with N shards (worker pool capped at 4).
fn bench_parallel_match(c: &mut Criterion) {
    const N: usize = 10_000;
    const BATCH: usize = 256;
    let pubs: Vec<Publication> = (0..BATCH).map(wide_publication).collect();
    let mut g = c.benchmark_group("parallel_match");
    let prt = loaded_prt_wide(N);
    g.bench_with_input(BenchmarkId::new("sequential", N), &N, |bch, _| {
        bch.iter(|| black_box(prt.matching_batch(black_box(&pubs))))
    });
    for shards in [1usize, 4, 8] {
        let mut prt = loaded_prt_wide(N);
        prt.set_parallelism(Parallelism::sharded(shards, shards.min(4)));
        g.bench_with_input(
            BenchmarkId::new(format!("shards{shards}"), N),
            &N,
            |bch, _| bch.iter(|| black_box(prt.matching_batch(black_box(&pubs)))),
        );
    }
    g.finish();
}

/// A broker hosting `n` wide two-band subscriptions as local clients
/// (publications match locally; no forwarding edge loaded).
fn loaded_core_wide(n: usize, par: Parallelism) -> BrokerCore {
    let mut core = BrokerCore::new(
        b(1),
        [b(2), b(3)],
        BrokerConfig::plain().with_parallelism(par),
    );
    for i in 0..n {
        let cid = ClientId(i as u64);
        let sub = Subscription::new(SubId::new(cid, i as u32), wide_sub_filter(i));
        core.handle(Hop::Client(cid), PubSubMsg::Subscribe(sub));
    }
    core
}

/// Single-broker ingestion throughput, monolithic vs pipelined: the
/// same 256-publication broker batch applied in 64-message runs
/// either by `handle_batch` alone or split runtime-style — an ingest
/// thread pre-matching each run under a read lock while the apply
/// stage commits the previous one under the write lock. On one
/// hardware thread the two run at par (the split only pays once the
/// stages land on different cores); the bench exists to price the
/// pipeline's overhead and catch regressions in the prematch path.
fn bench_broker_pipeline(c: &mut Criterion) {
    const N: usize = 10_000;
    const BATCH: usize = 256;
    const CHUNK: usize = 64;
    let msgs: Vec<PubSubMsg> = (0..BATCH)
        .map(|i| {
            PubSubMsg::Publish(PublicationMsg::new(
                PubId(i as u64),
                ClientId(u64::MAX),
                wide_publication(i),
            ))
        })
        .collect();
    let mut g = c.benchmark_group("broker_pipeline");
    let par = Parallelism::sharded(4, 4);

    let mut core = loaded_core_wide(N, par);
    g.bench_with_input(BenchmarkId::new("monolithic", N), &N, |bch, _| {
        bch.iter(|| {
            for chunk in msgs.chunks(CHUNK) {
                black_box(core.handle_batch(Hop::Broker(b(2)), chunk.to_vec()));
            }
        })
    });

    let core = std::sync::RwLock::new(loaded_core_wide(N, par));
    let core = &core;
    let msgs_ref = &msgs;
    g.bench_with_input(BenchmarkId::new("pipelined", N), &N, |bch, _| {
        bch.iter(|| {
            let (tx, rx) = std::sync::mpsc::sync_channel(2);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for chunk in msgs_ref.chunks(CHUNK) {
                        let contents: Vec<Publication> = chunk
                            .iter()
                            .filter_map(|m| match m {
                                PubSubMsg::Publish(p) => Some(p.content.clone()),
                                _ => None,
                            })
                            .collect();
                        let pre = core.read().unwrap().prematch(&contents);
                        if tx.send((chunk.to_vec(), pre)).is_err() {
                            return;
                        }
                    }
                });
                for (chunk, mut pre) in rx.iter() {
                    black_box(core.write().unwrap().handle_batch_prematched(
                        Hop::Broker(b(2)),
                        chunk,
                        Some(&mut pre),
                    ));
                }
            });
        })
    });
    g.finish();
}

/// End-to-end publication routing over a 7-broker overlay
/// (DESIGN.md §15 ablation): the acyclic chain as baseline; the same
/// chain with the dedup gate forced on (`tree_dedup` — priced by the
/// <10% overhead bar in scripts/bench_check.sh); and cyclic variants
/// closing 1 and 3 extra edges, where publications fan out over the
/// redundant routes and the per-broker dedup windows drop the second
/// copies.
fn bench_cyclic_routing(c: &mut Criterion) {
    const BROKERS: u32 = 7;
    const EXTRA: [(u32, u32); 3] = [(1, 7), (2, 6), (3, 5)];
    let mut g = c.benchmark_group("cyclic_routing");
    for (name, extra, force_multipath) in [
        ("tree", 0usize, false),
        ("tree_dedup", 0, true),
        ("extra1", 1, false),
        ("extra3", 3, false),
    ] {
        let mut topo = Topology::chain(BROKERS);
        for (x, y) in EXTRA.iter().take(extra) {
            topo.add_edge(b(*x), b(*y)).expect("cycle-closing edge");
        }
        let config = if force_multipath {
            BrokerConfig::plain().with_multipath()
        } else {
            BrokerConfig::plain()
        };
        let mut net = SyncNet::builder().overlay(topo).options(config).start();
        net.client_send(
            b(1),
            ClientId(1),
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                full_space_adv(),
            )),
        );
        for (i, home) in [(0u64, 4u32), (1, BROKERS)] {
            let cid = ClientId(100 + i);
            let sub =
                Subscription::new(SubId::new(cid, 0), SubWorkload::Covered.assign(i as usize));
            net.client_send(b(home), cid, PubSubMsg::Subscribe(sub));
        }
        // Fresh PubIds per iteration: reused ids would be swallowed by
        // the dedup windows and measure the drop path instead.
        let mut next_id = 0u64;
        g.bench_with_input(BenchmarkId::new(name, BROKERS), &BROKERS, |bch, _| {
            bch.iter(|| {
                next_id += 1;
                net.client_send(
                    b(1),
                    ClientId(1),
                    PubSubMsg::Publish(PublicationMsg::new(
                        PubId(next_id),
                        ClientId(1),
                        Publication::new().with(ATTR, 1500),
                    )),
                );
                black_box(net.take_deliveries())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_prt_matching_index_vs_linear,
    bench_srt_overlap_index_vs_linear,
    bench_covering_release_index_vs_linear,
    bench_publish_vs_table_size,
    bench_subscribe_by_covering_mode,
    bench_release_strategies,
    bench_advertise_flood,
    bench_publish_batch,
    bench_parallel_match,
    bench_broker_pipeline,
    bench_cyclic_routing
);
criterion_main!(benches);
