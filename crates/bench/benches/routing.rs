//! Broker routing-table operation benchmarks, including the
//! DESIGN.md ablations:
//!
//! - publication forwarding cost vs. PRT size (the congestion knob);
//! - subscription handling with covering off / lazy / active;
//! - the covering-release strategies — the paper's conservative
//!   release vs. the precise variant — on the root-departure burst.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use transmob_broker::{BrokerConfig, BrokerCore, CoveringMode, Hop, Prt, PubSubMsg, Srt};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};
use transmob_workloads::{full_space_adv, SubWorkload, ATTR};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

/// A broker with `n` workload subscriptions installed from a client
/// and the full-space advertisement pointing off-broker.
fn loaded_broker(n: usize, config: BrokerConfig) -> BrokerCore {
    let mut core = BrokerCore::new(b(1), [b(2), b(3)], config);
    core.handle(
        Hop::Broker(b(2)),
        PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(ClientId(1), 0),
            full_space_adv(),
        )),
    );
    for i in 0..n {
        let cid = ClientId(1000 + i as u64);
        let sub = Subscription::new(SubId::new(cid, 0), SubWorkload::Covered.assign(i));
        core.handle(Hop::Client(cid), PubSubMsg::Subscribe(sub));
    }
    core
}

fn bench_publish_vs_table_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("publish_forwarding");
    for n in [10usize, 100, 400] {
        let core = loaded_broker(n, BrokerConfig::plain());
        let p = PublicationMsg::new(PubId(1), ClientId(1), Publication::new().with(ATTR, 1500));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter_batched(
                || core.clone(),
                |mut core| core.handle(Hop::Broker(b(2)), PubSubMsg::Publish(black_box(p.clone()))),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_subscribe_by_covering_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("subscribe");
    for (name, mode) in [
        ("off", CoveringMode::Off),
        ("lazy", CoveringMode::Lazy),
        ("active", CoveringMode::Active),
    ] {
        let config = BrokerConfig {
            sub_covering: mode,
            adv_covering: CoveringMode::Off,
            conservative_release: true,
        };
        let core = loaded_broker(100, config);
        let sub = Subscription::new(
            SubId::new(ClientId(9999), 0),
            SubWorkload::Covered.instance(4, 50),
        );
        g.bench_function(name, |bch| {
            bch.iter_batched(
                || core.clone(),
                |mut core| {
                    core.handle(
                        Hop::Client(ClientId(9999)),
                        PubSubMsg::Subscribe(black_box(sub.clone())),
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The DESIGN.md release-strategy ablation: cost of unsubscribing the
/// only forwarded root while many covered subscriptions are quenched
/// behind it.
fn bench_release_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("root_unsubscribe_release");
    for (name, config) in [
        ("conservative", BrokerConfig::covering()),
        ("precise", BrokerConfig::covering_precise_release()),
    ] {
        // One root (forwarded) + 99 covered leaves (quenched).
        let mut core = BrokerCore::new(b(1), [b(2)], config);
        core.handle(
            Hop::Broker(b(2)),
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                full_space_adv(),
            )),
        );
        let root = Subscription::new(
            SubId::new(ClientId(500), 0),
            SubWorkload::Covered.instance(0, 0),
        );
        core.handle(
            Hop::Client(ClientId(500)),
            PubSubMsg::Subscribe(root.clone()),
        );
        for i in 0..99 {
            let cid = ClientId(1000 + i as u64);
            let group = 1 + (i % 9);
            let sub = Subscription::new(
                SubId::new(cid, 0),
                SubWorkload::Covered.instance(group, (i / 9) as i64),
            );
            core.handle(Hop::Client(cid), PubSubMsg::Subscribe(sub));
        }
        g.bench_function(name, |bch| {
            bch.iter_batched(
                || core.clone(),
                |mut core| {
                    black_box(
                        core.handle(Hop::Client(ClientId(500)), PubSubMsg::Unsubscribe(root.id)),
                    )
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_advertise_flood(c: &mut Criterion) {
    let mut g = c.benchmark_group("advertise");
    let core = loaded_broker(200, BrokerConfig::plain());
    let adv = Advertisement::new(AdvId::new(ClientId(77), 0), full_space_adv());
    g.bench_function("flood_with_pull_200_subs", |bch| {
        bch.iter_batched(
            || core.clone(),
            |mut core| {
                core.handle(
                    Hop::Broker(b(3)),
                    PubSubMsg::Advertise(black_box(adv.clone())),
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// A PRT with `n` workload subscriptions (the 40-group random pool,
/// so range structure and shifts vary across the table).
fn loaded_prt(n: usize) -> Prt {
    let mut prt = Prt::new();
    for i in 0..n {
        let sub = Subscription::new(
            SubId::new(ClientId(i as u64), i as u32),
            SubWorkload::Random.assign(i),
        );
        prt.insert(sub, Hop::Client(ClientId(i as u64)));
    }
    prt
}

/// The tentpole ablation: publication matching through the counting
/// match index vs. the linear reference scan, as the PRT grows.
fn bench_prt_matching_index_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("prt_matching");
    for n in [1_000usize, 10_000, 100_000] {
        let prt = loaded_prt(n);
        let p = Publication::new().with(ATTR, 1500);
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.matching(black_box(&p))))
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.matching_linear(black_box(&p))))
        });
    }
    g.finish();
}

/// Overlap (subscription-routing intersection) through the index vs.
/// the linear scan, as the SRT grows.
fn bench_srt_overlap_index_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("srt_overlap");
    for n in [1_000usize, 10_000] {
        let mut srt = Srt::new();
        for i in 0..n {
            let adv = Advertisement::new(
                AdvId::new(ClientId(i as u64), i as u32),
                SubWorkload::Random.assign(i),
            );
            srt.insert(adv, Hop::Broker(b(2)));
        }
        let q = SubWorkload::Covered.instance(3, 7);
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(srt.overlapping(black_box(&q))))
        });
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |bch, _| {
            bch.iter(|| black_box(srt.overlapping_linear(black_box(&q))))
        });
    }
    g.finish();
}

/// The containment ablation behind the release cascade: enumerating
/// the candidates a withdrawn root had quenched (`covered_by`, the
/// `release_quenched_subs` hot path) and the quench check for a fresh
/// subscription (`covering`), through the dual-endpoint containment
/// index vs. the linear `Filter::covers` scan.
fn bench_covering_release_index_vs_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("covering_release");
    for n in [1_000usize, 10_000] {
        let prt = loaded_prt(n);
        // A withdrawn band-0 root releases everything it covered…
        let root = SubWorkload::Covered.instance(0, 0);
        // …and a fresh leaf asks whether anything quenches it.
        let leaf = SubWorkload::Covered.instance(3, 7);
        g.bench_with_input(BenchmarkId::new("covered_by_indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covered_by(black_box(&root))))
        });
        g.bench_with_input(BenchmarkId::new("covered_by_linear", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covered_by_linear(black_box(&root))))
        });
        g.bench_with_input(BenchmarkId::new("covering_indexed", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covering(black_box(&leaf))))
        });
        g.bench_with_input(BenchmarkId::new("covering_linear", n), &n, |bch, _| {
            bch.iter(|| black_box(prt.covering_linear(black_box(&leaf))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_prt_matching_index_vs_linear,
    bench_srt_overlap_index_vs_linear,
    bench_covering_release_index_vs_linear,
    bench_publish_vs_table_size,
    bench_subscribe_by_covering_mode,
    bench_release_strategies,
    bench_advertise_flood
);
criterion_main!(benches);
