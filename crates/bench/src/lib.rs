//! # transmob-bench
//!
//! The benchmark and experiment harness of the transmob reproduction
//! of *"Transactional Mobility in Distributed Content-Based
//! Publish/Subscribe Systems"* (ICDCS 2009).
//!
//! - [`experiments`] — the parameterized experiment runner; every
//!   figure of the paper's Sec. 5 is one sweep over
//!   [`ExperimentConfig`].
//! - `src/bin/figures.rs` — the binary that regenerates each figure's
//!   data series (printed as tables and written as JSON under
//!   `results/`).
//! - `benches/` — Criterion micro-benchmarks of the primitives
//!   (matching, covering, routing-table updates, protocol rounds) and
//!   the design-choice ablations called out in `DESIGN.md`.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{run_experiment, ExperimentConfig, ExperimentResult, MovePoint};
