//! Paired measurement behind the dedup-overhead gate
//! (scripts/bench_check.sh): end-to-end publication routing on a
//! 7-broker chain, plain vs. with the multi-path dedup gate forced on
//! (`BrokerConfig::with_multipath`), reported as a ratio.
//!
//! A criterion row pair cannot carry this gate: the two rows run
//! seconds apart and CPU frequency drift between them dwarfs the
//! <10% bar. Here the two nets are timed in short *interleaved*
//! slices (A/B then B/A, cancelling ordering bias), each round yields
//! one paired ratio, and the median over all rounds is printed — a
//! measurement design that survives noisy shared boxes.
//!
//! Prints one JSON line:
//! `{"tree_ns_per_pub":..,"tree_dedup_ns_per_pub":..,"ratio":..}`

use std::time::Instant;

use transmob_broker::{BrokerConfig, PubSubMsg, SyncNet, Topology, DEDUP_WINDOW_CAP};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};
use transmob_workloads::{full_space_adv, SubWorkload, ATTR};

const BROKERS: u32 = 7;
const ROUNDS: usize = 21;
const SLICE: u64 = 2_000;

struct Net {
    net: SyncNet,
    next_id: u64,
}

impl Net {
    fn new(config: BrokerConfig) -> Self {
        let mut net = SyncNet::builder()
            .overlay(Topology::chain(BROKERS))
            .options(config)
            .start();
        net.client_send(
            BrokerId(1),
            ClientId(1),
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                full_space_adv(),
            )),
        );
        for (i, home) in [(0u64, 4u32), (1, BROKERS)] {
            let cid = ClientId(100 + i);
            let sub =
                Subscription::new(SubId::new(cid, 0), SubWorkload::Covered.assign(i as usize));
            net.client_send(BrokerId(home), cid, PubSubMsg::Subscribe(sub));
        }
        Net { net, next_id: 0 }
    }

    /// Routes `n` fresh publications end to end; returns ns per pub.
    fn slice(&mut self, n: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..n {
            self.next_id += 1;
            self.net.client_send(
                BrokerId(1),
                ClientId(1),
                PubSubMsg::Publish(PublicationMsg::new(
                    PubId(self.next_id),
                    ClientId(1),
                    Publication::new().with(ATTR, 1500),
                )),
            );
            std::hint::black_box(self.net.take_deliveries());
        }
        start.elapsed().as_nanos() as f64 / n as f64
    }
}

fn main() {
    let mut tree = Net::new(BrokerConfig::plain());
    let mut dedup = Net::new(BrokerConfig::plain().with_multipath());
    // Warm up into steady state: past DEDUP_WINDOW_CAP publications
    // every dedup insert also evicts, the honest long-run cost.
    tree.slice(DEDUP_WINDOW_CAP as u64 + SLICE);
    dedup.slice(DEDUP_WINDOW_CAP as u64 + SLICE);

    let mut tree_ns = Vec::with_capacity(2 * ROUNDS);
    let mut dedup_ns = Vec::with_capacity(2 * ROUNDS);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        // Alternate the order each round so neither net systematically
        // runs on the warmer half of the pair.
        let (t, d) = if round % 2 == 0 {
            let t = tree.slice(SLICE);
            let d = dedup.slice(SLICE);
            (t, d)
        } else {
            let d = dedup.slice(SLICE);
            let t = tree.slice(SLICE);
            (t, d)
        };
        tree_ns.push(t);
        dedup_ns.push(d);
        ratios.push(d / t);
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
        v[v.len() / 2]
    };
    let (t, d, r) = (
        median(&mut tree_ns),
        median(&mut dedup_ns),
        median(&mut ratios),
    );
    println!("{{\"tree_ns_per_pub\":{t:.1},\"tree_dedup_ns_per_pub\":{d:.1},\"ratio\":{r:.4}}}");
}
