//! Regenerates every figure of the paper's evaluation (Sec. 5).
//!
//! ```text
//! figures <fig5|fig8|fig9|fig10|fig11|fig12|fig13|fig14|all> [--full] [--seed N] [--out DIR]
//! ```
//!
//! By default the experiments run at a reduced scale (fewer clients,
//! shorter measured phase) so the whole suite finishes in minutes;
//! `--full` restores the paper's parameters (400–1000 clients, 10 s
//! pauses, long runs). Each figure prints its series as a table and
//! writes the raw data as JSON under the output directory.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use transmob_bench::{run_experiment, ExperimentConfig, ExperimentResult};
use transmob_core::modelcheck::{explore, ExploreConfig};
use transmob_core::ProtocolKind;
use transmob_pubsub::BrokerId;
use transmob_sim::{NetworkModel, SimDuration};
use transmob_workloads as wl;
use transmob_workloads::SubWorkload;

#[derive(Debug, Clone)]
struct Opts {
    figures: Vec<String>,
    full: bool,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Opts {
    let mut figures = Vec::new();
    let mut full = false;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => full = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a dir")));
            }
            "all" => figures.extend(
                [
                    "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                ]
                .map(String::from),
            ),
            "ablations" | "publishers" | "throughput" | "soak" => figures.push(a),
            f if f.starts_with("fig") => figures.push(f.to_owned()),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if figures.is_empty() {
        usage("no figure selected");
    }
    Opts {
        figures,
        full,
        seed,
        out,
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: figures <fig5|fig8|...|fig14|ablations|publishers|throughput|soak|all> [--full] [--seed N] [--out DIR]"
    );
    std::process::exit(2);
}

/// Scaled experiment sizes: (clients, pause s, duration s).
fn scale(o: &Opts) -> (usize, u64, u64) {
    if o.full {
        (400, 10, 600)
    } else {
        (100, 5, 60)
    }
}

fn base_cfg(o: &Opts, protocol: ProtocolKind, workload: SubWorkload, n: usize) -> ExperimentConfig {
    let (_, pause, duration) = scale(o);
    let mut cfg = ExperimentConfig::new(protocol, wl::default_14(), wl::paper_default(n, workload));
    cfg.pause = SimDuration::from_secs(pause);
    cfg.duration = SimDuration::from_secs(duration);
    cfg.seed = o.seed;
    cfg
}

fn save_json<T: serde::Serialize>(o: &Opts, name: &str, value: &T) {
    fs::create_dir_all(&o.out).expect("create results dir");
    let path = o.out.join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serialize"),
    )
    .expect("write results file");
    println!("  [saved {}]", path.display());
}

fn summary_row(label: &str, r: &ExperimentResult) {
    println!(
        "  {label:<28} lat_ms={:>9.1} (p50={:>8.1} p99={:>9.1})  msgs/move={:>8.1}  moves={:>6}  thr/s={:>6.2}  anomalies={}",
        r.mean_latency_ms,
        r.p50_latency_ms,
        r.p99_latency_ms,
        r.messages_per_move,
        r.movements,
        r.throughput_per_s,
        r.anomalies
    );
}

const PROTOCOLS: [ProtocolKind; 2] = [ProtocolKind::Reconfig, ProtocolKind::Covering];

fn fig5(o: &Opts) {
    println!("== Fig. 5: global reachable state graph (model checker) ==");
    let ex = explore(ExploreConfig::fig5());
    println!("  reachable coordinator-pair states: {:?}", ex.labels());
    println!(
        "  final states: {:?}",
        ex.finals.iter().map(|g| g.label()).collect::<Vec<_>>()
    );
    ex.check_final_states().expect("paper property (1)");
    ex.check_at_most_one_started().expect("paper property (2)");
    println!(
        "  properties (1) and (2) verified over {} states",
        ex.states.len()
    );
    let dot = ex.to_dot();
    fs::create_dir_all(&o.out).expect("create results dir");
    let path = o.out.join("fig5.dot");
    fs::write(&path, &dot).expect("write dot");
    println!("  [saved {}]", path.display());
    let failures = explore(ExploreConfig::failures());
    failures
        .check_final_states()
        .expect("property (1) w/ crashes");
    failures
        .check_at_most_one_started()
        .expect("property (2) w/ crashes");
    println!(
        "  with crash+timeout failures: {} states, invariants hold",
        failures.states.len()
    );
}

/// Regenerates the Fig. 7 subscription-workload covering structures as
/// validated Hasse diagrams (printed and exported as DOT).
fn fig7(o: &Opts) {
    // Also export the Fig. 6 overlay drawing while regenerating inputs.
    fs::create_dir_all(&o.out).expect("create results dir");
    let fig6 = o.out.join("fig6.dot");
    fs::write(&fig6, wl::default_14().to_dot()).expect("write fig6 dot");
    println!(
        "== Fig. 6: default overlay ==\n  [saved {}]",
        fig6.display()
    );
    println!("== Fig. 7: subscription workload covering structures ==");
    let mut dot = String::from("digraph fig7 {\n  rankdir=TB;\n");
    for w in SubWorkload::SWEEP {
        let filters = w.filters();
        let covers = |a: usize, b: usize| {
            a != b && filters[a].covers(&filters[b]) && !filters[b].covers(&filters[a])
        };
        let mut edges = Vec::new();
        for i in 0..filters.len() {
            for j in 0..filters.len() {
                if covers(i, j) && !(0..filters.len()).any(|k| covers(i, k) && covers(k, j)) {
                    edges.push((i, j));
                }
            }
        }
        println!(
            "  {w} (x = {}): {} direct covering edges",
            w.covering_degree().unwrap_or(0),
            edges.len()
        );
        for (i, j) in &edges {
            println!("    {} -> {}", i + 1, j + 1);
            dot.push_str(&format!("  \"{w}-{}\" -> \"{w}-{}\";\n", i + 1, j + 1));
        }
    }
    dot.push_str("}\n");
    fs::create_dir_all(&o.out).expect("create results dir");
    let path = o.out.join("fig7.dot");
    fs::write(&path, dot).expect("write dot");
    println!("  [saved {}]", path.display());
}

fn fig8(o: &Opts) {
    let (n, ..) = scale(o);
    println!("== Fig. 8: movement latency over time (covered workload, {n} clients) ==");
    let mut out = BTreeMap::new();
    for p in PROTOCOLS {
        let cfg = base_cfg(o, p, SubWorkload::Covered, n);
        let r = run_experiment(&cfg);
        // Per-source-broker means (the paper's four series).
        let mut by_src: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for pt in &r.points {
            by_src.entry(pt.source).or_default().push(pt.latency_ms);
        }
        println!(" {p}:");
        for (src, lats) in &by_src {
            let mean = lats.iter().sum::<f64>() / lats.len() as f64;
            let max = lats.iter().cloned().fold(0.0, f64::max);
            println!(
                "  from B{src:<3} moves={:<5} mean={:>9.1} ms  max={:>9.1} ms",
                lats.len(),
                mean,
                max
            );
        }
        summary_row(&format!("{p} overall"), &r);
        out.insert(p.to_string(), r);
    }
    let rec = &out["reconfig"];
    let cov = &out["covering"];
    println!(
        "  paper shape check: covering/reconfig latency ratio {:.1}x, message ratio {:.1}x",
        cov.mean_latency_ms / rec.mean_latency_ms.max(1e-9),
        cov.messages_per_move / rec.messages_per_move.max(1e-9),
    );
    save_json(o, "fig8", &out);
}

fn fig9(o: &Opts) {
    let (n, ..) = scale(o);
    println!("== Fig. 9: subscription workload sweep ({n} clients) ==");
    let mut out: Vec<(String, u32, ExperimentResult)> = Vec::new();
    for w in SubWorkload::SWEEP {
        let x = w.covering_degree().unwrap_or(0);
        for p in PROTOCOLS {
            let cfg = base_cfg(o, p, w, n);
            let r = run_experiment(&cfg);
            summary_row(&format!("{p} {w} (x={x})"), &r);
            out.push((format!("{p}/{w}"), x, r));
        }
    }
    save_json(o, "fig9", &out);
}

fn fig10(o: &Opts) {
    let sizes: Vec<usize> = if o.full {
        vec![400, 600, 800, 1000]
    } else {
        vec![50, 100, 150, 200]
    };
    println!("== Fig. 10: number of clients sweep {sizes:?} ==");
    let mut out: Vec<(String, usize, ExperimentResult)> = Vec::new();
    for &n in &sizes {
        for p in PROTOCOLS {
            let cfg = base_cfg(o, p, SubWorkload::Covered, n);
            let r = run_experiment(&cfg);
            summary_row(&format!("{p} n={n}"), &r);
            out.push((p.to_string(), n, r));
        }
    }
    save_json(o, "fig10", &out);
}

fn fig11(o: &Opts) {
    let (n, ..) = scale(o);
    println!("== Fig. 11: single moving client (root subscription) among {n} ==");
    let mut out = BTreeMap::new();
    for p in PROTOCOLS {
        let mut cfg = base_cfg(o, p, SubWorkload::Covered, n);
        // Only the first root-subscription client moves.
        let root = SubWorkload::Covered.filters()[0].clone();
        let mover = cfg
            .clients
            .iter()
            .find(|s| s.subscription == root)
            .map(|s| s.id)
            .expect("population contains a root subscription");
        cfg.clients = wl::with_movers(cfg.clients, &[mover]);
        let r = run_experiment(&cfg);
        summary_row(&format!("{p} single-root"), &r);
        out.insert(p.to_string(), r);
    }
    save_json(o, "fig11", &out);
}

fn fig12(o: &Opts) {
    // The staged mover selection needs ten roots per workload, which
    // requires the paper's full 400-client mixed population even in
    // quick mode (only the measured duration is scaled down).
    let n = 400;
    println!("== Fig. 12: incremental movement (movers 10..60 of {n} mixed clients) ==");
    let mut out: Vec<(String, usize, ExperimentResult)> = Vec::new();
    for movers in [10usize, 20, 30, 40, 50, 60] {
        for p in PROTOCOLS {
            let (_, pause, duration) = scale(o);
            let population = wl::mixed_population(n);
            let chosen = wl::incremental_movers(&population, movers);
            let clients = wl::with_movers(population, &chosen);
            let mut cfg = ExperimentConfig::new(p, wl::default_14(), clients);
            cfg.pause = SimDuration::from_secs(pause);
            cfg.duration = SimDuration::from_secs(duration);
            cfg.seed = o.seed;
            let r = run_experiment(&cfg);
            summary_row(&format!("{p} movers={movers}"), &r);
            out.push((p.to_string(), movers, r));
        }
    }
    save_json(o, "fig12", &out);
}

fn fig13(o: &Opts) {
    let sizes = [14u32, 18, 22, 26];
    let (n, pause, duration) = scale(o);
    println!("== Fig. 13: topology size sweep {sizes:?} (constant path length) ==");
    let mut out: Vec<(String, u32, ExperimentResult)> = Vec::new();
    for &brokers in &sizes {
        for p in PROTOCOLS {
            let clients = wl::paper_default_between(
                n,
                SubWorkload::Covered,
                (BrokerId(1), BrokerId(13)),
                (BrokerId(2), BrokerId(14)),
            );
            let mut cfg = ExperimentConfig::new(p, wl::grown(brokers), clients);
            cfg.pause = SimDuration::from_secs(pause);
            cfg.duration = SimDuration::from_secs(duration);
            cfg.seed = o.seed;
            let r = run_experiment(&cfg);
            summary_row(&format!("{p} brokers={brokers}"), &r);
            out.push((p.to_string(), brokers, r));
        }
    }
    save_json(o, "fig13", &out);
}

fn fig14(o: &Opts) {
    let n = if o.full { 100 } else { 50 };
    println!("== Fig. 14: wide-area PlanetLab deployment ({n} clients) ==");
    let mk_net = |topology: &transmob_broker::Topology, seed| {
        NetworkModel::planetlab(&topology.edges(), seed)
    };
    // (a,b): time series per protocol on the covered workload.
    let mut series = BTreeMap::new();
    for p in PROTOCOLS {
        let mut cfg = base_cfg(o, p, SubWorkload::Covered, n);
        cfg.network = mk_net(&cfg.topology, o.seed);
        let r = run_experiment(&cfg);
        summary_row(&format!("{p} planetlab"), &r);
        series.insert(p.to_string(), r);
    }
    println!("  paper shape check: latencies well above the cluster's (s-scale, not ms-scale)");
    save_json(o, "fig14ab", &series);
    // (c,d): workload sweep.
    let mut sweep: Vec<(String, u32, ExperimentResult)> = Vec::new();
    for w in [
        SubWorkload::Chained,
        SubWorkload::Tree,
        SubWorkload::Covered,
    ] {
        let x = w.covering_degree().unwrap_or(0);
        for p in PROTOCOLS {
            let mut cfg = base_cfg(o, p, w, n);
            cfg.network = mk_net(&cfg.topology, o.seed);
            let r = run_experiment(&cfg);
            summary_row(&format!("{p} {w} (x={x})"), &r);
            sweep.push((format!("{p}/{w}"), x, r));
        }
    }
    save_json(o, "fig14cd", &sweep);
}

/// The DESIGN.md design-choice ablations at experiment scale.
fn ablations(o: &Opts) {
    use transmob_core::MobileBrokerConfig;
    let (n, pause, duration) = scale(o);
    println!("== Ablations (covered workload, {n} clients) ==");
    let mut out: Vec<(String, ExperimentResult)> = Vec::new();
    let variants: Vec<(&str, ProtocolKind, MobileBrokerConfig)> = vec![
        (
            "covering/conservative-release",
            ProtocolKind::Covering,
            MobileBrokerConfig::covering(),
        ),
        (
            "covering/precise-release",
            ProtocolKind::Covering,
            MobileBrokerConfig {
                broker: transmob_broker::BrokerConfig::covering_precise_release(),
                ..MobileBrokerConfig::covering()
            },
        ),
        (
            "covering/make-before-break",
            ProtocolKind::Covering,
            MobileBrokerConfig {
                make_before_break: true,
                ..MobileBrokerConfig::covering()
            },
        ),
        (
            "covering/lazy-quench",
            ProtocolKind::Covering,
            MobileBrokerConfig {
                broker: transmob_broker::BrokerConfig {
                    sub_covering: transmob_broker::CoveringMode::Lazy,
                    adv_covering: transmob_broker::CoveringMode::Lazy,
                    conservative_release: true,
                    ..Default::default()
                },
                ..MobileBrokerConfig::covering()
            },
        ),
        (
            "covering/no-covering-brokers",
            ProtocolKind::Covering,
            MobileBrokerConfig::reconfig(),
        ),
        (
            "reconfig/plain",
            ProtocolKind::Reconfig,
            MobileBrokerConfig::reconfig(),
        ),
        (
            "reconfig/on-covering-brokers",
            ProtocolKind::Reconfig,
            MobileBrokerConfig::covering(),
        ),
    ];
    for (name, protocol, broker_config) in variants {
        let mut cfg = ExperimentConfig::new(
            protocol,
            wl::default_14(),
            wl::paper_default(n, SubWorkload::Covered),
        );
        cfg.pause = SimDuration::from_secs(pause);
        cfg.duration = SimDuration::from_secs(duration);
        cfg.seed = o.seed;
        cfg.broker_override = Some(broker_config);
        let r = run_experiment(&cfg);
        summary_row(name, &r);
        out.push((name.to_owned(), r));
    }
    save_json(o, "ablations", &out);
}

/// Extension experiment: *publisher* mobility — the actual subject of
/// the paper's Sec. 4.4 reconfiguration algorithm. Moving publishers
/// (advertisement reconfiguration with the three PRT fix-up cases)
/// against stationary subscribers.
fn publishers(o: &Opts) {
    use transmob_core::{ClientOp, MobileBrokerConfig};
    use transmob_pubsub::{ClientId, Publication};
    use transmob_sim::{MovementPlan, Sim, SimTime};
    let (n, pause, duration) = scale(o);
    let n_pub = n / 4; // moving publishers
    let n_sub = n; // stationary subscribers
    println!("== Extension: publisher mobility ({n_pub} moving publishers, {n_sub} stationary subscribers) ==");
    let mut out: Vec<(String, ExperimentResult)> = Vec::new();
    for p in PROTOCOLS {
        let config = match p {
            ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
            ProtocolKind::Covering => MobileBrokerConfig::covering(),
        };
        let topology = wl::default_14();
        let mut sim = Sim::builder()
            .overlay(topology)
            .options(config)
            .network(NetworkModel::cluster())
            .seed(o.seed)
            .start();
        // Stationary subscribers spread over the leaf brokers.
        let sub_brokers = [5u32, 6, 7, 9, 10, 11, 12, 14];
        for i in 0..n_sub {
            let id = ClientId(10_000 + i as u64);
            let broker = BrokerId(sub_brokers[i % sub_brokers.len()]);
            sim.create_client(broker, id);
            sim.schedule_cmd(
                SimTime(0),
                id,
                ClientOp::Subscribe(SubWorkload::Covered.assign(i)),
            );
        }
        // Moving publishers at B1/B2, each advertising the full space
        // and publishing periodically.
        for i in 0..n_pub {
            let id = ClientId(1 + i as u64);
            let start = BrokerId(1 + (i % 2) as u32);
            sim.create_client(start, id);
            sim.schedule_cmd(SimTime(0), id, ClientOp::Advertise(wl::full_space_adv()));
        }
        sim.run_to_quiescence();
        let setup_end = sim.now() + SimDuration::from_millis(100);
        let pause_d = SimDuration::from_secs(pause);
        for i in 0..n_pub {
            let id = ClientId(1 + i as u64);
            let far = BrokerId(13 + (i % 2) as u32);
            let start = BrokerId(1 + (i % 2) as u32);
            sim.install_plan(
                id,
                MovementPlan {
                    destinations: vec![far, start],
                    pause: pause_d,
                    protocol: p,
                },
                setup_end + pause_d.mul_f64(i as f64 / n_pub.max(1) as f64),
            );
            // Publication stream from each publisher.
            let mut t = setup_end + SimDuration::from_millis(137 * (i as u64 + 1));
            let mut k = 0i64;
            while t < setup_end + SimDuration::from_secs(duration) {
                sim.schedule_cmd(
                    t,
                    id,
                    ClientOp::Publish(Publication::new().with(wl::ATTR, (k * 53) % 10_000)),
                );
                t += SimDuration::from_secs(1);
                k += 1;
            }
        }
        sim.metrics.reset_measurement(setup_end);
        sim.set_plan_deadline(setup_end + SimDuration::from_secs(duration));
        sim.run_to_quiescence();
        let end = sim.metrics.measure_from + SimDuration::from_secs(duration);
        let r = ExperimentResult {
            protocol: p.to_string(),
            points: Vec::new(),
            mean_latency_ms: sim.metrics.mean_latency_ms(),
            p50_latency_ms: sim.metrics.latency_percentile_ms(0.5),
            p99_latency_ms: sim.metrics.latency_percentile_ms(0.99),
            messages_per_move: sim.metrics.messages_per_move(),
            movements: sim.metrics.finished_count(),
            total_messages: sim.metrics.total_traffic(),
            throughput_per_s: sim.metrics.throughput_per_sec(end),
            anomalies: sim.total_anomalies(),
        };
        summary_row(&format!("{p} publishers"), &r);
        println!("    deliveries={}", sim.metrics.delivery_count);
        out.push((p.to_string(), r));
    }
    save_json(o, "publishers", &out);
}

/// Extension experiment: movement-throughput saturation — sweep the
/// inter-movement pause downward and watch which protocol's completed
/// movement rate stops tracking the offered rate (the paper's third
/// metric, exercised to its limit).
fn throughput(o: &Opts) {
    let (n, _, duration) = scale(o);
    println!("== Extension: movement-throughput saturation ({n} clients, covered workload) ==");
    let pauses_ms: &[u64] = if o.full {
        &[10_000, 5_000, 2_000, 1_000, 500]
    } else {
        &[5_000, 2_000, 1_000, 500]
    };
    let mut out: Vec<(String, u64, f64, ExperimentResult)> = Vec::new();
    for &pause_ms in pauses_ms {
        for p in PROTOCOLS {
            let mut cfg = ExperimentConfig::new(
                p,
                wl::default_14(),
                wl::paper_default(n, SubWorkload::Covered),
            );
            cfg.pause = SimDuration::from_millis(pause_ms);
            cfg.duration = SimDuration::from_secs(duration);
            cfg.seed = o.seed;
            let r = run_experiment(&cfg);
            let offered = n as f64 / (pause_ms as f64 / 1000.0);
            println!(
                "  {p:<10} pause={:>5}ms offered={offered:>7.1}/s  completed={:>7.2}/s  lat={:>9.1}ms",
                pause_ms, r.throughput_per_s, r.mean_latency_ms
            );
            out.push((p.to_string(), pause_ms, offered, r));
        }
    }
    save_json(o, "throughput", &out);
}

/// Randomized soak: clients with mixed workloads move between random
/// brokers under both protocols simultaneously while publishers
/// stream; after the run every transaction must have completed, no
/// anomalies may have been counted, and the delivered/published ratio
/// must be sane. This is the release-confidence run.
fn soak(o: &Opts) {
    use transmob_core::{ClientOp, MobileBrokerConfig};
    use transmob_pubsub::{ClientId, Publication};
    use transmob_sim::{MovementPlan, Sim, SimTime};
    let (n, _, duration) = scale(o);
    let duration = duration * 2;
    println!("== Soak: {n} mixed clients, random routes, mixed protocols, {duration}s ==");
    let topology = wl::default_14();
    let all_brokers: Vec<BrokerId> = topology.brokers().collect();
    let mut sim = Sim::builder()
        .overlay(topology)
        .options(MobileBrokerConfig::covering())
        .network(NetworkModel::cluster())
        .seed(o.seed)
        .start();
    for (i, broker) in [6u32, 10, 14].iter().enumerate() {
        let id = ClientId(1 + i as u64);
        sim.create_client(BrokerId(*broker), id);
        sim.schedule_cmd(SimTime(0), id, ClientOp::Advertise(wl::full_space_adv()));
        let mut t = SimTime(0) + SimDuration::from_millis(211 * (i as u64 + 1));
        let mut k = 0i64;
        while t < SimTime(0) + SimDuration::from_secs(duration) {
            sim.schedule_cmd(
                t,
                id,
                ClientOp::Publish(Publication::new().with(wl::ATTR, (k * 41) % 10_000)),
            );
            t += SimDuration::from_millis(250);
            k += 1;
        }
    }
    let specs = wl::mixed_population(n);
    for (i, spec) in specs.iter().enumerate() {
        sim.create_client(spec.start, spec.id);
        sim.schedule_cmd(
            SimTime(1_000_000 * (i as u64 + 1)),
            spec.id,
            ClientOp::Subscribe(spec.subscription.clone()),
        );
        // Random-ish route over the whole overlay, alternating
        // protocols per client.
        let protocol = if i % 2 == 0 {
            ProtocolKind::Reconfig
        } else {
            ProtocolKind::Covering
        };
        let route: Vec<BrokerId> = (0..3)
            .map(|r| all_brokers[(i * 7 + r * 5 + 3) % all_brokers.len()])
            .collect();
        sim.install_plan(
            spec.id,
            MovementPlan {
                destinations: route,
                pause: SimDuration::from_millis(2_500),
                protocol,
            },
            SimTime(0) + SimDuration::from_millis(500 + 13 * i as u64),
        );
    }
    sim.set_plan_deadline(SimTime(0) + SimDuration::from_secs(duration));
    sim.run_to_quiescence();
    let finished = sim.metrics.finished_count();
    let unfinished = sim.metrics.moves.len() - finished;
    let committed = sim
        .metrics
        .finished_moves()
        .filter(|(_, r)| r.committed == Some(true))
        .count();
    println!("  movements: {finished} finished ({committed} committed), {unfinished} stuck");
    println!(
        "  deliveries: {}  traffic: {}  anomalies: {}",
        sim.metrics.delivery_count,
        sim.metrics.total_traffic(),
        sim.total_anomalies()
    );
    assert_eq!(unfinished, 0, "stuck movement transactions!");
    assert_eq!(sim.total_anomalies(), 0, "protocol anomalies!");
    assert!(sim.metrics.delivery_count > 0);
    println!("  soak OK");
}

fn main() {
    let opts = parse_args();
    let t0 = std::time::Instant::now();
    for f in opts.figures.clone() {
        match f.as_str() {
            "fig5" => fig5(&opts),
            "fig7" => fig7(&opts),
            "fig8" => fig8(&opts),
            "fig9" => fig9(&opts),
            "fig10" => fig10(&opts),
            "fig11" => fig11(&opts),
            "fig12" => fig12(&opts),
            "fig13" => fig13(&opts),
            "fig14" => fig14(&opts),
            "ablations" => ablations(&opts),
            "publishers" => publishers(&opts),
            "throughput" => throughput(&opts),
            "soak" => soak(&opts),
            other => usage(&format!("unknown figure {other}")),
        }
        println!();
    }
    println!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
