//! The experiment harness: assembles a topology, a client population,
//! publishers and a movement pattern into a [`Sim`] run and extracts
//! the paper's metrics (Sec. 5).
//!
//! Every figure of the paper's evaluation is a parameterization of
//! [`ExperimentConfig`]; the `figures` binary sweeps them (see
//! `EXPERIMENTS.md` for the index).

use serde::Serialize;
use transmob_broker::Topology;
use transmob_core::{ClientOp, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Publication};
use transmob_sim::{MovementPlan, NetworkModel, Sim, SimDuration, SimTime};
use transmob_workloads::{full_space_adv, ClientSpec, ATTR};

/// Where the experiment's publishers sit (each advertises the full
/// attribute space so every workload subscription propagates toward
/// them, as content-based routing requires).
pub const DEFAULT_PUBLISHER_BROKERS: [u32; 3] = [6, 10, 14];

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Movement protocol under test.
    pub protocol: ProtocolKind,
    /// Overlay topology.
    pub topology: Topology,
    /// Client population (subscription + start broker + route each).
    pub clients: Vec<ClientSpec>,
    /// Brokers hosting a full-space publisher.
    pub publisher_brokers: Vec<BrokerId>,
    /// Background publication rate per publisher (publications per
    /// virtual second; 0 = control-plane only).
    pub pub_rate: f64,
    /// Pause between movements (paper default: 10 s).
    pub pause: SimDuration,
    /// Length of the measured phase.
    pub duration: SimDuration,
    /// Network model.
    pub network: NetworkModel,
    /// RNG seed.
    pub seed: u64,
    /// Overrides the protocol-implied broker configuration (used by
    /// the ablation runs: e.g. the covering protocol on plain brokers,
    /// precise release, make-before-break).
    pub broker_override: Option<MobileBrokerConfig>,
}

impl ExperimentConfig {
    /// The paper's default setting over a given topology/population.
    pub fn new(protocol: ProtocolKind, topology: Topology, clients: Vec<ClientSpec>) -> Self {
        ExperimentConfig {
            protocol,
            topology,
            clients,
            publisher_brokers: DEFAULT_PUBLISHER_BROKERS.map(BrokerId).to_vec(),
            pub_rate: 1.0,
            pause: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(200),
            network: NetworkModel::cluster(),
            seed: 42,
            broker_override: None,
        }
    }

    /// The broker configuration implied by the protocol under test:
    /// the covering protocol runs on covering-enabled brokers, the
    /// reconfiguration protocol on plain ones.
    fn broker_config(&self) -> MobileBrokerConfig {
        if let Some(over) = &self.broker_override {
            return over.clone();
        }
        match self.protocol {
            ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
            ProtocolKind::Covering => MobileBrokerConfig::covering(),
        }
    }
}

/// One movement's measurement (a point of the Fig. 8 scatter plots).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MovePoint {
    /// When the movement started (virtual seconds since measurement
    /// start).
    pub start_s: f64,
    /// Movement latency in milliseconds.
    pub latency_ms: f64,
    /// The broker the movement started from.
    pub source: u32,
    /// Messages attributed to the movement.
    pub messages: u64,
}

/// Aggregated results of one experiment run.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Protocol under test.
    pub protocol: String,
    /// Per-movement points (committed movements in the measured
    /// phase).
    pub points: Vec<MovePoint>,
    /// Mean movement latency (ms).
    pub mean_latency_ms: f64,
    /// Median movement latency (ms).
    pub p50_latency_ms: f64,
    /// 99th-percentile movement latency (ms).
    pub p99_latency_ms: f64,
    /// Mean messages per movement (the paper's normalized overhead).
    pub messages_per_move: f64,
    /// Completed movements in the measured phase.
    pub movements: usize,
    /// Total link messages in the measured phase.
    pub total_messages: u64,
    /// Movement throughput (movements per virtual second).
    pub throughput_per_s: f64,
    /// Protocol/routing anomalies (should be 0).
    pub anomalies: u64,
}

/// Runs one experiment: setup phase (publishers advertise, clients
/// subscribe, network quiesces), then the measured phase (movement
/// plans active for `duration`), then drain.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let mut sim = Sim::builder()
        .overlay(cfg.topology.clone())
        .options(cfg.broker_config())
        .network(cfg.network.clone())
        .seed(cfg.seed)
        .start();
    // Publishers.
    for (i, broker) in cfg.publisher_brokers.iter().enumerate() {
        let id = ClientId(1 + i as u64);
        sim.create_client(*broker, id);
        sim.schedule_cmd(SimTime(0), id, ClientOp::Advertise(full_space_adv()));
    }
    // Clients: create and subscribe, staggered over the first virtual
    // second to avoid lockstep.
    for (i, spec) in cfg.clients.iter().enumerate() {
        sim.create_client(spec.start, spec.id);
        let at = SimTime(1_000_000 + (i as u64 * 1_000_000_000) / cfg.clients.len().max(1) as u64);
        sim.schedule_cmd(at, spec.id, ClientOp::Subscribe(spec.subscription.clone()));
    }
    sim.run_to_quiescence();
    let setup_end = sim.now() + SimDuration::from_millis(100);

    // Background publications for the whole measured phase.
    if cfg.pub_rate > 0.0 {
        let per_pub_interval = SimDuration::from_nanos((1e9 / cfg.pub_rate) as u64);
        for (i, _broker) in cfg.publisher_brokers.iter().enumerate() {
            let id = ClientId(1 + i as u64);
            let mut t = setup_end + per_pub_interval.mul_f64((i as f64 + 1.0) / 3.0);
            let mut k = 0i64;
            while t < setup_end + cfg.duration {
                // Cycle publication values across the whole space so
                // every workload subscription sees traffic.
                let x = (k * 37) % 10_000;
                sim.schedule_cmd(t, id, ClientOp::Publish(Publication::new().with(ATTR, x)));
                t += per_pub_interval;
                k += 1;
            }
        }
    }

    // Movement plans, staggered across the first pause interval.
    let movers: Vec<&ClientSpec> = cfg.clients.iter().filter(|s| s.is_mobile()).collect();
    let n_movers = movers.len().max(1);
    for (i, spec) in movers.into_iter().enumerate() {
        let first = setup_end + cfg.pause.mul_f64(i as f64 / n_movers as f64);
        sim.install_plan(
            spec.id,
            MovementPlan {
                destinations: spec.route.clone(),
                pause: cfg.pause,
                protocol: cfg.protocol,
            },
            first,
        );
    }
    sim.metrics.reset_measurement(setup_end);
    sim.set_plan_deadline(setup_end + cfg.duration);
    sim.run_to_quiescence();

    // Collect.
    let points: Vec<MovePoint> = sim
        .metrics
        .finished_moves()
        .filter(|(_, r)| r.committed == Some(true))
        .map(|(_, r)| MovePoint {
            start_s: r.start.since(sim.metrics.measure_from).as_secs_f64(),
            latency_ms: r.latency().map(|d| d.as_millis_f64()).unwrap_or(0.0),
            source: r.source.0,
            messages: r.messages,
        })
        .collect();
    let movements = points.len();
    let mean_latency_ms = if movements == 0 {
        0.0
    } else {
        points.iter().map(|p| p.latency_ms).sum::<f64>() / movements as f64
    };
    let end = sim.metrics.measure_from + cfg.duration;
    ExperimentResult {
        protocol: cfg.protocol.to_string(),
        mean_latency_ms,
        p50_latency_ms: sim.metrics.latency_percentile_ms(0.5),
        p99_latency_ms: sim.metrics.latency_percentile_ms(0.99),
        messages_per_move: sim.metrics.messages_per_move(),
        movements,
        total_messages: sim.metrics.total_traffic(),
        throughput_per_s: sim.metrics.throughput_per_sec(end),
        anomalies: sim.total_anomalies(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_workloads::{default_14, paper_default, SubWorkload};

    fn small_cfg(protocol: ProtocolKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::new(
            protocol,
            default_14(),
            paper_default(40, SubWorkload::Covered),
        );
        cfg.duration = SimDuration::from_secs(30);
        cfg.pause = SimDuration::from_secs(5);
        cfg.pub_rate = 0.5;
        cfg
    }

    #[test]
    fn reconfig_experiment_completes_movements() {
        let r = run_experiment(&small_cfg(ProtocolKind::Reconfig));
        assert!(r.movements >= 40, "too few movements: {}", r.movements);
        assert!(r.mean_latency_ms > 0.0);
        assert_eq!(r.anomalies, 0);
    }

    #[test]
    fn covering_experiment_completes_movements() {
        let r = run_experiment(&small_cfg(ProtocolKind::Covering));
        assert!(r.movements >= 20, "too few movements: {}", r.movements);
        assert!(r.messages_per_move > 0.0);
    }

    #[test]
    fn reconfig_beats_covering_on_covered_workload() {
        // At this small scale the latency gap is congestion-free and
        // within noise; the per-movement message overhead is the
        // robust discriminator (the latency separation is exercised at
        // paper scale by the `figures` harness and integration tests).
        let rec = run_experiment(&small_cfg(ProtocolKind::Reconfig));
        let cov = run_experiment(&small_cfg(ProtocolKind::Covering));
        assert!(
            rec.messages_per_move * 1.5 < cov.messages_per_move,
            "reconfig {} msgs/move should clearly beat covering {}",
            rec.messages_per_move,
            cov.messages_per_move
        );
        // And reconfig latency must not blow up either.
        assert!(rec.mean_latency_ms < 2.0 * cov.mean_latency_ms);
    }

    #[test]
    fn experiments_are_deterministic() {
        let a = run_experiment(&small_cfg(ProtocolKind::Reconfig));
        let b = run_experiment(&small_cfg(ProtocolKind::Reconfig));
        assert_eq!(a.movements, b.movements);
        assert_eq!(a.total_messages, b.total_messages);
        assert_eq!(a.mean_latency_ms.to_bits(), b.mean_latency_ms.to_bits());
    }
}
