//! Measurement collection: the paper's three metrics (Sec. 5).
//!
//! - **Network traffic**: messages transmitted over overlay links, by
//!   kind, plus the per-movement attribution — every message
//!   *transitively caused* by a movement transaction (including
//!   covering-release cascades triggered at distant brokers) counts
//!   toward that movement.
//! - **Movement duration**: from the `MOVE` command until the source
//!   coordinator finishes the transaction (commit or abort), in
//!   virtual time.
//! - **Movement throughput**: completed movements per unit time.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use transmob_broker::MsgKind;
use transmob_pubsub::{BrokerId, ClientId, MoveId, PubId};

use crate::time::{SimDuration, SimTime};

/// Lifecycle record of one movement transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoveRecord {
    /// The moving client.
    pub client: ClientId,
    /// Broker the movement started at.
    pub source: BrokerId,
    /// Requested target broker.
    pub target: BrokerId,
    /// When the `MOVE` command was issued.
    pub start: SimTime,
    /// When the source coordinator finished (commit or abort).
    pub end: Option<SimTime>,
    /// Whether it committed.
    pub committed: Option<bool>,
    /// Messages attributed to this movement.
    pub messages: u64,
}

impl MoveRecord {
    /// Movement duration, if finished.
    pub fn latency(&self) -> Option<SimDuration> {
        self.end.map(|e| e.since(self.start))
    }
}

/// A recorded application-layer delivery (kept only when the delivery
/// log is enabled; large experiments keep counters only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Delivery time.
    pub time: SimTime,
    /// Receiving client.
    pub client: ClientId,
    /// Publication id.
    pub publication: PubId,
}

/// All measurements of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages transmitted over links, by kind.
    pub traffic: BTreeMap<MsgKind, u64>,
    /// Per-movement records.
    pub moves: BTreeMap<MoveId, MoveRecord>,
    /// Total application-layer deliveries.
    pub delivery_count: u64,
    /// Full delivery log (enabled for property-checking runs).
    pub delivery_log: Option<Vec<DeliveryRecord>>,
    /// Virtual time at which measurement started (set by
    /// `reset_measurement`).
    pub measure_from: SimTime,
}

impl Metrics {
    /// Creates empty metrics; `log_deliveries` enables the full log.
    pub fn new(log_deliveries: bool) -> Self {
        Metrics {
            delivery_log: log_deliveries.then(Vec::new),
            ..Metrics::default()
        }
    }

    /// Records one link transmission.
    pub fn count_message(&mut self, kind: MsgKind, cause: Option<MoveId>) {
        *self.traffic.entry(kind).or_insert(0) += 1;
        if let Some(m) = cause {
            if let Some(rec) = self.moves.get_mut(&m) {
                rec.messages += 1;
            }
        }
    }

    /// Registers the start of a movement.
    pub fn move_started(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        at: SimTime,
    ) {
        self.moves.entry(m).or_insert(MoveRecord {
            client,
            source,
            target,
            start: at,
            end: None,
            committed: None,
            messages: 0,
        });
    }

    /// Registers the completion of a movement.
    pub fn move_finished(&mut self, m: MoveId, committed: bool, at: SimTime) {
        if let Some(rec) = self.moves.get_mut(&m) {
            rec.end = Some(at);
            rec.committed = Some(committed);
        }
    }

    /// Records an application delivery.
    pub fn count_delivery(&mut self, time: SimTime, client: ClientId, publication: PubId) {
        self.delivery_count += 1;
        if let Some(log) = &mut self.delivery_log {
            log.push(DeliveryRecord {
                time,
                client,
                publication,
            });
        }
    }

    /// Clears counters and finished-move records, marking `at` as the
    /// start of the measured phase (the paper ignores the setup phase
    /// to avoid skewing steady-state results).
    pub fn reset_measurement(&mut self, at: SimTime) {
        self.traffic.clear();
        self.moves.retain(|_, r| r.end.is_none());
        for r in self.moves.values_mut() {
            r.messages = 0;
        }
        self.delivery_count = 0;
        if let Some(log) = &mut self.delivery_log {
            log.clear();
        }
        self.measure_from = at;
    }

    /// Finished movements (committed or aborted).
    pub fn finished_moves(&self) -> impl Iterator<Item = (&MoveId, &MoveRecord)> {
        self.moves.iter().filter(|(_, r)| r.end.is_some())
    }

    /// Number of finished movements.
    pub fn finished_count(&self) -> usize {
        self.finished_moves().count()
    }

    /// Mean movement latency in milliseconds over finished movements.
    pub fn mean_latency_ms(&self) -> f64 {
        let latencies: Vec<f64> = self
            .finished_moves()
            .filter_map(|(_, r)| r.latency().map(|d| d.as_millis_f64()))
            .collect();
        if latencies.is_empty() {
            return 0.0;
        }
        latencies.iter().sum::<f64>() / latencies.len() as f64
    }

    /// Latency percentile (0.0–1.0) in milliseconds over finished
    /// movements (nearest-rank).
    pub fn latency_percentile_ms(&self, q: f64) -> f64 {
        let mut latencies: Vec<f64> = self
            .finished_moves()
            .filter_map(|(_, r)| r.latency().map(|d| d.as_millis_f64()))
            .collect();
        if latencies.is_empty() {
            return 0.0;
        }
        latencies.sort_by(f64::total_cmp);
        let idx = ((q.clamp(0.0, 1.0) * latencies.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(latencies.len() - 1);
        latencies[idx]
    }

    /// Messages per finished movement (the paper's normalized message
    /// overhead, Fig. 9(b)): movement-attributed messages divided by
    /// the number of finished movements.
    pub fn messages_per_move(&self) -> f64 {
        let n = self.finished_count();
        if n == 0 {
            return 0.0;
        }
        let msgs: u64 = self.finished_moves().map(|(_, r)| r.messages).sum();
        msgs as f64 / n as f64
    }

    /// Movement throughput in movements per second, measured from
    /// `measure_from` to `now`.
    pub fn throughput_per_sec(&self, now: SimTime) -> f64 {
        let span = now.since(self.measure_from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.finished_count() as f64 / span
    }

    /// Total link messages, all kinds.
    pub fn total_traffic(&self) -> u64 {
        self.traffic.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u64) -> MoveId {
        MoveId(i)
    }

    #[test]
    fn move_lifecycle_and_latency() {
        let mut x = Metrics::new(false);
        x.move_started(m(1), ClientId(1), BrokerId(1), BrokerId(2), SimTime(1_000));
        x.count_message(MsgKind::MoveCtl, Some(m(1)));
        x.count_message(MsgKind::Subscribe, Some(m(1)));
        x.count_message(MsgKind::Publish, None);
        x.move_finished(m(1), true, SimTime(2_001_000));
        let rec = &x.moves[&m(1)];
        assert_eq!(rec.messages, 2);
        assert_eq!(rec.latency(), Some(SimDuration::from_millis(2)));
        assert_eq!(x.total_traffic(), 3);
        assert_eq!(x.finished_count(), 1);
        assert!((x.mean_latency_ms() - 2.0).abs() < 1e-9);
        assert!((x.messages_per_move() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_measurement_keeps_inflight_moves() {
        let mut x = Metrics::new(false);
        x.move_started(m(1), ClientId(1), BrokerId(1), BrokerId(2), SimTime(0));
        x.move_finished(m(1), true, SimTime(10));
        x.move_started(m(2), ClientId(2), BrokerId(1), BrokerId(2), SimTime(5));
        x.count_message(MsgKind::MoveCtl, Some(m(2)));
        x.reset_measurement(SimTime(20));
        assert_eq!(x.moves.len(), 1, "in-flight move must survive reset");
        assert_eq!(x.moves[&m(2)].messages, 0, "counters reset");
        assert_eq!(x.total_traffic(), 0);
        assert_eq!(x.measure_from, SimTime(20));
    }

    #[test]
    fn percentiles() {
        let mut x = Metrics::new(false);
        for i in 0..100u64 {
            x.move_started(m(i), ClientId(i), BrokerId(1), BrokerId(2), SimTime(0));
            x.move_finished(m(i), true, SimTime((i + 1) * 1_000_000));
        }
        assert!((x.latency_percentile_ms(0.5) - 50.0).abs() < 1.0);
        assert!((x.latency_percentile_ms(0.99) - 99.0).abs() < 1.0);
        assert!((x.latency_percentile_ms(1.0) - 100.0).abs() < 1e-9);
        assert_eq!(Metrics::new(false).latency_percentile_ms(0.5), 0.0);
    }

    #[test]
    fn throughput() {
        let mut x = Metrics::new(false);
        x.reset_measurement(SimTime(0));
        for i in 0..10 {
            x.move_started(m(i), ClientId(i), BrokerId(1), BrokerId(2), SimTime(0));
            x.move_finished(m(i), true, SimTime(1));
        }
        let t = x.throughput_per_sec(SimTime(2_000_000_000));
        assert!((t - 5.0).abs() < 1e-9);
    }

    #[test]
    fn delivery_log_optional() {
        let mut a = Metrics::new(false);
        a.count_delivery(SimTime(1), ClientId(1), PubId(1));
        assert!(a.delivery_log.is_none());
        assert_eq!(a.delivery_count, 1);
        let mut b = Metrics::new(true);
        b.count_delivery(SimTime(1), ClientId(1), PubId(1));
        assert_eq!(b.delivery_log.as_ref().unwrap().len(), 1);
    }
}
