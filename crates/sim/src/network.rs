//! Network and node performance models.
//!
//! The simulator models each broker as a single-server FIFO queue (a
//! fixed per-message processing cost plus jitter) and each overlay link
//! as a serialization server plus propagation latency. Congestion —
//! the mechanism behind the paper's covering-protocol latency blow-ups
//! — emerges from these queues: a burst of (un)subscription messages
//! delays every message behind it, including the movement-protocol
//! messages whose end-to-end time is the measured movement latency.
//!
//! Two presets reproduce the paper's testbeds:
//!
//! - [`NetworkModel::cluster`] — the homogeneous 1.86 GHz data-centre
//!   cluster (LAN latencies, fast stable processing);
//! - [`NetworkModel::planetlab`] — the shared wide-area testbed
//!   (heterogeneous tens-of-ms link latencies, slower and noisier
//!   processing), seeded per run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transmob_pubsub::BrokerId;

use crate::time::SimDuration;

/// Performance model of one overlay link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Propagation latency.
    pub latency: SimDuration,
    /// Per-message serialization time (the link is a FIFO server).
    pub serialize: SimDuration,
    /// Multiplicative jitter amplitude on the latency (0.1 = ±10%).
    pub jitter: f64,
}

impl LinkModel {
    /// A LAN-class link.
    pub fn lan() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(200),
            serialize: SimDuration::from_micros(10),
            jitter: 0.05,
        }
    }
}

/// Performance model of a broker node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeModel {
    /// Base per-message processing time (the broker is a FIFO server).
    pub process: SimDuration,
    /// Additional processing time per routing-table entry: matching a
    /// message against the SRT/PRT grows with table size, which is how
    /// densely-populated endpoint brokers become the congestion points
    /// the paper's covering-protocol latencies reflect.
    pub per_entry: SimDuration,
    /// Multiplicative jitter amplitude on processing time.
    pub jitter: f64,
}

/// The full network model: per-link and per-node parameters.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    default_link: LinkModel,
    overrides: Vec<((BrokerId, BrokerId), LinkModel)>,
    /// Node model applied at every broker without an override.
    pub node: NodeModel,
    node_overrides: Vec<(BrokerId, NodeModel)>,
}

impl NetworkModel {
    /// Builds a homogeneous model.
    pub fn uniform(link: LinkModel, node: NodeModel) -> Self {
        NetworkModel {
            default_link: link,
            overrides: Vec::new(),
            node,
            node_overrides: Vec::new(),
        }
    }

    /// Overrides the node model of one broker (heterogeneous
    /// deployments: a slow shared machine, a beefy data-centre node).
    pub fn with_node_override(mut self, broker: BrokerId, node: NodeModel) -> Self {
        self.node_overrides.retain(|(b, _)| *b != broker);
        self.node_overrides.push((broker, node));
        self
    }

    /// The node model in effect at `broker`.
    pub fn node_model(&self, broker: BrokerId) -> NodeModel {
        self.node_overrides
            .iter()
            .find(|(b, _)| *b == broker)
            .map(|(_, n)| *n)
            .unwrap_or(self.node)
    }

    /// The paper's local data-centre cluster: LAN links, fast
    /// deterministic-ish processing.
    pub fn cluster() -> Self {
        NetworkModel::uniform(
            LinkModel::lan(),
            NodeModel {
                process: SimDuration::from_micros(200),
                per_entry: SimDuration::from_micros(2),
                jitter: 0.1,
            },
        )
    }

    /// The PlanetLab wide-area testbed: heterogeneous link latencies
    /// (drawn per link from a heavy-ish tailed range, deterministic
    /// per `seed`), high jitter, slow shared-node processing.
    ///
    /// `links` enumerates the overlay's undirected edges.
    pub fn planetlab(links: &[(BrokerId, BrokerId)], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let overrides = links
            .iter()
            .map(|&(a, b)| {
                // 15–180 ms, skewed toward the low end.
                let base_ms: f64 = 15.0 + 165.0 * rng.gen::<f64>().powi(2);
                let link = LinkModel {
                    latency: SimDuration::from_micros((base_ms * 1000.0) as u64),
                    serialize: SimDuration::from_micros(60),
                    jitter: 0.35,
                };
                ((a, b), link)
            })
            .collect();
        // PlanetLab nodes are shared and uneven: drawn per broker,
        // 1–6 ms base processing, deterministic per seed. The node set
        // is derived from the link endpoints.
        let mut node_rng = StdRng::seed_from_u64(seed ^ 0x517cc1b727220a95);
        let mut seen = Vec::new();
        let mut node_overrides = Vec::new();
        for &(a, b) in links {
            for n in [a, b] {
                if !seen.contains(&n) {
                    seen.push(n);
                    let base_ms = 1.0 + 5.0 * node_rng.gen::<f64>().powi(2);
                    node_overrides.push((
                        n,
                        NodeModel {
                            process: SimDuration::from_micros((base_ms * 1000.0) as u64),
                            per_entry: SimDuration::from_micros(20),
                            jitter: 0.5,
                        },
                    ));
                }
            }
        }
        NetworkModel {
            default_link: LinkModel {
                latency: SimDuration::from_millis(40),
                serialize: SimDuration::from_micros(60),
                jitter: 0.35,
            },
            overrides,
            node: NodeModel {
                process: SimDuration::from_millis(2),
                per_entry: SimDuration::from_micros(20),
                jitter: 0.5,
            },
            node_overrides,
        }
    }

    /// The link model for the (undirected) edge `a`–`b`.
    pub fn link(&self, a: BrokerId, b: BrokerId) -> LinkModel {
        let key = if a < b { (a, b) } else { (b, a) };
        self.overrides
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| *l)
            .unwrap_or(self.default_link)
    }

    /// Samples a processing delay at `broker`, whose routing tables
    /// hold `table_entries` rows.
    pub fn sample_process(
        &self,
        broker: BrokerId,
        table_entries: usize,
        rng: &mut StdRng,
    ) -> SimDuration {
        let node = self.node_model(broker);
        let base = node.process
            + SimDuration::from_nanos(node.per_entry.as_nanos() * table_entries as u64);
        jittered(base, node.jitter, rng)
    }

    /// Samples a propagation latency for the edge `a`–`b`.
    pub fn sample_latency(&self, a: BrokerId, b: BrokerId, rng: &mut StdRng) -> SimDuration {
        let l = self.link(a, b);
        jittered(l.latency, l.jitter, rng)
    }

    /// The serialization cost of the edge `a`–`b` (deterministic).
    pub fn serialize_cost(&self, a: BrokerId, b: BrokerId) -> SimDuration {
        self.link(a, b).serialize
    }
}

fn jittered(base: SimDuration, amp: f64, rng: &mut StdRng) -> SimDuration {
    if amp <= 0.0 {
        return base;
    }
    let f = 1.0 + amp * (rng.gen::<f64>() * 2.0 - 1.0);
    base.mul_f64(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_is_uniform() {
        let m = NetworkModel::cluster();
        assert_eq!(
            m.link(BrokerId(1), BrokerId(2)),
            m.link(BrokerId(7), BrokerId(9))
        );
    }

    #[test]
    fn planetlab_is_heterogeneous_and_deterministic() {
        let links = vec![
            (BrokerId(1), BrokerId(2)),
            (BrokerId(2), BrokerId(3)),
            (BrokerId(3), BrokerId(4)),
        ];
        let a = NetworkModel::planetlab(&links, 42);
        let b = NetworkModel::planetlab(&links, 42);
        let c = NetworkModel::planetlab(&links, 43);
        // Deterministic per seed:
        assert_eq!(
            a.link(BrokerId(1), BrokerId(2)),
            b.link(BrokerId(1), BrokerId(2))
        );
        // Different links differ (with overwhelming probability):
        let l12 = a.link(BrokerId(1), BrokerId(2)).latency;
        let l23 = a.link(BrokerId(2), BrokerId(3)).latency;
        assert_ne!(l12, l23);
        // Different seeds differ:
        assert_ne!(l12, c.link(BrokerId(1), BrokerId(2)).latency);
        // Wide-area latencies are much larger than LAN.
        assert!(l12 >= SimDuration::from_millis(10));
    }

    #[test]
    fn link_lookup_is_direction_agnostic() {
        let links = vec![(BrokerId(1), BrokerId(2))];
        let m = NetworkModel::planetlab(&links, 1);
        assert_eq!(
            m.link(BrokerId(1), BrokerId(2)),
            m.link(BrokerId(2), BrokerId(1))
        );
    }

    #[test]
    fn node_overrides_and_heterogeneity() {
        let slow = NodeModel {
            process: SimDuration::from_millis(50),
            per_entry: SimDuration::ZERO,
            jitter: 0.0,
        };
        let m = NetworkModel::cluster().with_node_override(BrokerId(3), slow);
        assert_eq!(
            m.node_model(BrokerId(3)).process,
            SimDuration::from_millis(50)
        );
        assert_eq!(m.node_model(BrokerId(1)), m.node);
        // Planetlab nodes differ from each other, deterministically.
        let links = vec![(BrokerId(1), BrokerId(2)), (BrokerId(2), BrokerId(3))];
        let a = NetworkModel::planetlab(&links, 9);
        let b = NetworkModel::planetlab(&links, 9);
        assert_eq!(
            a.node_model(BrokerId(1)).process,
            b.node_model(BrokerId(1)).process
        );
        assert_ne!(
            a.node_model(BrokerId(1)).process,
            a.node_model(BrokerId(3)).process
        );
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = SimDuration::from_millis(10);
        assert!(
            NetworkModel::cluster().sample_process(BrokerId(1), 100, &mut rng)
                > NetworkModel::cluster().sample_process(BrokerId(1), 0, &mut rng)
        );
        for _ in 0..100 {
            let d = jittered(base, 0.2, &mut rng);
            assert!(d >= SimDuration::from_millis(8) && d <= SimDuration::from_millis(12));
        }
        assert_eq!(jittered(base, 0.0, &mut rng), base);
    }
}
