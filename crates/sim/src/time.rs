//! Virtual time for the discrete-event simulator.
//!
//! Nanosecond-resolution `u64` newtypes: [`SimTime`] is a point on the
//! simulation clock, [`SimDuration`] a distance between points. Using
//! virtual time makes every run deterministic and seedable while
//! preserving the queueing dynamics the paper's latency results depend
//! on.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start (lossy, for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the duration by `f` (≥ 0), used for jitter.
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration((self.0 as f64 * f.max(0.0)) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + SimDuration::from_micros(1);
        assert_eq!((t2 - t).as_nanos(), 1_000);
        assert_eq!(t2.since(t), SimDuration::from_micros(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime(1_500_000_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn jitter_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 15_000_000);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(1_500_000_000).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
    }
}
