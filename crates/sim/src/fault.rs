//! Deterministic fault injection for [`crate::Sim`].
//!
//! A [`FaultPlan`] describes, per seed, everything that goes wrong in
//! a run:
//!
//! - **Crashes** ([`ScheduledCrash`]): a broker dies at a virtual time
//!   and restarts later. [`CrashKind::Warm`] is the paper's
//!   persisted-everything fault model — algorithmic state, queue state
//!   and timers all survive, mail is merely delayed.
//!   [`CrashKind::StateLoss`] is the real-world one: the in-memory
//!   broker and its timers are destroyed, and the replacement is
//!   rebuilt from its durability log (checkpoint + WAL replay via
//!   `MobileBroker::recover`). Queue state still follows the paper's
//!   persistent-queue assumption: messages addressed to the dead
//!   broker wait and are redelivered after recovery.
//! - **Deaths** ([`ScheduledDeath`]): a broker dies *permanently*
//!   (overlay churn). Nothing of it survives — mail addressed to it is
//!   dropped — and the overlay self-repairs around the hole: surviving
//!   link peers detect the death and run
//!   `MobileBroker::handle_broker_death`, which repairs the topology,
//!   rebuilds affected routing state and resolves in-flight movements
//!   that crossed the victim.
//! - **Partitions** ([`Partition`]): a link is down for a window.
//!   Consistent with persistent queues (and with the TCP runtime's
//!   reconnect-and-retransmit links), partitioned traffic is *delayed
//!   until the heal*, never dropped.
//! - **Link faults** ([`LinkFaults`]): per-message drop and
//!   duplication probabilities, for runs that deliberately leave the
//!   paper's reliable-channel assumption. Under drops only the safety
//!   half of the ACI properties (single instance, exactly-once) is
//!   guaranteed; see DESIGN.md §9.
//!
//! All of it is driven by a dedicated RNG seeded from
//! [`FaultPlan::seed`], so a plan perturbs nothing in the simulation's
//! own randomness and two runs with the same plan and seed are
//! identical.

use transmob_pubsub::BrokerId;

use crate::time::SimTime;

/// What a crash destroys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Everything persists (the paper's Sec. 3.5 idealization); the
    /// broker resumes exactly where it stopped.
    Warm,
    /// The in-memory broker and its timers are lost; recovery rebuilds
    /// it from the attached durability log
    /// ([`crate::Sim::enable_durability`] must be on).
    StateLoss,
}

/// One scheduled broker crash.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledCrash {
    /// When the broker dies.
    pub at: SimTime,
    /// The victim.
    pub broker: BrokerId,
    /// When it comes back.
    pub restart_at: SimTime,
    /// What the crash destroys.
    pub kind: CrashKind,
}

/// One scheduled permanent broker death (overlay churn). Unlike a
/// [`ScheduledCrash`] the broker never comes back: its queue and state
/// are gone, messages addressed to it are dropped, and the surviving
/// neighbors detect the death and run the overlay self-repair
/// ([`transmob_core::MobileBroker::handle_broker_death`]).
#[derive(Debug, Clone, Copy)]
pub struct ScheduledDeath {
    /// When the broker dies.
    pub at: SimTime,
    /// The victim.
    pub broker: BrokerId,
}

/// A link outage window: traffic between `a` and `b` (both
/// directions) sent during `[from, until)` is delayed until `until`.
#[derive(Debug, Clone, Copy)]
pub struct Partition {
    /// One endpoint.
    pub a: BrokerId,
    /// The other endpoint.
    pub b: BrokerId,
    /// Outage start.
    pub from: SimTime,
    /// Heal time.
    pub until: SimTime,
}

impl Partition {
    /// Whether this partition holds traffic between `x` and `y` at
    /// time `t`.
    pub fn covers(&self, x: BrokerId, y: BrokerId, t: SimTime) -> bool {
        let same_link = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        same_link && self.from <= t && t < self.until
    }
}

/// Per-message link fault probabilities.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
}

impl LinkFaults {
    /// No link faults (reliable channels, the paper's assumption).
    pub fn none() -> Self {
        LinkFaults::default()
    }
}

/// A complete, seed-deterministic fault schedule for one run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG (drop/dup decisions).
    pub seed: u64,
    /// Broker crashes.
    pub crashes: Vec<ScheduledCrash>,
    /// Permanent broker deaths (overlay churn; self-repair kicks in).
    pub deaths: Vec<ScheduledDeath>,
    /// Link outage windows.
    pub partitions: Vec<Partition>,
    /// Per-message link faults.
    pub link: LinkFaults,
}

impl FaultPlan {
    /// An empty plan (nothing goes wrong).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Whether any scheduled crash is a [`CrashKind::StateLoss`]
    /// (which requires durability to be enabled on the sim).
    pub fn needs_durability(&self) -> bool {
        self.crashes.iter().any(|c| c.kind == CrashKind::StateLoss)
    }
}
