//! A write-ahead log for queue-state durability (the second half of
//! the paper's Sec. 3.5 fault-tolerance sketch).
//!
//! The paper: *"The queue state includes unprocessed incoming messages
//! at a broker and undelivered outgoing messages. The reliable
//! delivery of these messages between brokers can be achieved using
//! persistent queues."* [`Wal`] is that persistent queue's storage: an
//! append-only JSON-lines file with replay and truncation. Entries are
//! any serde-serializable record — the durability tests persist
//! protocol envelopes and broker snapshots through it.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// When an append is considered durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fdatasync` after every append (and every batch): the entry
    /// survives an OS or power crash, not just a process crash. The
    /// default — recovery logs are useless if they lie about
    /// durability.
    #[default]
    Data,
    /// Flush to the OS only: survives a process crash, not a kernel
    /// one. For throughput experiments and tests that crash processes,
    /// never machines.
    OsBuffer,
}

/// An append-only JSON-lines log with replay.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` with the default
    /// [`SyncPolicy::Data`] (fsync on every append).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the file.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Wal> {
        Wal::open_with(path, SyncPolicy::default())
    }

    /// Opens (creating if absent) the log at `path` with an explicit
    /// sync policy.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the file.
    pub fn open_with(path: impl AsRef<Path>, sync: SyncPolicy) -> io::Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal { path, file, sync })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sync policy appends run under.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        match self.sync {
            SyncPolicy::Data => self.file.sync_data(),
            SyncPolicy::OsBuffer => Ok(()),
        }
    }

    /// Appends one entry; under [`SyncPolicy::Data`] (the default) the
    /// entry is `fdatasync`ed before this returns.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors; on error nothing may be
    /// assumed about the durability of this entry (partial lines are
    /// skipped by [`Wal::replay`]).
    pub fn append<T: Serialize>(&mut self, entry: &T) -> io::Result<()> {
        let mut line = serde_json::to_string(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.sync()
    }

    /// Appends a batch of entries with a single sync at the end,
    /// amortizing the `fdatasync` cost over the batch. All-or-nothing
    /// durability is *not* implied — a crash mid-batch persists a
    /// prefix (plus at most one torn line, which replay drops).
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn append_batch<T: Serialize>(&mut self, entries: &[T]) -> io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut buf = String::new();
        for entry in entries {
            buf.push_str(
                &serde_json::to_string(entry)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
            );
            buf.push('\n');
        }
        self.file.write_all(buf.as_bytes())?;
        self.sync()
    }

    /// Replays every complete entry in append order. A trailing
    /// partial line (torn write during a crash) is ignored; a corrupt
    /// line elsewhere is an error.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and mid-log corruption.
    pub fn replay<T: DeserializeOwned>(&self) -> io::Result<Vec<T>> {
        let file = File::open(&self.path)?;
        let reader = BufReader::new(file);
        let mut out = Vec::new();
        let mut lines = reader.lines().peekable();
        while let Some(line) = lines.next() {
            let line = line?;
            match serde_json::from_str(&line) {
                Ok(entry) => out.push(entry),
                Err(e) => {
                    if lines.peek().is_none() {
                        // Torn tail from a crash mid-append: recover
                        // everything before it.
                        break;
                    }
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e));
                }
            }
        }
        Ok(out)
    }

    /// Truncates the log (after a successful checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Entry {
        seq: u64,
        payload: String,
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("transmob-wal-{}-{name}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_replay_in_order() {
        let path = temp_path("order");
        let mut wal = Wal::open(&path).unwrap();
        for seq in 0..10 {
            wal.append(&Entry {
                seq,
                payload: format!("p{seq}"),
            })
            .unwrap();
        }
        let got: Vec<Entry> = wal.replay().unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn replay_survives_reopen() {
        let path = temp_path("reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&Entry {
                seq: 1,
                payload: "x".into(),
            })
            .unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        let got: Vec<Entry> = wal.replay().unwrap();
        assert_eq!(got.len(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_is_recovered_from() {
        let path = temp_path("torn");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&Entry {
            seq: 1,
            payload: "ok".into(),
        })
        .unwrap();
        // Simulate a crash mid-append: a partial JSON line at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"seq\":2,\"payl").unwrap();
        }
        let got: Vec<Entry> = wal.replay().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let path = temp_path("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&Entry {
            seq: 1,
            payload: "a".into(),
        })
        .unwrap();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"garbage\n").unwrap();
        }
        wal.append(&Entry {
            seq: 3,
            payload: "c".into(),
        })
        .unwrap();
        let got: io::Result<Vec<Entry>> = wal.replay();
        assert!(got.is_err(), "mid-log corruption must not be silent");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn append_batch_amortizes_one_sync_and_replays_in_order() {
        let path = temp_path("batch");
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.sync_policy(), SyncPolicy::Data);
        wal.append_batch::<Entry>(&[]).unwrap(); // empty batch is a no-op
        let batch: Vec<Entry> = (0..5)
            .map(|seq| Entry {
                seq,
                payload: format!("b{seq}"),
            })
            .collect();
        wal.append_batch(&batch).unwrap();
        let got: Vec<Entry> = wal.replay().unwrap();
        assert_eq!(got, batch);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn os_buffer_policy_still_replays() {
        let path = temp_path("osbuf");
        let mut wal = Wal::open_with(&path, SyncPolicy::OsBuffer).unwrap();
        wal.append(&Entry {
            seq: 1,
            payload: "fast".into(),
        })
        .unwrap();
        let got: Vec<Entry> = wal.replay().unwrap();
        assert_eq!(got.len(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_path("truncate");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&Entry {
            seq: 1,
            payload: "a".into(),
        })
        .unwrap();
        wal.truncate().unwrap();
        let got: Vec<Entry> = wal.replay().unwrap();
        assert!(got.is_empty());
        wal.append(&Entry {
            seq: 2,
            payload: "b".into(),
        })
        .unwrap();
        let got: Vec<Entry> = wal.replay().unwrap();
        assert_eq!(got.len(), 1);
        std::fs::remove_file(path).unwrap();
    }
}
