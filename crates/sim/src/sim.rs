//! The discrete-event simulation driver.
//!
//! [`Sim`] hosts one [`MobileBroker`] per overlay node and advances a
//! virtual clock over a priority queue of events. Brokers and links
//! are FIFO servers (see [`crate::network`]); protocol timers fire as
//! events; client commands (including `MOVE`) are injected on a
//! schedule; and repeated movement patterns — the paper's "move, pause
//! ten seconds, move again" clients — run as [`MovementPlan`]s.
//!
//! Failure injection: brokers can crash and restart. Per the paper's
//! fault model (Sec. 3.5), a crashed broker's algorithmic and queue
//! state is persisted: messages addressed to it are *delayed*, not
//! lost, and processing resumes at restart.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transmob_broker::{Hop, OverlayBuilder, Topology};
use transmob_core::transport::{flush_outputs, Transport};
use transmob_core::{
    ClientOp, DurabilityLog, MemoryLog, Message, MobileBroker, MobileBrokerConfig, NetworkOptions,
    Output, ProtocolKind, TimerToken,
};
use transmob_pubsub::{BrokerId, ClientId, MoveId, PublicationMsg};

use crate::fault::{CrashKind, FaultPlan, LinkFaults, Partition};
use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::time::{SimDuration, SimTime};

/// A repeating movement pattern for one client: cycle through
/// `destinations`, pausing between movements (the paper's default
/// pause is ten seconds).
#[derive(Debug, Clone)]
pub struct MovementPlan {
    /// Destinations visited round-robin.
    pub destinations: Vec<BrokerId>,
    /// Pause at each broker between movements.
    pub pause: SimDuration,
    /// Which protocol each movement uses.
    pub protocol: ProtocolKind,
}

#[derive(Debug)]
enum EventKind {
    /// A message batch (one wire frame — everything a neighbour
    /// flushed to this broker in one go) arrives at a broker's input
    /// queue.
    Arrive {
        dst: BrokerId,
        from: Hop,
        msgs: Vec<Message>,
        cause: Option<MoveId>,
    },
    /// A broker finishes processing a message batch.
    Exec {
        dst: BrokerId,
        from: Hop,
        msgs: Vec<Message>,
        cause: Option<MoveId>,
    },
    /// A client command reaches the client's current broker.
    Cmd { client: ClientId, op: ClientOp },
    /// A client command is processed by its broker.
    CmdExec {
        broker: BrokerId,
        client: ClientId,
        op: ClientOp,
    },
    /// A protocol timer fires. `epoch` is the owner's timer epoch at
    /// arm time: a state-loss restart bumps the epoch, so timers armed
    /// before the crash are recognizably stale (they died with the
    /// process) and are discarded at pop.
    Timer {
        broker: BrokerId,
        token: TimerToken,
        epoch: u64,
    },
    /// A scheduled broker crash (from a [`FaultPlan`]).
    Crash {
        broker: BrokerId,
        restart_at: SimTime,
        kind: CrashKind,
    },
    /// A crashed broker restarts.
    Restart { broker: BrokerId, kind: CrashKind },
    /// A broker dies permanently (overlay churn); it never restarts
    /// and its queue state is lost with it.
    Die { broker: BrokerId },
    /// A survivor's failure detector declares `dead` gone, triggering
    /// the overlay self-repair on `observer`.
    Detect { observer: BrokerId, dead: BrokerId },
}

/// Per-link failure-detection delay: how long after a permanent death
/// a survivor with a live link to the victim declares it gone (the
/// sim's stand-in for the TCP runtime's heartbeat-timeout plus
/// redial-exhaustion suspicion window).
const DETECTION_DELAY: SimDuration = SimDuration(50_000_000);

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: the heap pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The discrete-event simulator.
#[derive(Debug)]
pub struct Sim {
    topology: Arc<Topology>,
    model: NetworkModel,
    config: MobileBrokerConfig,
    brokers: BTreeMap<BrokerId, MobileBroker>,
    clock: SimTime,
    heap: BinaryHeap<Event>,
    seq: u64,
    broker_free: BTreeMap<BrokerId, SimTime>,
    link_free: BTreeMap<(BrokerId, BrokerId), SimTime>,
    link_last_arrival: BTreeMap<(BrokerId, BrokerId), SimTime>,
    rng: StdRng,
    /// Collected measurements.
    pub metrics: Metrics,
    cancelled: BTreeSet<(BrokerId, TimerToken)>,
    home: BTreeMap<ClientId, BrokerId>,
    plans: BTreeMap<ClientId, (MovementPlan, usize)>,
    plan_deadline: Option<SimTime>,
    crashed: BTreeSet<BrokerId>,
    /// Permanently dead brokers (overlay churn). Unlike `crashed`,
    /// traffic addressed to a dead broker is *dropped*, not held.
    dead: BTreeSet<BrokerId>,
    /// Events addressed to a crashed broker, held in arrival order
    /// (the paper's persisted-queue fault model) and replayed at
    /// restart.
    held: BTreeMap<BrokerId, Vec<Event>>,
    events_processed: u64,
    /// Per-broker durability logs ([`Sim::enable_durability`]); the
    /// source of truth for state-loss recovery.
    logs: BTreeMap<BrokerId, Arc<Mutex<MemoryLog>>>,
    /// Bumped on every state-loss restart; see [`EventKind::Timer`].
    timer_epoch: BTreeMap<BrokerId, u64>,
    partitions: Vec<Partition>,
    link_faults: LinkFaults,
    fault_rng: StdRng,
    faults_dropped: u64,
    faults_duplicated: u64,
}

impl Sim {
    /// The builder entry point: `Sim::builder().overlay(..)
    /// .options(..).network(..).seed(..).start()`.
    pub fn builder() -> SimBuilder {
        SimBuilder::default()
    }

    /// Builds a simulator over `topology` with every broker using
    /// `config`, driven by `model`, seeded by `seed`.
    #[deprecated(
        since = "0.2.0",
        note = "use Sim::builder().overlay(..).options(..).network(..).seed(..).start()"
    )]
    pub fn new(
        topology: Topology,
        config: MobileBrokerConfig,
        model: NetworkModel,
        seed: u64,
    ) -> Self {
        Self::from_parts(topology, config, model, seed)
    }

    fn from_parts(
        topology: Topology,
        config: MobileBrokerConfig,
        model: NetworkModel,
        seed: u64,
    ) -> Self {
        let topology = Arc::new(topology);
        let brokers = topology
            .brokers()
            .map(|b| {
                (
                    b,
                    MobileBroker::new(b, Arc::clone(&topology), config.clone()),
                )
            })
            .collect();
        Sim {
            topology,
            model,
            config,
            brokers,
            clock: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            broker_free: BTreeMap::new(),
            link_free: BTreeMap::new(),
            link_last_arrival: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(false),
            cancelled: BTreeSet::new(),
            home: BTreeMap::new(),
            plans: BTreeMap::new(),
            plan_deadline: None,
            crashed: BTreeSet::new(),
            dead: BTreeSet::new(),
            held: BTreeMap::new(),
            events_processed: 0,
            logs: BTreeMap::new(),
            timer_epoch: BTreeMap::new(),
            partitions: Vec::new(),
            link_faults: LinkFaults::none(),
            fault_rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            faults_dropped: 0,
            faults_duplicated: 0,
        }
    }

    /// Attaches an in-memory durability log to every broker (the sim's
    /// stand-in for [`crate::WalDurability`]): every external input is
    /// logged before it is applied, and periodic checkpoints truncate
    /// the tail. Required before any [`CrashKind::StateLoss`] crash.
    pub fn enable_durability(&mut self) {
        for (id, broker) in self.brokers.iter_mut() {
            let log = MemoryLog::shared();
            let dyn_log: Arc<Mutex<dyn DurabilityLog>> = log.clone();
            broker
                .attach_durability(dyn_log)
                .expect("in-memory durability cannot fail");
            self.logs.insert(*id, log);
        }
    }

    /// Whether [`Sim::enable_durability`] has run.
    pub fn durability_enabled(&self) -> bool {
        !self.logs.is_empty()
    }

    /// Schedules every fault in `plan`: crashes become events, link
    /// outage windows and drop/duplication probabilities take effect
    /// immediately. The drop/dup decisions draw from a dedicated RNG
    /// reseeded from `plan.seed`, so the simulation's own randomness is
    /// untouched and runs are reproducible per (sim seed, plan).
    ///
    /// # Panics
    ///
    /// Panics if the plan contains a state-loss crash and durability is
    /// not enabled.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        assert!(
            !plan.needs_durability() || self.durability_enabled(),
            "state-loss crashes require Sim::enable_durability()"
        );
        self.fault_rng = StdRng::seed_from_u64(plan.seed ^ 0x9e37_79b9_7f4a_7c15);
        self.partitions.extend_from_slice(&plan.partitions);
        self.link_faults = plan.link;
        for c in &plan.crashes {
            self.push(
                c.at,
                EventKind::Crash {
                    broker: c.broker,
                    restart_at: c.restart_at,
                    kind: c.kind,
                },
            );
        }
        for d in &plan.deaths {
            self.push(d.at, EventKind::Die { broker: d.broker });
        }
    }

    /// Messages dropped by [`LinkFaults::drop_prob`] so far.
    pub fn faults_dropped(&self) -> u64 {
        self.faults_dropped
    }

    /// Messages duplicated by [`LinkFaults::dup_prob`] so far.
    pub fn faults_duplicated(&self) -> u64 {
        self.faults_duplicated
    }

    /// Outstanding cancelled-timer bookkeeping entries (leak check:
    /// quiescent runs must end at zero).
    pub fn cancelled_timers(&self) -> usize {
        self.cancelled.len()
    }

    /// Enables the full delivery log (property-checking runs).
    pub fn enable_delivery_log(&mut self) {
        self.metrics = Metrics::new(true);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The overlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a broker.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn broker(&self, id: BrokerId) -> &MobileBroker {
        &self.brokers[&id]
    }

    /// The broker a client currently calls home (its command target).
    pub fn home_of(&self, client: ClientId) -> Option<BrokerId> {
        self.home.get(&client).copied()
    }

    /// Total protocol/routing anomalies across brokers (healthy runs:
    /// zero).
    pub fn total_anomalies(&self) -> u64 {
        self.brokers
            .values()
            .map(|b| b.anomalies() + b.core().stats().anomalies)
            .sum()
    }

    /// Events processed so far (progress/debug metric).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pushes an event that *continues* an earlier one (an `Exec` for
    /// its `Arrive`, a `CmdExec` for its `Cmd`), reusing the original
    /// sequence number. The seq is the arrival-order witness: if the
    /// broker crashes mid-processing, the re-held event must sort back
    /// into the persisted input queue at its original arrival position,
    /// or replay could reorder a link's FIFO (e.g. an abort overtaking
    /// the ack it chased).
    fn push_continuation(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        self.heap.push(Event { time, seq, kind });
    }

    /// Creates (attaches and starts) a client at `broker`, effective
    /// immediately.
    pub fn create_client(&mut self, broker: BrokerId, client: ClientId) {
        self.brokers
            .get_mut(&broker)
            .expect("unknown broker")
            .create_client(client);
        self.home.insert(client, broker);
    }

    /// Schedules a client command at virtual time `at`. The command is
    /// routed to whatever broker hosts the client *at that time*.
    pub fn schedule_cmd(&mut self, at: SimTime, client: ClientId, op: ClientOp) {
        self.push(at, EventKind::Cmd { client, op });
    }

    /// Installs a repeating movement plan; the first movement fires at
    /// `first_at`.
    pub fn install_plan(&mut self, client: ClientId, plan: MovementPlan, first_at: SimTime) {
        assert!(
            !plan.destinations.is_empty(),
            "movement plan needs at least one destination"
        );
        let dest = plan.destinations[0];
        let protocol = plan.protocol;
        self.plans.insert(client, (plan, 1));
        self.schedule_cmd(first_at, client, ClientOp::MoveTo(dest, protocol));
    }

    /// Stops scheduling plan movements after `t` (already-scheduled
    /// ones still run).
    pub fn set_plan_deadline(&mut self, t: SimTime) {
        self.plan_deadline = Some(t);
    }

    /// Crashes a broker warm until `restart_at`: messages addressed to
    /// it are delayed (queue state persists, per the paper's fault
    /// model), its timers are deferred, and its algorithmic state
    /// survives untouched.
    pub fn crash_broker(&mut self, broker: BrokerId, restart_at: SimTime) {
        self.crashed.insert(broker);
        self.push(
            restart_at,
            EventKind::Restart {
                broker,
                kind: CrashKind::Warm,
            },
        );
    }

    /// Crashes a broker *with state loss* until `restart_at`: the
    /// in-memory broker and all of its timers are destroyed, and the
    /// restart rebuilds it from its durability log (checkpoint + WAL
    /// replay) via `MobileBroker::recover`, re-arming the timers of
    /// in-flight movements. Queued messages still wait out the outage
    /// (persistent queues).
    ///
    /// # Panics
    ///
    /// Panics unless [`Sim::enable_durability`] has run.
    pub fn crash_broker_lossy(&mut self, broker: BrokerId, restart_at: SimTime) {
        assert!(
            self.logs.contains_key(&broker),
            "state-loss crash requires Sim::enable_durability()"
        );
        self.crashed.insert(broker);
        self.push(
            restart_at,
            EventKind::Restart {
                broker,
                kind: CrashKind::StateLoss,
            },
        );
    }

    /// Schedules the permanent death of `broker` at `at` (overlay
    /// churn). The broker never restarts: messages addressed to it are
    /// dropped, its held queue and timers are discarded, and after a
    /// detection delay every survivor holding a live link to it runs
    /// the overlay self-repair
    /// ([`MobileBroker::handle_broker_death`]), whose repair flood
    /// then reaches the rest of the overlay.
    pub fn kill_broker(&mut self, at: SimTime, broker: BrokerId) {
        self.push(at, EventKind::Die { broker });
    }

    /// Brokers that have died permanently so far.
    pub fn dead_brokers(&self) -> &BTreeSet<BrokerId> {
        &self.dead
    }

    /// Runs until the event queue is empty or the clock passes
    /// `until` (events after `until` remain queued).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.heap.peek() {
            if ev.time > until {
                break;
            }
            // unwrap: peeked above
            let ev = self.heap.pop().unwrap();
            self.clock = self.clock.max(ev.time);
            self.events_processed += 1;
            self.step(ev);
        }
        self.clock = self.clock.max(until);
    }

    /// Runs until no events remain.
    pub fn run_to_quiescence(&mut self) {
        while let Some(ev) = self.heap.pop() {
            self.clock = self.clock.max(ev.time);
            self.events_processed += 1;
            self.step(ev);
        }
    }

    fn step(&mut self, ev: Event) {
        let ev_seq = ev.seq;
        match ev.kind {
            EventKind::Arrive {
                dst,
                from,
                msgs,
                cause,
            } => {
                if self.dead.contains(&dst) {
                    return; // dead broker: mail is lost, not held
                }
                if self.crashed.contains(&dst) {
                    // Persisted queue: hold in arrival order and replay
                    // at restart — per-link FIFO must survive the
                    // outage or the reconfiguration message could
                    // overtake in-flight publications, violating the
                    // ordering the paper's consistency proof relies on.
                    self.held.entry(dst).or_default().push(Event {
                        time: self.clock,
                        seq: ev_seq,
                        kind: EventKind::Arrive {
                            dst,
                            from,
                            msgs,
                            cause,
                        },
                    });
                    return;
                }
                let start = self
                    .broker_free
                    .get(&dst)
                    .copied()
                    .unwrap_or(SimTime::ZERO)
                    .max(self.clock);
                let entries = {
                    let core = self.brokers[&dst].core();
                    core.prt().len() + core.srt().len()
                };
                let done = start + self.model.sample_process(dst, entries, &mut self.rng);
                self.broker_free.insert(dst, done);
                self.push_continuation(
                    done,
                    ev_seq,
                    EventKind::Exec {
                        dst,
                        from,
                        msgs,
                        cause,
                    },
                );
            }
            EventKind::Exec {
                dst,
                from,
                msgs,
                cause,
            } => {
                if self.dead.contains(&dst) {
                    return; // died between queueing and processing
                }
                if self.crashed.contains(&dst) {
                    // The broker died between queueing and processing:
                    // the batch goes back to the persisted input queue
                    // (as an Arrive, so it pays processing again after
                    // the restart).
                    self.held.entry(dst).or_default().push(Event {
                        time: self.clock,
                        seq: ev_seq,
                        kind: EventKind::Arrive {
                            dst,
                            from,
                            msgs,
                            cause,
                        },
                    });
                    return;
                }
                // Movement messages attribute to their own transaction;
                // everything else inherits the batch's cause. Split the
                // batch into maximal runs sharing an effective cause so
                // output attribution matches unbatched processing.
                let mut run: Vec<Message> = Vec::new();
                let mut run_cause: Option<MoveId> = None;
                for msg in msgs {
                    let eff = match &msg {
                        Message::Move(mv) => Some(mv.move_id()),
                        Message::PubSub(_) | Message::BrokerDeath { .. } => cause,
                    };
                    if !run.is_empty() && eff != run_cause {
                        let batch = std::mem::take(&mut run);
                        self.exec_run(dst, from, run_cause, batch);
                    }
                    run_cause = eff;
                    run.push(msg);
                }
                if !run.is_empty() {
                    self.exec_run(dst, from, run_cause, run);
                }
            }
            EventKind::Cmd { client, op } => {
                let Some(mut broker) = self.home.get(&client).copied() else {
                    return; // client gone (never created or destroyed)
                };
                if self.dead.contains(&broker) {
                    // The client's home died. If a stub survives
                    // elsewhere (the movement machinery resurrected or
                    // committed it), re-home the client there;
                    // otherwise the client perished with its broker.
                    match self.find_client(client) {
                        Some(b) => {
                            self.home.insert(client, b);
                            broker = b;
                        }
                        None => {
                            self.home.remove(&client);
                            self.plans.remove(&client);
                            return;
                        }
                    }
                }
                if self.crashed.contains(&broker) {
                    self.held.entry(broker).or_default().push(Event {
                        time: self.clock,
                        seq: ev_seq,
                        kind: EventKind::Cmd { client, op },
                    });
                    return;
                }
                let start = self
                    .broker_free
                    .get(&broker)
                    .copied()
                    .unwrap_or(SimTime::ZERO)
                    .max(self.clock);
                let entries = {
                    let core = self.brokers[&broker].core();
                    core.prt().len() + core.srt().len()
                };
                let done = start + self.model.sample_process(broker, entries, &mut self.rng);
                self.broker_free.insert(broker, done);
                self.push_continuation(done, ev_seq, EventKind::CmdExec { broker, client, op });
            }
            EventKind::CmdExec { broker, client, op } => {
                if self.dead.contains(&broker) {
                    // Died between command arrival and execution:
                    // retry as a Cmd, which re-resolves the client's
                    // home (or declares the client gone).
                    self.push(self.clock, EventKind::Cmd { client, op });
                    return;
                }
                if self.crashed.contains(&broker) {
                    // Crashed mid-processing: back to the persisted
                    // queue (as a Cmd, which also re-resolves the
                    // client's home after recovery).
                    self.held.entry(broker).or_default().push(Event {
                        time: self.clock,
                        seq: ev_seq,
                        kind: EventKind::Cmd { client, op },
                    });
                    return;
                }
                if self.brokers[&broker].client(client).is_none() {
                    // The client moved away between command arrival and
                    // execution (its stub was cleaned up when the
                    // transaction acked). Re-resolve its home and
                    // retry; the home map was updated in the same step
                    // as the cleanup, so the retry lands correctly.
                    self.push(self.clock, EventKind::Cmd { client, op });
                    return;
                }
                let is_move = matches!(op, ClientOp::MoveTo(..));
                let target = match op {
                    ClientOp::MoveTo(t, _) => Some(t),
                    _ => None,
                };
                let outs = self
                    .brokers
                    .get_mut(&broker)
                    .expect("unknown broker")
                    .client_op(client, op);
                if is_move {
                    // Register the movement start: find the move id in
                    // the outputs (negotiate/request send, or an
                    // immediate MoveFinished for degenerate moves).
                    for o in &outs {
                        let m = match o {
                            Output::Send {
                                msg: Message::Move(mv),
                                ..
                            } => Some(mv.move_id()),
                            Output::MoveFinished { m, .. } => Some(*m),
                            _ => None,
                        };
                        if let Some(m) = m {
                            self.metrics.move_started(
                                m,
                                client,
                                broker,
                                target.unwrap_or(broker),
                                self.clock,
                            );
                            break;
                        }
                    }
                }
                self.dispatch(broker, None, outs);
            }
            EventKind::Timer {
                broker,
                token,
                epoch,
            } => {
                if epoch < self.timer_epoch.get(&broker).copied().unwrap_or(0) {
                    // Armed before a state-loss crash: the timer died
                    // with the process. Do NOT consume a cancellation —
                    // the restart swept those.
                    return;
                }
                if self.cancelled.remove(&(broker, token)) {
                    return;
                }
                if self.dead.contains(&broker) {
                    return; // timers die with the broker
                }
                if self.crashed.contains(&broker) {
                    self.held.entry(broker).or_default().push(Event {
                        time: self.clock,
                        seq: ev_seq,
                        kind: EventKind::Timer {
                            broker,
                            token,
                            epoch,
                        },
                    });
                    return;
                }
                let outs = self
                    .brokers
                    .get_mut(&broker)
                    .expect("unknown broker")
                    .handle_timer(token);
                self.dispatch(broker, Some(token.m), outs);
            }
            EventKind::Crash {
                broker,
                restart_at,
                kind,
            } => {
                if self.crashed.contains(&broker) || self.dead.contains(&broker) {
                    return; // already down; the first crash wins
                }
                self.crashed.insert(broker);
                self.push(
                    restart_at.max(self.clock),
                    EventKind::Restart { broker, kind },
                );
            }
            EventKind::Restart { broker, kind } => {
                if self.dead.contains(&broker) {
                    return; // death trumps a pending restart
                }
                self.crashed.remove(&broker);
                if kind == CrashKind::StateLoss {
                    self.recover_from_log(broker);
                }
                // Replay the persisted queue in original order; the
                // original sequence numbers keep held events ahead of
                // anything that arrives after the restart instant.
                for mut held in self.held.remove(&broker).unwrap_or_default() {
                    if kind == CrashKind::StateLoss && matches!(held.kind, EventKind::Timer { .. })
                    {
                        // Timers are volatile; recovery re-armed what
                        // in-flight movements still need.
                        continue;
                    }
                    held.time = self.clock;
                    self.heap.push(held);
                }
            }
            EventKind::Die { broker } => {
                if self.dead.contains(&broker) {
                    return;
                }
                self.dead.insert(broker);
                self.crashed.remove(&broker);
                self.held.remove(&broker);
                self.cancelled.retain(|(b, _)| *b != broker);
                self.logs.remove(&broker);
                self.brokers.remove(&broker);
                // Keep the sim's gods-eye overlay in sync so the
                // property checkers (NetworkView) see the post-churn
                // topology the survivors converge to.
                let _ = Arc::make_mut(&mut self.topology).repair(broker);
                // Clients whose only stub lived here are gone; their
                // queued commands drop at the Cmd re-resolution.
                // Per-link failure detectors: every survivor that still
                // carries a live link to the victim (per its *own*,
                // possibly already-repaired overlay copy) notices
                // independently after the detection delay; the repair
                // flood spreads the declaration from there.
                let observers: Vec<BrokerId> = self
                    .brokers
                    .iter()
                    .filter(|(id, b)| {
                        let topo = b.topology();
                        topo.contains(broker) && topo.neighbors(broker).contains(id)
                    })
                    .map(|(id, _)| *id)
                    .collect();
                for obs in observers {
                    // Jitter the per-link detection so repairs do not
                    // start in lockstep (they race in the TCP runtime).
                    let jitter = SimDuration::from_nanos(self.rng.gen_range(0..1_000_000));
                    self.push(
                        self.clock + DETECTION_DELAY + jitter,
                        EventKind::Detect {
                            observer: obs,
                            dead: broker,
                        },
                    );
                }
            }
            EventKind::Detect { observer, dead } => {
                if self.dead.contains(&observer) {
                    return;
                }
                if self.crashed.contains(&observer) {
                    // The observer is down (but not dead): it detects
                    // after it comes back.
                    self.held.entry(observer).or_default().push(Event {
                        time: self.clock,
                        seq: ev_seq,
                        kind: EventKind::Detect { observer, dead },
                    });
                    return;
                }
                let outs = self
                    .brokers
                    .get_mut(&observer)
                    .expect("unknown broker")
                    .handle_broker_death(dead);
                self.dispatch(observer, None, outs);
            }
        }
    }

    /// Rebuilds a broker after a state-loss crash: restore the last
    /// checkpoint, replay the WAL tail, re-arm in-flight movement
    /// timers, and re-attach the (now freshly checkpointed) log.
    fn recover_from_log(&mut self, broker: BrokerId) {
        // Every pre-crash timer died with the process: bump the epoch
        // so stale heap events are discarded at pop, and sweep their
        // cancellation entries, which would otherwise never be consumed
        // (the leak this satellite fixes).
        *self.timer_epoch.entry(broker).or_insert(0) += 1;
        self.cancelled.retain(|(b, _)| *b != broker);
        let log = Arc::clone(self.logs.get(&broker).expect("durability enabled"));
        let (snapshot, records) = log.lock().expect("durability log poisoned").contents();
        let snapshot = snapshot.expect("attach_durability wrote the base checkpoint");
        let (mut rebuilt, timer_outs) = MobileBroker::recover(
            Arc::clone(&self.topology),
            self.config.clone(),
            snapshot,
            &records,
        );
        let dyn_log: Arc<Mutex<dyn DurabilityLog>> = log;
        rebuilt
            .attach_durability(dyn_log)
            .expect("in-memory durability cannot fail");
        self.brokers.insert(broker, rebuilt);
        // Re-arm timers for movements that were in flight at the crash.
        self.dispatch(broker, None, timer_outs);
    }

    /// Applies one cause-uniform run through the broker's batch entry
    /// point (defined as the per-message fold) and ships the effects.
    fn exec_run(&mut self, dst: BrokerId, from: Hop, cause: Option<MoveId>, msgs: Vec<Message>) {
        let outs = self
            .brokers
            .get_mut(&dst)
            .expect("unknown broker")
            .handle_batch(from, msgs);
        self.dispatch(dst, cause, outs);
    }

    fn dispatch(&mut self, src: BrokerId, cause: Option<MoveId>, outs: Vec<Output>) {
        let mut flush = SimFlush {
            sim: self,
            src,
            cause,
        };
        flush_outputs(&mut flush, outs);
    }

    /// Ships one coalesced frame over the (src → to) link: per-message
    /// metrics and drop/duplication draws (a duplicate rides the same
    /// frame right after its original; an all-dropped frame never
    /// departs), then one serialization slot, one latency sample and
    /// one FIFO clamp for the whole frame — the wire-level amortization
    /// batching buys.
    fn ship_batch(
        &mut self,
        src: BrokerId,
        cause: Option<MoveId>,
        to: BrokerId,
        msgs: Vec<Message>,
    ) {
        if self.dead.contains(&to) {
            return; // link to a dead broker: frames vanish
        }
        let mut wire: Vec<Message> = Vec::with_capacity(msgs.len());
        for msg in msgs {
            let eff_cause = match &msg {
                Message::Move(mv) => Some(mv.move_id()),
                Message::PubSub(_) | Message::BrokerDeath { .. } => cause,
            };
            self.metrics.count_message(msg.kind(), eff_cause);
            if self.link_faults.drop_prob > 0.0
                && self.fault_rng.gen::<f64>() < self.link_faults.drop_prob
            {
                self.faults_dropped += 1;
                continue;
            }
            let duplicate = self.link_faults.dup_prob > 0.0
                && self.fault_rng.gen::<f64>() < self.link_faults.dup_prob;
            let echo = duplicate.then(|| msg.clone());
            wire.push(msg);
            if let Some(echo) = echo {
                self.faults_duplicated += 1;
                wire.push(echo);
            }
        }
        if wire.is_empty() {
            return;
        }
        // A partitioned link buffers: the frame cannot start
        // serializing before the heal (chained windows compound).
        let mut base = self.clock;
        loop {
            let healed = base;
            for p in &self.partitions {
                if p.covers(src, to, base) {
                    base = base.max(p.until);
                }
            }
            if base == healed {
                break;
            }
        }
        // Link: FIFO serialization server + latency, paid once per
        // frame.
        let key = (src, to);
        let depart = self
            .link_free
            .get(&key)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(base)
            + self.model.serialize_cost(src, to);
        self.link_free.insert(key, depart);
        let mut arrive = depart + self.model.sample_latency(src, to, &mut self.rng);
        // Clamp to preserve per-link FIFO despite jitter.
        if let Some(last) = self.link_last_arrival.get(&key) {
            if arrive <= *last {
                arrive = *last + SimDuration::from_nanos(1);
            }
        }
        self.link_last_arrival.insert(key, arrive);
        self.push(
            arrive,
            EventKind::Arrive {
                dst: to,
                from: Hop::Broker(src),
                msgs: wire,
                cause,
            },
        );
    }

    /// The broker currently holding any stub for `client` (any state).
    pub fn find_client(&self, client: ClientId) -> Option<BrokerId> {
        self.brokers
            .iter()
            .find(|(_, b)| b.client(client).is_some())
            .map(|(id, _)| *id)
    }

    fn schedule_next_plan_move(&mut self, client: ClientId) {
        let Some((plan, idx)) = self.plans.get_mut(&client) else {
            return;
        };
        let dest = plan.destinations[*idx % plan.destinations.len()];
        *idx += 1;
        let protocol = plan.protocol;
        // Jitter the pause ±5% so the fleet does not move in lockstep.
        let jitter = 0.95 + 0.1 * self.rng.gen::<f64>();
        let at = self.clock + plan.pause.mul_f64(jitter);
        if let Some(deadline) = self.plan_deadline {
            if at > deadline {
                return;
            }
        }
        self.schedule_cmd(at, client, ClientOp::MoveTo(dest, protocol));
    }
}

/// [`Transport`] adapter for one broker step in the simulator: sends
/// become timed wire frames (with fault draws), deliveries become
/// metrics, control effects drive the timer and movement bookkeeping.
struct SimFlush<'a> {
    sim: &'a mut Sim,
    src: BrokerId,
    cause: Option<MoveId>,
}

impl Transport for SimFlush<'_> {
    fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>) {
        self.sim.ship_batch(self.src, self.cause, to, msgs);
    }

    fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>) {
        for publication in publications {
            self.sim
                .metrics
                .count_delivery(self.sim.clock, client, publication.id);
        }
    }

    fn control(&mut self, output: Output) {
        let src = self.src;
        match output {
            Output::SetTimer { token, delay_ns } => {
                self.sim.cancelled.remove(&(src, token));
                let t = self.sim.clock + SimDuration::from_nanos(delay_ns);
                let epoch = self.sim.timer_epoch.get(&src).copied().unwrap_or(0);
                self.sim.push(
                    t,
                    EventKind::Timer {
                        broker: src,
                        token,
                        epoch,
                    },
                );
            }
            Output::CancelTimer { token } => {
                self.sim.cancelled.insert((src, token));
            }
            Output::MoveFinished {
                m,
                client,
                committed,
            } => {
                self.sim.metrics.move_finished(m, committed, self.sim.clock);
                if committed {
                    if let Some(rec) = self.sim.metrics.moves.get(&m) {
                        let target = rec.target;
                        self.sim.home.insert(client, target);
                    }
                }
                self.sim.schedule_next_plan_move(client);
            }
            Output::ClientArrived { .. } => {}
            Output::Send { .. } | Output::DeliverToApp { .. } => {
                unreachable!("flush_outputs routes batchable effects to the batch verbs")
            }
        }
    }
}

impl transmob_core::properties::NetworkView for Sim {
    fn view_topology(&self) -> &Topology {
        &self.topology
    }

    fn view_broker_ids(&self) -> Vec<BrokerId> {
        self.brokers.keys().copied().collect()
    }

    fn view_broker(&self, id: BrokerId) -> &MobileBroker {
        &self.brokers[&id]
    }

    fn view_find_client(&self, client: ClientId) -> Option<BrokerId> {
        self.find_client(client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::{Filter, Publication};

    fn b(i: u32) -> BrokerId {
        BrokerId(i)
    }
    fn c(i: u64) -> ClientId {
        ClientId(i)
    }
    fn range(lo: i64, hi: i64) -> Filter {
        Filter::builder().ge("x", lo).le("x", hi).build()
    }

    fn base_sim() -> Sim {
        let mut sim = Sim::builder()
            .overlay(Topology::chain(5))
            .options(MobileBrokerConfig::reconfig())
            .network(NetworkModel::cluster())
            .seed(7)
            .start();
        sim.create_client(b(1), c(1));
        sim.create_client(b(5), c(2));
        sim.schedule_cmd(SimTime(0), c(1), ClientOp::Advertise(range(0, 100)));
        sim.schedule_cmd(SimTime(1_000_000), c(2), ClientOp::Subscribe(range(0, 100)));
        sim
    }

    #[test]
    fn publication_delivery_takes_network_time() {
        let mut sim = base_sim();
        sim.schedule_cmd(
            SimTime(10_000_000),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 5)),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 1);
        // 4 links × (latency ≈ 200µs + processing ≈ 300µs) ⇒ ≈ 2ms+.
        assert!(sim.now() > SimTime(11_000_000));
    }

    #[test]
    fn movement_latency_is_measured() {
        let mut sim = base_sim();
        sim.schedule_cmd(
            SimTime(20_000_000),
            c(2),
            ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
        );
        sim.run_to_quiescence();
        let recs: Vec<_> = sim.metrics.finished_moves().collect();
        assert_eq!(recs.len(), 1);
        let rec = recs[0].1;
        assert_eq!(rec.committed, Some(true));
        let lat = rec.latency().unwrap();
        // 4 round trips over 4 hops at ~0.5ms/hop ⇒ a few ms.
        assert!(
            lat > SimDuration::from_millis(2) && lat < SimDuration::from_millis(60),
            "implausible latency {lat}"
        );
        assert!(rec.messages >= 12); // 4 protocol legs x 3 hops (B5->B2)
        assert_eq!(sim.home_of(c(2)), Some(b(2)));
        assert_eq!(sim.total_anomalies(), 0);
    }

    #[test]
    fn movement_plan_ping_pongs() {
        let mut sim = base_sim();
        sim.run_to_quiescence(); // finish setup
        sim.install_plan(
            c(2),
            MovementPlan {
                destinations: vec![b(1), b(5)],
                pause: SimDuration::from_millis(100),
                protocol: ProtocolKind::Reconfig,
            },
            sim.now() + SimDuration::from_millis(1),
        );
        let deadline = sim.now() + SimDuration::from_secs(1);
        sim.set_plan_deadline(deadline);
        sim.run_to_quiescence();
        let committed = sim
            .metrics
            .finished_moves()
            .filter(|(_, r)| r.committed == Some(true))
            .count();
        // ~1s / (100ms pause + ~few ms move) ⇒ ≈ 8-10 movements.
        assert!(committed >= 5, "only {committed} movements completed");
        assert_eq!(sim.total_anomalies(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sim = Sim::builder()
                .overlay(Topology::chain(5))
                .options(MobileBrokerConfig::reconfig())
                .network(NetworkModel::cluster())
                .seed(seed)
                .start();
            sim.create_client(b(1), c(1));
            sim.create_client(b(5), c(2));
            sim.schedule_cmd(SimTime(0), c(1), ClientOp::Advertise(range(0, 100)));
            sim.schedule_cmd(SimTime(0), c(2), ClientOp::Subscribe(range(0, 100)));
            sim.schedule_cmd(
                SimTime(5_000_000),
                c(2),
                ClientOp::MoveTo(b(3), ProtocolKind::Reconfig),
            );
            sim.run_to_quiescence();
            (
                sim.now(),
                sim.metrics.total_traffic(),
                sim.metrics.mean_latency_ms().to_bits(),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn crash_delays_but_does_not_lose_messages() {
        let mut sim = base_sim();
        sim.run_to_quiescence();
        // Crash a mid-path broker, publish through it, then restart.
        let t0 = sim.now();
        sim.crash_broker(b(3), t0 + SimDuration::from_secs(2));
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 9)),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 1, "publication lost in crash");
        // Delivery had to wait out the crash.
        assert!(sim.now() >= t0 + SimDuration::from_secs(2));
    }

    #[test]
    fn run_until_stops_the_clock() {
        let mut sim = base_sim();
        sim.schedule_cmd(
            SimTime(5_000_000_000),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 5)),
        );
        sim.run_until(SimTime(1_000_000_000));
        assert_eq!(sim.metrics.delivery_count, 0);
        assert_eq!(sim.now(), SimTime(1_000_000_000));
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 1);
    }
}

#[cfg(test)]
mod fifo_tests {
    use super::*;
    use transmob_pubsub::{Filter, Publication};

    /// Per-link FIFO must survive latency jitter: a rapid sequence of
    /// publications over a jittery wide-area link is delivered in
    /// publication order.
    #[test]
    fn per_link_fifo_survives_jitter() {
        let topology = Topology::chain(3);
        let model = NetworkModel::planetlab(&topology.edges(), 5);
        let mut sim = Sim::builder()
            .overlay(topology)
            .options(MobileBrokerConfig::reconfig())
            .network(model)
            .seed(5)
            .start();
        sim.enable_delivery_log();
        sim.create_client(BrokerId(1), ClientId(1));
        sim.create_client(BrokerId(3), ClientId(2));
        sim.schedule_cmd(
            SimTime(0),
            ClientId(1),
            ClientOp::Advertise(Filter::builder().ge("x", 0).build()),
        );
        sim.schedule_cmd(
            SimTime(0),
            ClientId(2),
            ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
        );
        sim.run_to_quiescence();
        let t0 = sim.now();
        // 100 publications 50µs apart — far below the ±35% jitter on a
        // ~100ms link, so naive jitter would reorder massively.
        for k in 0..100u64 {
            sim.schedule_cmd(
                t0 + SimDuration::from_micros(50 * k),
                ClientId(1),
                ClientOp::Publish(Publication::new().with("x", k as i64)),
            );
        }
        sim.run_to_quiescence();
        let log = sim.metrics.delivery_log.as_ref().unwrap();
        let seqs: Vec<u64> = log
            .iter()
            .filter(|d| d.client == ClientId(2))
            .map(|d| d.publication.0 & 0xffff_ffff)
            .collect();
        assert_eq!(seqs.len(), 100, "publications lost");
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "per-link FIFO violated: {seqs:?}"
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{CrashKind, FaultPlan, LinkFaults, Partition, ScheduledCrash};
    use transmob_pubsub::{Filter, Publication};

    fn b(i: u32) -> BrokerId {
        BrokerId(i)
    }
    fn c(i: u64) -> ClientId {
        ClientId(i)
    }
    fn range(lo: i64, hi: i64) -> Filter {
        Filter::builder().ge("x", lo).le("x", hi).build()
    }

    fn durable_sim(n: u32, seed: u64) -> Sim {
        let mut sim = Sim::builder()
            .overlay(Topology::chain(n))
            .options(MobileBrokerConfig::reconfig())
            .network(NetworkModel::cluster())
            .seed(seed)
            .start();
        sim.enable_durability();
        sim.create_client(b(1), c(1));
        sim.create_client(b(n), c(2));
        sim.schedule_cmd(SimTime(0), c(1), ClientOp::Advertise(range(0, 100)));
        sim.schedule_cmd(SimTime(0), c(2), ClientOp::Subscribe(range(0, 100)));
        sim.run_to_quiescence();
        sim
    }

    /// The acceptance scenario: the target broker dies with full state
    /// loss mid-movement, is rebuilt from checkpoint + WAL, and the
    /// movement still completes cleanly.
    #[test]
    fn state_loss_crash_mid_move_recovers_and_commits() {
        let mut sim = durable_sim(5, 9);
        let t0 = sim.now();
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(2),
            ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
        );
        // ~3 ms in, the negotiate has reached (or is reaching) the
        // target: kill it with state loss.
        sim.run_until(t0 + SimDuration::from_millis(3));
        sim.crash_broker_lossy(b(2), sim.now() + SimDuration::from_millis(100));
        sim.run_to_quiescence();
        let outcomes: Vec<Option<bool>> = sim
            .metrics
            .finished_moves()
            .map(|(_, r)| r.committed)
            .collect();
        assert_eq!(outcomes, vec![Some(true)], "movement did not commit");
        assert_eq!(sim.home_of(c(2)), Some(b(2)));
        assert_eq!(sim.total_anomalies(), 0);
        // The recovered broker routes: a publication arrives once.
        sim.schedule_cmd(
            sim.now() + SimDuration::from_millis(1),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 5)),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 1);
    }

    /// Source-side variant: the broker hosting the moving client dies
    /// with state loss; its client (and the in-flight move state) come
    /// back from the log.
    #[test]
    fn state_loss_crash_of_source_mid_move_recovers() {
        let mut sim = durable_sim(5, 21);
        let t0 = sim.now();
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(2),
            ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
        );
        sim.run_until(t0 + SimDuration::from_millis(2));
        sim.crash_broker_lossy(b(5), sim.now() + SimDuration::from_millis(100));
        sim.run_to_quiescence();
        // Whatever the interleaving chose (commit or timeout-abort),
        // the client lives at exactly one broker and routing is sane.
        let homes: Vec<BrokerId> = sim
            .topology()
            .brokers()
            .filter(|id| {
                sim.broker(*id)
                    .client(c(2))
                    .is_some_and(|cl| cl.state() == transmob_core::ClientState::Started)
            })
            .collect();
        assert_eq!(
            homes.len(),
            1,
            "client must be Started at exactly one broker"
        );
        assert_eq!(sim.total_anomalies(), 0);
        sim.schedule_cmd(
            sim.now() + SimDuration::from_millis(1),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 7)),
        );
        sim.run_to_quiescence();
        assert_eq!(
            sim.metrics.delivery_count, 1,
            "publication lost after recovery"
        );
    }

    /// Regression for the cancelled-timer leak: a committed movement
    /// leaves cancellation entries whose heap events are still pending
    /// far in the future; a state-loss crash discards those events
    /// (epoch bump), so without the restart sweep the entries would
    /// never be consumed.
    #[test]
    fn lossy_restart_sweeps_cancelled_timer_entries() {
        let mut sim = durable_sim(4, 13);
        let t0 = sim.now();
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(2),
            ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
        );
        // Move commits in a few ms; the default 30 s timers it
        // cancelled are still sitting in the heap.
        sim.run_until(t0 + SimDuration::from_secs(1));
        assert!(
            sim.cancelled_timers() > 0,
            "test premise: outstanding cancellations after a committed move"
        );
        sim.crash_broker_lossy(b(2), sim.now() + SimDuration::from_millis(50));
        sim.run_to_quiescence();
        assert_eq!(
            sim.cancelled_timers(),
            0,
            "cancelled-timer bookkeeping leaked across a lossy restart"
        );
        assert_eq!(sim.total_anomalies(), 0);
    }

    /// Partitions buffer traffic until the heal — nothing is lost.
    #[test]
    fn partition_delays_but_delivers() {
        let mut sim = durable_sim(3, 4);
        let t0 = sim.now();
        let mut plan = FaultPlan::new(4);
        plan.partitions.push(Partition {
            a: b(1),
            b: b(2),
            from: t0,
            until: t0 + SimDuration::from_secs(1),
        });
        sim.apply_fault_plan(&plan);
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 3)),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 1, "partition lost a message");
        assert!(
            sim.now() >= t0 + SimDuration::from_secs(1),
            "delivery did not wait out the partition"
        );
    }

    /// Plan-scheduled warm crashes behave like `crash_broker`.
    #[test]
    fn fault_plan_schedules_warm_outages() {
        let mut sim = durable_sim(5, 6);
        let t0 = sim.now();
        let mut plan = FaultPlan::new(6);
        plan.crashes.push(ScheduledCrash {
            at: t0 + SimDuration::from_millis(1),
            broker: b(3),
            restart_at: t0 + SimDuration::from_secs(2),
            kind: CrashKind::Warm,
        });
        sim.apply_fault_plan(&plan);
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(2),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 9)),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 1);
        assert!(sim.now() >= t0 + SimDuration::from_secs(2));
    }

    /// Explicit link drops are counted; with `drop_prob = 1` nothing
    /// crosses any link.
    #[test]
    fn drop_prob_one_loses_messages_and_counts_them() {
        let mut sim = durable_sim(3, 8);
        let t0 = sim.now();
        let mut plan = FaultPlan::new(8);
        plan.link = LinkFaults {
            drop_prob: 1.0,
            dup_prob: 0.0,
        };
        sim.apply_fault_plan(&plan);
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 2)),
        );
        sim.run_to_quiescence();
        assert_eq!(sim.metrics.delivery_count, 0, "dropped message arrived");
        assert!(sim.faults_dropped() > 0);
    }

    /// Duplication delivers twice on the wire; the counter records it.
    #[test]
    fn dup_prob_one_duplicates_and_counts() {
        let mut sim = durable_sim(3, 2);
        let t0 = sim.now();
        let mut plan = FaultPlan::new(2);
        plan.link = LinkFaults {
            drop_prob: 0.0,
            dup_prob: 1.0,
        };
        sim.apply_fault_plan(&plan);
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            c(1),
            ClientOp::Publish(Publication::new().with("x", 4)),
        );
        sim.run_to_quiescence();
        assert!(sim.faults_duplicated() > 0);
        assert!(
            sim.metrics.delivery_count >= 1,
            "duplication lost the original"
        );
    }
}

#[cfg(test)]
mod timer_tests {
    use super::*;
    use transmob_pubsub::{Filter, Publication};

    /// The non-blocking variant in real (virtual) time: the target
    /// broker is down for longer than the negotiate timeout, so the
    /// source aborts via its timer and the client resumes at the
    /// source; after the target recovers, a retry commits.
    #[test]
    fn negotiate_timeout_fires_in_sim_and_retry_succeeds() {
        let config = MobileBrokerConfig {
            negotiate_timeout_ns: Some(500_000_000), // 0.5 s
            ..MobileBrokerConfig::reconfig()
        };
        let mut sim = Sim::builder()
            .overlay(Topology::chain(4))
            .options(config)
            .network(NetworkModel::cluster())
            .seed(3)
            .start();
        sim.enable_delivery_log();
        sim.create_client(BrokerId(1), ClientId(1));
        sim.create_client(BrokerId(4), ClientId(2));
        sim.schedule_cmd(
            SimTime(0),
            ClientId(1),
            ClientOp::Advertise(Filter::builder().ge("x", 0).build()),
        );
        sim.schedule_cmd(
            SimTime(0),
            ClientId(2),
            ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
        );
        sim.run_to_quiescence();
        let t0 = sim.now();
        // Target down for 2 s >> timeout.
        sim.crash_broker(BrokerId(2), t0 + SimDuration::from_secs(2));
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(1),
            ClientId(2),
            ClientOp::MoveTo(BrokerId(2), ProtocolKind::Reconfig),
        );
        // A publication during the aborted window must still arrive.
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(700),
            ClientId(1),
            ClientOp::Publish(Publication::new().with("x", 1)),
        );
        // Retry after recovery.
        sim.schedule_cmd(
            t0 + SimDuration::from_secs(3),
            ClientId(2),
            ClientOp::MoveTo(BrokerId(2), ProtocolKind::Reconfig),
        );
        sim.run_to_quiescence();
        let outcomes: Vec<Option<bool>> = sim
            .metrics
            .finished_moves()
            .map(|(_, r)| r.committed)
            .collect();
        assert_eq!(
            outcomes,
            vec![Some(false), Some(true)],
            "expected timeout-abort then committed retry"
        );
        assert_eq!(sim.home_of(ClientId(2)), Some(BrokerId(2)));
        assert_eq!(sim.metrics.delivery_count, 1, "publication lost");
        assert_eq!(sim.total_anomalies(), 0);
    }
}

/// Builder for [`Sim`] — the same `builder().overlay(..).options(..)
/// .start()` surface every driver exposes, plus the sim-specific
/// network model and RNG seed.
#[derive(Debug)]
pub struct SimBuilder {
    overlay: OverlayBuilder,
    options: NetworkOptions,
    model: NetworkModel,
    seed: u64,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            overlay: OverlayBuilder::default(),
            options: NetworkOptions::default(),
            model: NetworkModel::cluster(),
            seed: 0,
        }
    }
}

impl SimBuilder {
    /// The overlay: an [`OverlayBuilder`] or a pre-built [`Topology`].
    pub fn overlay(mut self, overlay: impl Into<OverlayBuilder>) -> Self {
        self.overlay = overlay.into();
        self
    }

    /// Per-broker options ([`NetworkOptions`], [`MobileBrokerConfig`],
    /// or a bare `BrokerConfig`).
    pub fn options(mut self, options: impl Into<NetworkOptions>) -> Self {
        self.options = options.into();
        self
    }

    /// The link/node timing model (defaults to
    /// [`NetworkModel::cluster`]).
    pub fn network(mut self, model: NetworkModel) -> Self {
        self.model = model;
        self
    }

    /// RNG seed for jitter and fault injection (defaults to 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is invalid (empty, disconnected,
    /// duplicate edges) — use `OverlayBuilder::build` directly for the
    /// typed `TopologyError`.
    pub fn start(self) -> Sim {
        let (topology, par) = self
            .overlay
            .into_parts()
            .expect("invalid overlay passed to Sim::builder()");
        let mut config = self.options.config;
        if let Some(par) = par {
            config.broker.parallelism = par;
        }
        Sim::from_parts(topology, config, self.model, self.seed)
    }
}
