//! Disk-backed [`DurabilityLog`]: a [`Wal`] for the record tail plus
//! an atomically-replaced snapshot file for the checkpoint.
//!
//! This is the storage a real deployment hangs under
//! `MobileBroker::attach_durability`: appends go to
//! `broker-<id>.wal` (fsynced by default, see
//! [`crate::wal::SyncPolicy`]); a checkpoint writes
//! `broker-<id>.snapshot.json` via write-to-temp + rename (atomic on
//! POSIX) and only then truncates the WAL, so a crash at any point
//! leaves either the old checkpoint with its full tail or the new one
//! with an empty tail. Both files carry the core crate's
//! [`DURABILITY_FORMAT_VERSION`] envelope; [`WalDurability::load`]
//! refuses foreign versions.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use transmob_core::persistence::BrokerSnapshot;
use transmob_core::{DurabilityLog, DurabilityRecord, DURABILITY_FORMAT_VERSION};
use transmob_pubsub::BrokerId;

use crate::wal::{SyncPolicy, Wal};

/// The checkpoint file's versioned envelope.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointEnvelope {
    v: u32,
    snapshot: BrokerSnapshot,
}

/// A disk-backed durability log for one broker: WAL + snapshot file.
#[derive(Debug)]
pub struct WalDurability {
    wal: Wal,
    snap_path: PathBuf,
}

impl WalDurability {
    /// Opens (creating if absent) the log pair for `broker` under
    /// `dir`, fsyncing every append.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating `dir` or opening the WAL.
    pub fn open(dir: impl AsRef<Path>, broker: BrokerId) -> io::Result<WalDurability> {
        WalDurability::open_with(dir, broker, SyncPolicy::Data)
    }

    /// Opens the log pair with an explicit WAL sync policy.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating `dir` or opening the WAL.
    pub fn open_with(
        dir: impl AsRef<Path>,
        broker: BrokerId,
        sync: SyncPolicy,
    ) -> io::Result<WalDurability> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let wal = Wal::open_with(dir.join(format!("broker-{}.wal", broker.0)), sync)?;
        let snap_path = dir.join(format!("broker-{}.snapshot.json", broker.0));
        Ok(WalDurability { wal, snap_path })
    }

    /// The snapshot file's path.
    pub fn snapshot_path(&self) -> &Path {
        &self.snap_path
    }

    /// Loads the stored checkpoint (if any) and the record tail, for
    /// `MobileBroker::recover`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, mid-log corruption, and version
    /// mismatches in either file.
    pub fn load(&self) -> io::Result<(Option<BrokerSnapshot>, Vec<DurabilityRecord>)> {
        let snapshot = match fs::read_to_string(&self.snap_path) {
            Ok(text) => {
                let env: CheckpointEnvelope = serde_json::from_str(&text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if env.v != DURABILITY_FORMAT_VERSION {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "checkpoint version {} (want {DURABILITY_FORMAT_VERSION})",
                            env.v
                        ),
                    ));
                }
                Some(env.snapshot)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let records: Vec<DurabilityRecord> = self.wal.replay()?;
        if let Some(bad) = records.iter().find(|r| r.v != DURABILITY_FORMAT_VERSION) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "record version {} (want {DURABILITY_FORMAT_VERSION})",
                    bad.v
                ),
            ));
        }
        Ok((snapshot, records))
    }
}

impl DurabilityLog for WalDurability {
    fn append(&mut self, record: &DurabilityRecord) -> io::Result<()> {
        self.wal.append(record)
    }

    fn append_batch(&mut self, records: &[DurabilityRecord]) -> io::Result<()> {
        // One write + one fsync for the whole input batch (the trait's
        // default would sync per record). Recovery still replays the
        // records one by one; a crash mid-batch persists a prefix.
        self.wal.append_batch(records)
    }

    fn checkpoint(&mut self, snapshot: &BrokerSnapshot) -> io::Result<()> {
        let env = CheckpointEnvelope {
            v: DURABILITY_FORMAT_VERSION,
            snapshot: snapshot.clone(),
        };
        let text = serde_json::to_string(&env)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let tmp = self.snap_path.with_extension("json.tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &self.snap_path)?;
        // Only after the snapshot is in place may the tail go.
        self.wal.truncate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};
    use transmob_broker::Topology;
    use transmob_core::{ClientOp, MobileBroker, MobileBrokerConfig};
    use transmob_pubsub::{ClientId, Filter};

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("transmob-durable-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn kill_and_recover_round_trip_via_disk() {
        let dir = temp_dir("roundtrip");
        let topo = Arc::new(Topology::chain(3));
        let profile_before;
        {
            let mut b = MobileBroker::new(
                BrokerId(2),
                Arc::clone(&topo),
                MobileBrokerConfig::reconfig(),
            );
            let log: Arc<Mutex<dyn DurabilityLog>> =
                Arc::new(Mutex::new(WalDurability::open(&dir, BrokerId(2)).unwrap()));
            b.attach_durability(log).unwrap();
            b.create_client(ClientId(1));
            let _ = b.client_op(
                ClientId(1),
                ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
            );
            profile_before = b.client(ClientId(1)).unwrap().profile();
            // Dropped here without a final checkpoint: the state-loss
            // "kill". Only the checkpoint + WAL survive.
        }
        let store = WalDurability::open(&dir, BrokerId(2)).unwrap();
        let (snap, records) = store.load().unwrap();
        assert_eq!(records.len(), 2, "create + subscribe logged");
        let (recovered, timers) = MobileBroker::recover(
            topo,
            MobileBrokerConfig::reconfig(),
            snap.expect("attach wrote the base checkpoint"),
            &records,
        );
        assert!(timers.is_empty());
        assert_eq!(
            recovered.client(ClientId(1)).unwrap().profile(),
            profile_before
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reload() {
        let dir = temp_dir("checkpoint");
        let topo = Arc::new(Topology::chain(3));
        let mut b = MobileBroker::new(
            BrokerId(1),
            Arc::clone(&topo),
            MobileBrokerConfig {
                checkpoint_every: 2,
                ..MobileBrokerConfig::reconfig()
            },
        );
        let log: Arc<Mutex<dyn DurabilityLog>> =
            Arc::new(Mutex::new(WalDurability::open(&dir, BrokerId(1)).unwrap()));
        b.attach_durability(log).unwrap();
        b.create_client(ClientId(1));
        for _ in 0..5 {
            let _ = b.client_op(
                ClientId(1),
                ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
            );
        }
        let store = WalDurability::open(&dir, BrokerId(1)).unwrap();
        let (snap, records) = store.load().unwrap();
        assert!(snap.is_some());
        assert!(records.len() < 2, "WAL not truncated by checkpoints");
        let (recovered, _) = MobileBroker::recover(
            topo,
            MobileBrokerConfig::reconfig(),
            snap.unwrap(),
            &records,
        );
        assert_eq!(
            recovered.client(ClientId(1)).unwrap().profile().subs.len(),
            5
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_refuses_foreign_checkpoint_version() {
        let dir = temp_dir("badversion");
        fs::create_dir_all(&dir).unwrap();
        let topo = Arc::new(Topology::chain(2));
        let b = MobileBroker::new(BrokerId(1), topo, MobileBrokerConfig::reconfig());
        let env = CheckpointEnvelope {
            v: DURABILITY_FORMAT_VERSION + 1,
            snapshot: b.snapshot(),
        };
        fs::write(
            dir.join("broker-1.snapshot.json"),
            serde_json::to_string(&env).unwrap(),
        )
        .unwrap();
        let store = WalDurability::open(&dir, BrokerId(1)).unwrap();
        let err = store.load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(dir).unwrap();
    }
}
