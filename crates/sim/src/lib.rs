//! # transmob-sim
//!
//! The discrete-event simulation testbed of the transmob reproduction
//! of *"Transactional Mobility in Distributed Content-Based
//! Publish/Subscribe Systems"* (ICDCS 2009).
//!
//! The paper evaluates its protocols on a 14-machine cluster and on
//! PlanetLab; this crate substitutes a deterministic, seedable
//! discrete-event simulator that preserves the mechanisms behind the
//! paper's results: brokers and links are FIFO servers, so message
//! bursts (the covering protocol's cascades) congest queues and delay
//! the movement-protocol messages riding the same links — exactly the
//! effect the measured movement latencies reflect. See `DESIGN.md` for
//! the substitution argument.
//!
//! - [`Sim`] — the driver: events, virtual clock, FIFO queueing,
//!   timers, crash/restart injection, movement plans.
//! - [`NetworkModel`] — performance models with
//!   [`NetworkModel::cluster`] and [`NetworkModel::planetlab`] presets.
//! - [`Metrics`] — the paper's metrics: network traffic (with
//!   per-movement causal attribution), movement duration, movement
//!   throughput.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod durable;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod sim;
pub mod time;
pub mod wal;

pub use durable::WalDurability;
pub use fault::{CrashKind, FaultPlan, LinkFaults, Partition, ScheduledCrash, ScheduledDeath};
pub use metrics::{DeliveryRecord, Metrics, MoveRecord};
pub use network::{LinkModel, NetworkModel, NodeModel};
pub use sim::{MovementPlan, Sim, SimBuilder};
pub use time::{SimDuration, SimTime};
pub use wal::{SyncPolicy, Wal};
