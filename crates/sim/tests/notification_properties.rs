//! Notification-property experiments on the timing-faithful simulator:
//! the reconfiguration protocol's no-loss/no-duplicate guarantee under
//! a publication stream crossing the movement window, versus the
//! traditional break-before-make covering baseline — the paper's
//! motivating observation that ad-hoc movement is not well-behaved.

use std::collections::BTreeSet;

use transmob_broker::Topology;
use transmob_core::{ClientOp, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, PubId, Publication};
use transmob_sim::{NetworkModel, Sim, SimDuration, SimTime};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// Streams `n_pubs` publications (one per `gap`) while the subscriber
/// moves B6 → B2 in the middle of the stream; returns
/// (delivered ids, duplicate count).
fn stream_across_move(
    protocol: ProtocolKind,
    config: MobileBrokerConfig,
    n_pubs: u64,
    seed: u64,
) -> (BTreeSet<PubId>, usize) {
    let mut sim = Sim::builder()
        .overlay(Topology::chain(6))
        .options(config)
        .network(NetworkModel::cluster())
        .seed(seed)
        .start();
    sim.enable_delivery_log();
    sim.create_client(b(1), c(1));
    sim.create_client(b(6), c(2));
    sim.schedule_cmd(SimTime(0), c(1), ClientOp::Advertise(range(0, 1_000_000)));
    sim.schedule_cmd(SimTime(0), c(2), ClientOp::Subscribe(range(0, 1_000_000)));
    sim.run_to_quiescence();
    let t0 = sim.now();
    let gap = SimDuration::from_micros(500);
    for k in 0..n_pubs {
        sim.schedule_cmd(
            t0 + gap.mul_f64(k as f64),
            c(1),
            ClientOp::Publish(Publication::new().with("x", k as i64)),
        );
    }
    // Move right in the middle of the stream: the (un)subscription
    // traffic and the publications cross on the path.
    sim.schedule_cmd(
        t0 + gap.mul_f64(n_pubs as f64 / 2.0),
        c(2),
        ClientOp::MoveTo(b(2), protocol),
    );
    sim.run_to_quiescence();
    assert_eq!(sim.home_of(c(2)), Some(b(2)), "movement did not commit");
    let log = sim.metrics.delivery_log.as_ref().expect("log enabled");
    let all: Vec<PubId> = log
        .iter()
        .filter(|d| d.client == c(2))
        .map(|d| d.publication)
        .collect();
    let unique: BTreeSet<PubId> = all.iter().copied().collect();
    let dups = all.len() - unique.len();
    (unique, dups)
}

fn expected_ids(n: u64) -> BTreeSet<PubId> {
    (0..n).map(|k| PubId((1u64 << 32) | k)).collect()
}

#[test]
fn reconfig_never_loses_or_duplicates_in_flight_publications() {
    for seed in [1u64, 2, 3, 4, 5] {
        let (unique, dups) = stream_across_move(
            ProtocolKind::Reconfig,
            MobileBrokerConfig::reconfig(),
            40,
            seed,
        );
        assert_eq!(dups, 0, "duplicates under reconfig (seed {seed})");
        assert_eq!(
            unique,
            expected_ids(40),
            "lost publications under reconfig (seed {seed})"
        );
    }
}

#[test]
fn covering_break_before_make_can_lose_in_flight_publications() {
    // The paper's motivation: the traditional protocol retracts the
    // subscription at the source before re-issuing it at the target, so
    // publications crossing the path behind the unsubscription frontier
    // die at intermediate brokers. Demonstrate that at least one seed
    // loses messages (and quantify).
    let mut any_loss = 0usize;
    for seed in [1u64, 2, 3, 4, 5] {
        let (unique, dups) = stream_across_move(
            ProtocolKind::Covering,
            MobileBrokerConfig::covering(),
            40,
            seed,
        );
        assert_eq!(dups, 0, "the stub dedup must still hold (seed {seed})");
        any_loss += 40 - unique.len();
    }
    assert!(
        any_loss > 0,
        "expected the break-before-make baseline to drop at least one \
         in-flight publication across five seeds"
    );
}

#[test]
fn covering_make_before_break_closes_the_loss_window() {
    // The ablation: re-issue at the target before retracting at the
    // source. Duplicates may be produced in the network but the stub
    // dedup absorbs them; nothing is lost.
    let config = MobileBrokerConfig {
        make_before_break: true,
        ..MobileBrokerConfig::covering()
    };
    for seed in [1u64, 2, 3] {
        let (unique, dups) = stream_across_move(ProtocolKind::Covering, config.clone(), 40, seed);
        assert_eq!(dups, 0, "stub dedup failed (seed {seed})");
        assert_eq!(
            unique,
            expected_ids(40),
            "make-before-break still lost publications (seed {seed})"
        );
    }
}

#[test]
fn reconfig_survives_a_burst_of_background_churn() {
    // Heavy background: 30 other subscribers churn (unsubscribe and
    // resubscribe) while the mover crosses the overlay; the mover's
    // stream stays exactly-once.
    let mut sim = Sim::builder()
        .overlay(Topology::chain(6))
        .options(MobileBrokerConfig::reconfig())
        .network(NetworkModel::cluster())
        .seed(9)
        .start();
    sim.enable_delivery_log();
    sim.create_client(b(1), c(1));
    sim.create_client(b(6), c(2));
    sim.schedule_cmd(SimTime(0), c(1), ClientOp::Advertise(range(0, 1_000_000)));
    sim.schedule_cmd(SimTime(0), c(2), ClientOp::Subscribe(range(0, 1_000_000)));
    for i in 0..30u64 {
        let id = c(100 + i);
        sim.create_client(b(3 + (i % 3) as u32), id);
        sim.schedule_cmd(
            SimTime(0),
            id,
            ClientOp::Subscribe(range(0, 500_000 + i as i64)),
        );
    }
    sim.run_to_quiescence();
    let t0 = sim.now();
    let gap = SimDuration::from_micros(400);
    for k in 0..50u64 {
        sim.schedule_cmd(
            t0 + gap.mul_f64(k as f64),
            c(1),
            ClientOp::Publish(Publication::new().with("x", k as i64)),
        );
    }
    // Churners toggle mid-stream; the mover crosses at the same time.
    for i in 0..30u64 {
        let id = c(100 + i);
        sim.schedule_cmd(
            t0 + gap.mul_f64(10.0 + i as f64),
            id,
            ClientOp::Unsubscribe(0),
        );
        sim.schedule_cmd(
            t0 + gap.mul_f64(25.0 + i as f64),
            id,
            ClientOp::Subscribe(range(0, 400_000)),
        );
    }
    sim.schedule_cmd(
        t0 + gap.mul_f64(20.0),
        c(2),
        ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
    );
    sim.run_to_quiescence();
    let log = sim.metrics.delivery_log.as_ref().expect("log enabled");
    let got: Vec<PubId> = log
        .iter()
        .filter(|d| d.client == c(2))
        .map(|d| d.publication)
        .collect();
    let unique: BTreeSet<PubId> = got.iter().copied().collect();
    assert_eq!(got.len(), unique.len(), "duplicates under churn");
    assert_eq!(unique, expected_ids(50), "losses under churn");
    assert_eq!(sim.total_anomalies(), 0);
}
