//! Chaos-recovery suite: seeded fault schedules (crashes with state
//! loss, warm crashes, link partitions, drops, duplication) injected
//! at every phase of both movement protocols, with the paper's Sec. 3
//! ACI properties asserted after quiescence.
//!
//! Fault-model contract (DESIGN.md §9):
//!
//! - **Loss-free schedules** (crashes + partitions, no `drop_prob`):
//!   messages are delayed, never lost — the movement must *commit*,
//!   every publication must reach the mover exactly once, and routing
//!   consistency plus the SRT path invariant must hold.
//! - **Dropping schedules** leave the paper's reliable-channel
//!   assumption, so only the safety half is guaranteed: at most one
//!   `Started` copy, no duplicate surfaced notification.
//!
//! The case count honours `CHAOS_CASES` (default 256); each case runs
//! both protocols, so the default run covers ≥256 schedules per
//! protocol. A deterministic sweep additionally crashes the source,
//! target, and path broker at every millisecond offset across the
//! protocol window.

use std::collections::BTreeSet;

use proptest::prelude::*;
use transmob_broker::Topology;
use transmob_core::{properties, ClientOp, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_sim::{
    CrashKind, FaultPlan, LinkFaults, NetworkModel, Partition, ScheduledCrash, Sim, SimDuration,
    SimTime,
};

const PUBLISHER: ClientId = ClientId(1);
const MOVER: ClientId = ClientId(2);
const SOURCE: BrokerId = BrokerId(4);
const TARGET: BrokerId = BrokerId(2);
const PATH: BrokerId = BrokerId(3);
const N_PUBS: usize = 5;

/// One randomized fault schedule.
#[derive(Debug, Clone)]
struct ChaosCase {
    seed: u64,
    victim: BrokerId,
    kind: CrashKind,
    /// Crash offset after the MOVE command, in microseconds (the whole
    /// protocol runs in ~6 ms on the cluster model, so 0..12 ms spans
    /// every phase including after commit).
    crash_offset_us: u64,
    outage_ms: u64,
    /// Optional link outage: (edge index on the chain, start offset µs,
    /// duration ms).
    partition: Option<(usize, u64, u64)>,
    drop_prob: f64,
    dup_prob: f64,
}

fn arb_case() -> impl Strategy<Value = ChaosCase> {
    (
        (0u64..1 << 48, 0usize..3, 0u8..2, 0u64..12_000),
        (20u64..500, 0u8..3, 0usize..3, 0u64..10_000, 50u64..300),
        (0u8..8, 0u8..8),
    )
        .prop_map(
            |(
                (seed, victim, kind, crash_offset_us),
                (outage_ms, part_sel, part_edge, part_start_us, part_ms),
                (drop_sel, dup_sel),
            )| {
                ChaosCase {
                    seed,
                    victim: [SOURCE, TARGET, PATH][victim],
                    kind: if kind == 0 {
                        CrashKind::StateLoss
                    } else {
                        CrashKind::Warm
                    },
                    crash_offset_us,
                    outage_ms,
                    partition: (part_sel == 0).then_some((part_edge, part_start_us, part_ms)),
                    drop_prob: if drop_sel == 0 { 0.05 } else { 0.0 },
                    dup_prob: if dup_sel == 0 { 0.05 } else { 0.0 },
                }
            },
        )
}

fn config_for(protocol: ProtocolKind) -> MobileBrokerConfig {
    match protocol {
        ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
        // The traditional break-before-make covering baseline loses
        // in-flight publications even without faults (the paper's
        // motivating observation, pinned by notification_properties.rs),
        // so the loss-free chaos contract is only meaningful for the
        // make-before-break ablation.
        ProtocolKind::Covering => MobileBrokerConfig {
            make_before_break: true,
            ..MobileBrokerConfig::covering()
        },
    }
}

/// Chain B1–B2–B3–B4; publisher at B1, mover at B4 heading for B2.
fn setup(protocol: ProtocolKind, seed: u64) -> Sim {
    let mut sim = Sim::builder()
        .overlay(Topology::chain(4))
        .options(config_for(protocol))
        .network(NetworkModel::cluster())
        .seed(seed)
        .start();
    sim.enable_durability();
    sim.enable_delivery_log();
    sim.create_client(BrokerId(1), PUBLISHER);
    sim.create_client(SOURCE, MOVER);
    sim.schedule_cmd(
        SimTime(0),
        PUBLISHER,
        ClientOp::Advertise(Filter::builder().ge("x", 0).le("x", 100).build()),
    );
    sim.schedule_cmd(
        SimTime(0),
        MOVER,
        ClientOp::Subscribe(Filter::builder().ge("x", 0).le("x", 100).build()),
    );
    sim.run_to_quiescence();
    sim
}

/// Schedules the movement, the publication stream (before, during, and
/// long after the fault window), and the fault plan itself.
fn inject(sim: &mut Sim, case: &ChaosCase, protocol: ProtocolKind) {
    let t0 = sim.now();
    let move_at = t0 + SimDuration::from_millis(1);
    // Publications straddling every protocol phase, plus one after all
    // 30 s default timeouts have resolved.
    for (i, off_us) in [500u64, 2_000, 4_000, 8_000].iter().enumerate() {
        sim.schedule_cmd(
            t0 + SimDuration::from_micros(*off_us),
            PUBLISHER,
            ClientOp::Publish(Publication::new().with("x", i as i64 + 1)),
        );
    }
    sim.schedule_cmd(
        t0 + SimDuration::from_secs(40),
        PUBLISHER,
        ClientOp::Publish(Publication::new().with("x", 99)),
    );
    sim.schedule_cmd(move_at, MOVER, ClientOp::MoveTo(TARGET, protocol));

    let mut plan = FaultPlan::new(case.seed);
    let crash_at = move_at + SimDuration::from_micros(case.crash_offset_us);
    plan.crashes.push(ScheduledCrash {
        at: crash_at,
        broker: case.victim,
        restart_at: crash_at + SimDuration::from_millis(case.outage_ms),
        kind: case.kind,
    });
    if let Some((edge, start_us, dur_ms)) = case.partition {
        let (a, b) = [(1u32, 2u32), (2, 3), (3, 4)][edge % 3];
        let from = t0 + SimDuration::from_micros(start_us);
        plan.partitions.push(Partition {
            a: BrokerId(a),
            b: BrokerId(b),
            from,
            until: from + SimDuration::from_millis(dur_ms),
        });
    }
    plan.link = LinkFaults {
        drop_prob: case.drop_prob,
        dup_prob: case.dup_prob,
    };
    sim.apply_fault_plan(&plan);
}

/// Sec. 3.4 at the application layer: no client is surfaced the same
/// publication twice, across crashes and wire duplication (the stub's
/// transferred `seen` set is what makes this hold).
fn assert_app_exactly_once(sim: &Sim) -> Result<(), TestCaseError> {
    let log = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled");
    let mut seen = BTreeSet::new();
    for d in log {
        prop_assert!(
            seen.insert((d.client, d.publication)),
            "publication {} surfaced twice to {}",
            d.publication,
            d.client
        );
    }
    Ok(())
}

fn pubs_received_by_mover(sim: &Sim) -> usize {
    sim.metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled")
        .iter()
        .filter(|d| d.client == MOVER)
        .count()
}

/// The safety properties that hold under EVERY schedule, including
/// message-dropping ones.
fn check_safety(sim: &Sim, ctx: &str) -> Result<(), TestCaseError> {
    properties::assert_single_instance(sim)
        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    assert_app_exactly_once(sim)?;
    Ok(())
}

/// The full ACI property set, valid whenever no message was dropped
/// (crashes, partitions, and duplication all preserve them).
fn check_loss_free(sim: &Sim, ctx: &str, expect_commit: bool) -> Result<(), TestCaseError> {
    check_safety(sim, ctx)?;
    properties::check_srt_paths(sim).map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    let probe_case = properties::ConsistencyCase {
        publisher_broker: BrokerId(1),
        probe: Publication::new().with("x", 50),
        expected: BTreeSet::from([MOVER]),
    };
    properties::check_routing_consistency(sim, std::slice::from_ref(&probe_case))
        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    prop_assert_eq!(
        pubs_received_by_mover(sim),
        N_PUBS,
        "{}: mover missed publications",
        ctx
    );
    if expect_commit {
        let outcomes: Vec<Option<bool>> = sim
            .metrics
            .finished_moves()
            .map(|(_, r)| r.committed)
            .collect();
        prop_assert_eq!(
            outcomes,
            vec![Some(true)],
            "{}: loss-free movement must commit",
            ctx
        );
        prop_assert_eq!(
            sim.home_of(MOVER),
            Some(TARGET),
            "{}: wrong final home",
            ctx
        );
    }
    Ok(())
}

fn run_case(case: &ChaosCase, protocol: ProtocolKind) -> Result<(), TestCaseError> {
    let mut sim = setup(protocol, case.seed);
    inject(&mut sim, case, protocol);
    sim.run_to_quiescence();
    let ctx = format!("{protocol:?} {case:?}");
    if case.drop_prob > 0.0 {
        check_safety(&sim, &ctx)
    } else {
        // Duplication can re-finish an already-finished transaction
        // record, so the commit claim is only asserted on clean wires.
        check_loss_free(&sim, &ctx, case.dup_prob == 0.0)
    }
}

fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn chaos_schedules_preserve_aci_properties(case in arb_case()) {
        run_case(&case, ProtocolKind::Reconfig)?;
        run_case(&case, ProtocolKind::Covering)?;
    }
}

/// Deterministic coverage of "crash at every protocol step": for both
/// protocols, kill the source, the target, and the on-path broker with
/// full state loss at every millisecond offset across (and past) the
/// protocol window, and demand the full loss-free property set.
#[test]
fn state_loss_sweep_over_every_protocol_step() {
    for protocol in [ProtocolKind::Reconfig, ProtocolKind::Covering] {
        for victim in [SOURCE, TARGET, PATH] {
            for offset_ms in 0..=12u64 {
                let case = ChaosCase {
                    seed: 1000 * offset_ms + victim.0 as u64,
                    victim,
                    kind: CrashKind::StateLoss,
                    crash_offset_us: offset_ms * 1000,
                    outage_ms: 100,
                    partition: None,
                    drop_prob: 0.0,
                    dup_prob: 0.0,
                };
                if let Err(e) = run_case(&case, protocol) {
                    panic!("sweep {protocol:?} victim {victim} offset {offset_ms}ms: {e}");
                }
            }
        }
    }
}

/// Same schedule, same seed, same result: the fault layer must not
/// perturb determinism.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let case = ChaosCase {
        seed: 42,
        victim: TARGET,
        kind: CrashKind::StateLoss,
        crash_offset_us: 2_500,
        outage_ms: 80,
        partition: Some((1, 3_000, 120)),
        drop_prob: 0.0,
        dup_prob: 0.05,
    };
    let fingerprint = |_: u32| {
        let mut sim = setup(ProtocolKind::Reconfig, case.seed);
        inject(&mut sim, &case, ProtocolKind::Reconfig);
        sim.run_to_quiescence();
        (
            sim.now(),
            sim.metrics.total_traffic(),
            sim.metrics.delivery_count,
            sim.faults_duplicated(),
            sim.events_processed(),
        )
    };
    assert_eq!(fingerprint(0), fingerprint(1));
}
