//! Cyclic tier of the chaos suite: the churn contract of
//! `chaos_churn.rs` re-run on a **ring** overlay, where every
//! publisher/subscriber pair is connected by two arcs and multi-path
//! forwarding (DESIGN.md §15) is auto-enabled.
//!
//! What the ring adds on top of the tree-churn contract:
//!
//! - **Degradation before repair**: killing one broker on a redundant
//!   arc must leave delivery intact *immediately* — publications fan
//!   out over both arcs, so the copy travelling the surviving arc
//!   arrives while the failure detector is still inside its
//!   `DETECTION_DELAY` window and no repair has run anywhere.
//! - **Exactly-once on redundant routes**: with two copies of every
//!   publication racing around the ring, the per-broker dedup windows
//!   (not repair, not luck) must keep the application-layer log
//!   duplicate-free through movement and churn.
//! - **ACI across the cyclic region**: the movement protocols
//!   negotiate along one route of the ring; deaths on and off that
//!   route must still resolve every transaction (source surviving).
//!
//! The randomized tier honours `CHAOS_CASES` (default 128).

use std::collections::BTreeSet;

use proptest::prelude::*;
use transmob_broker::Topology;
use transmob_core::properties::NetworkView;
use transmob_core::{properties, ClientOp, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_sim::{FaultPlan, NetworkModel, ScheduledDeath, Sim, SimDuration, SimTime};

const PUBLISHER: ClientId = ClientId(1);
const MOVER: ClientId = ClientId(2);
const STATIC_SUB: ClientId = ClientId(3);
/// Ring B1–B2–B3–B4–B5–B1; the publisher at B1 and the static
/// subscriber at B3 are joined by two arcs (1–2–3 and 1–5–4–3).
const PUB_HOME: BrokerId = BrokerId(1);
const SUB_HOME: BrokerId = BrokerId(3);
/// The mover travels B4 → B2; the (shortest) movement route is
/// 4–3–2, so B3 doubles as the on-path broker.
const SOURCE: BrokerId = BrokerId(4);
const TARGET: BrokerId = BrokerId(2);
const PATH: BrokerId = SUB_HOME;
/// On the redundant arc between publisher and subscriber, off the
/// movement route.
const ARC: BrokerId = BrokerId(5);

/// Mirrors `sim::DETECTION_DELAY` (private): survivors declare a dead
/// neighbour gone this long after the death. The degradation test
/// must finish its probe well inside this window.
const DETECTION_DELAY: SimDuration = SimDuration(50_000_000);

/// One randomized churn schedule on the ring: who dies, and when
/// (offset after the MOVE command, spanning every protocol phase).
#[derive(Debug, Clone)]
struct ChurnCase {
    seed: u64,
    victim: BrokerId,
    death_offset_us: u64,
}

fn arb_case() -> impl Strategy<Value = ChurnCase> {
    (0u64..1 << 48, 0usize..4, 0u64..12_000).prop_map(|(seed, victim, death_offset_us)| ChurnCase {
        seed,
        victim: [PATH, TARGET, SOURCE, ARC][victim],
        death_offset_us,
    })
}

fn config_for(protocol: ProtocolKind) -> MobileBrokerConfig {
    match protocol {
        ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
        ProtocolKind::Covering => MobileBrokerConfig {
            make_before_break: true,
            ..MobileBrokerConfig::covering()
        },
    }
}

fn setup(protocol: ProtocolKind, seed: u64) -> Sim {
    let mut sim = Sim::builder()
        .overlay(Topology::ring(5))
        .options(config_for(protocol))
        .network(NetworkModel::cluster())
        .seed(seed)
        .start();
    sim.enable_durability();
    sim.enable_delivery_log();
    sim.create_client(PUB_HOME, PUBLISHER);
    sim.create_client(SOURCE, MOVER);
    sim.create_client(SUB_HOME, STATIC_SUB);
    let everything = || Filter::builder().ge("x", 0).le("x", 100).build();
    sim.schedule_cmd(SimTime(0), PUBLISHER, ClientOp::Advertise(everything()));
    sim.schedule_cmd(SimTime(0), MOVER, ClientOp::Subscribe(everything()));
    sim.schedule_cmd(SimTime(0), STATIC_SUB, ClientOp::Subscribe(everything()));
    sim.run_to_quiescence();
    sim
}

/// Schedules the movement, a publication stream straddling the death,
/// and the death itself.
fn inject(sim: &mut Sim, case: &ChurnCase, protocol: ProtocolKind) {
    let t0 = sim.now();
    let move_at = t0 + SimDuration::from_millis(1);
    for (i, off_us) in [500u64, 2_000, 4_000, 8_000].iter().enumerate() {
        sim.schedule_cmd(
            t0 + SimDuration::from_micros(*off_us),
            PUBLISHER,
            ClientOp::Publish(Publication::new().with("x", i as i64 + 1)),
        );
    }
    sim.schedule_cmd(move_at, MOVER, ClientOp::MoveTo(TARGET, protocol));
    let mut plan = FaultPlan::new(case.seed);
    plan.deaths.push(ScheduledDeath {
        at: move_at + SimDuration::from_micros(case.death_offset_us),
        broker: case.victim,
    });
    sim.apply_fault_plan(&plan);
}

/// Exactly-once at the application layer: with two copies of every
/// publication racing around the ring, only the dedup windows stand
/// between the subscribers and duplicate deliveries.
fn assert_app_exactly_once(sim: &Sim) -> Result<(), TestCaseError> {
    let log = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled");
    let mut seen = BTreeSet::new();
    for d in log {
        prop_assert!(
            seen.insert((d.client, d.publication)),
            "publication {} surfaced twice to {}",
            d.publication,
            d.client
        );
    }
    Ok(())
}

/// After quiescence, publishes a fresh probe and demands it reach
/// every surviving matching subscriber exactly once. Unlike the chain
/// tier, the static subscriber's home is a legal victim here (it is
/// the movement-path broker), so both subscribers are conditional.
fn assert_post_repair_delivery(sim: &mut Sim, ctx: &str) -> Result<(), TestCaseError> {
    let mut expected: BTreeSet<ClientId> = BTreeSet::new();
    if sim.find_client(STATIC_SUB).is_some() {
        expected.insert(STATIC_SUB);
    }
    if sim.find_client(MOVER).is_some() {
        expected.insert(MOVER);
    }
    let before = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled")
        .len();
    let probe_at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_cmd(
        probe_at,
        PUBLISHER,
        ClientOp::Publish(Publication::new().with("x", 55)),
    );
    sim.run_to_quiescence();
    let log = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled");
    let mut got: Vec<ClientId> = log[before..].iter().map(|d| d.client).collect();
    got.sort_unstable();
    let got_set: BTreeSet<ClientId> = got.iter().copied().collect();
    prop_assert_eq!(
        got_set.clone(),
        expected,
        "{}: post-repair probe delivery set wrong",
        ctx
    );
    prop_assert_eq!(
        got.len(),
        got_set.len(),
        "{}: post-repair probe duplicated",
        ctx
    );
    let probe_case = properties::ConsistencyCase {
        publisher_broker: PUB_HOME,
        probe: Publication::new().with("x", 55),
        expected: got_set,
    };
    properties::check_routing_consistency(sim, std::slice::from_ref(&probe_case))
        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    Ok(())
}

fn run_case(case: &ChurnCase, protocol: ProtocolKind) -> Result<(), TestCaseError> {
    let mut sim = setup(protocol, case.seed);
    inject(&mut sim, case, protocol);
    sim.run_to_quiescence();
    let ctx = format!("ring {protocol:?} {case:?}");

    properties::assert_single_instance(&sim)
        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    assert_app_exactly_once(&sim)?;

    // Atomicity: with the source coordinator alive, the movement must
    // resolve — committed or aborted, never wedged.
    if case.victim != SOURCE {
        for (m, rec) in sim.metrics.moves.iter() {
            prop_assert!(
                rec.committed.is_some(),
                "{}: movement {} wedged (never finished)",
                ctx,
                m
            );
        }
        let committed = sim
            .metrics
            .moves
            .values()
            .any(|r| r.committed == Some(true));
        let expected_home = if committed {
            (!sim.dead_brokers().contains(&TARGET)).then_some(TARGET)
        } else {
            Some(SOURCE)
        };
        prop_assert_eq!(
            sim.find_client(MOVER),
            expected_home,
            "{}: mover not where its outcome says (committed={})",
            ctx,
            committed
        );
    }

    // Routing reconstruction over the (possibly still cyclic) repaired
    // overlay: every survivor's primary route leads to each live
    // publisher.
    properties::check_srt_paths(&sim).map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;

    assert_post_repair_delivery(&mut sim, &ctx)
}

fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128)
}

/// The acceptance criterion of the multi-path redesign: a broker death
/// on one redundant arc must NOT interrupt delivery while the failure
/// detector is still blind. A probe published *inside* the detection
/// window — after the death, before any survivor has noticed — must
/// reach both subscribers via the surviving arc.
#[test]
fn surviving_arc_delivers_inside_the_detection_window() {
    for victim in [TARGET, ARC] {
        let mut sim = setup(ProtocolKind::Reconfig, 11);
        let t0 = sim.now();
        let death_at = t0 + SimDuration::from_millis(1);
        sim.kill_broker(death_at, victim);
        let before = sim
            .metrics
            .delivery_log
            .as_ref()
            .expect("delivery log enabled")
            .len();
        sim.schedule_cmd(
            t0 + SimDuration::from_millis(3),
            PUBLISHER,
            ClientOp::Publish(Publication::new().with("x", 77)),
        );
        // Run to a horizon strictly inside the detection window: the
        // victim is dead but no survivor has declared it yet.
        let horizon = t0 + SimDuration::from_millis(20);
        assert!(horizon < death_at + DETECTION_DELAY);
        sim.run_until(horizon);
        assert!(sim.dead_brokers().contains(&victim));
        // No survivor has detected the death yet: every live broker's
        // own overlay copy still carries the victim. (The sim's
        // gods-eye `topology()` is bookkeeping — it repairs eagerly at
        // the death instant.)
        for id in sim.view_broker_ids() {
            assert!(
                sim.view_broker(id).topology().contains(victim),
                "survivor {id} repaired before the detection delay elapsed"
            );
        }
        let log = sim
            .metrics
            .delivery_log
            .as_ref()
            .expect("delivery log enabled");
        let got: Vec<ClientId> = log[before..].iter().map(|d| d.client).collect();
        let got_set: BTreeSet<ClientId> = got.iter().copied().collect();
        assert_eq!(
            got_set,
            BTreeSet::from([MOVER, STATIC_SUB]),
            "victim {victim}: pre-repair probe must arrive via the surviving arc"
        );
        assert_eq!(
            got.len(),
            got_set.len(),
            "victim {victim}: probe duplicated"
        );

        // The full run afterwards stays consistent: repair prunes the
        // dead arc, exactly-once holds end to end.
        sim.run_to_quiescence();
        for id in sim.view_broker_ids() {
            assert!(
                !sim.view_broker(id).topology().contains(victim),
                "survivor {id} never repaired"
            );
        }
        assert_app_exactly_once(&sim).expect("exactly-once across repair");
        assert_post_repair_delivery(&mut sim, &format!("detection-window victim {victim}"))
            .expect("delivery after repair");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn broker_death_mid_movement_on_the_ring_preserves_aci(case in arb_case()) {
        run_case(&case, ProtocolKind::Reconfig)?;
        run_case(&case, ProtocolKind::Covering)?;
    }
}

/// Deterministic sweep: kill every non-publisher broker with offsets
/// across the protocol window, for both protocols.
#[test]
fn ring_death_sweep_over_every_protocol_step() {
    for protocol in [ProtocolKind::Reconfig, ProtocolKind::Covering] {
        for victim in [PATH, TARGET, SOURCE, ARC] {
            for offset_ms in (0..=12u64).step_by(2) {
                let case = ChurnCase {
                    seed: 1000 * offset_ms + victim.0 as u64,
                    victim,
                    death_offset_us: offset_ms * 1000,
                };
                if let Err(e) = run_case(&case, protocol) {
                    panic!("ring sweep {protocol:?} victim {victim} offset {offset_ms}ms: {e}");
                }
            }
        }
    }
}

/// Repair without any movement in flight: the ring degrades to a
/// chain, no repair edge is needed, and publications keep flowing.
#[test]
fn ring_repair_needs_no_new_edge() {
    let mut sim = setup(ProtocolKind::Reconfig, 7);
    sim.kill_broker(sim.now() + SimDuration::from_millis(1), ARC);
    sim.run_to_quiescence();
    assert!(sim.dead_brokers().contains(&ARC));
    assert!(!sim.topology().contains(ARC), "gods-eye overlay repaired");
    assert!(
        sim.topology().is_tree(),
        "ring minus one broker is a chain — repair must not add edges"
    );
    assert_post_repair_delivery(&mut sim, "ring repair").expect("delivery after repair");
    assert_eq!(sim.total_anomalies(), 0, "clean repair counts no anomalies");
}

/// Same schedule, same seed, same result: multi-path fan-out and
/// dedup must not perturb determinism.
#[test]
fn cyclic_churn_runs_are_deterministic_per_seed() {
    let case = ChurnCase {
        seed: 42,
        victim: ARC,
        death_offset_us: 2_500,
    };
    let fingerprint = |_: u32| {
        let mut sim = setup(ProtocolKind::Reconfig, case.seed);
        inject(&mut sim, &case, ProtocolKind::Reconfig);
        sim.run_to_quiescence();
        (
            sim.now(),
            sim.metrics.total_traffic(),
            sim.metrics.delivery_count,
            sim.events_processed(),
        )
    };
    assert_eq!(fingerprint(0), fingerprint(1));
}
