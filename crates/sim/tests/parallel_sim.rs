//! Driver-level differential for the timing-faithful simulator: the
//! same seeded run, with the brokers switched to sharded/parallel
//! match tables, must produce the identical delivery log — the
//! parallel stage must not perturb simulated time, ordering, or the
//! movement window.

use transmob_broker::{Parallelism, Topology};
use transmob_core::{ClientOp, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_sim::{NetworkModel, Sim, SimDuration, SimTime};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// Publication stream crossing a movement window, as in the
/// notification-property experiments; returns the full delivery log
/// rendered to strings.
fn run(config: MobileBrokerConfig, seed: u64) -> Vec<String> {
    let mut sim = Sim::builder()
        .overlay(Topology::chain(6))
        .options(config)
        .network(NetworkModel::cluster())
        .seed(seed)
        .start();
    sim.enable_delivery_log();
    sim.create_client(b(1), c(1));
    sim.create_client(b(6), c(2));
    sim.schedule_cmd(SimTime(0), c(1), ClientOp::Advertise(range(0, 1_000_000)));
    sim.schedule_cmd(SimTime(0), c(2), ClientOp::Subscribe(range(0, 1_000_000)));
    sim.run_to_quiescence();
    let t0 = sim.now();
    let gap = SimDuration::from_micros(500);
    for k in 0..30u64 {
        sim.schedule_cmd(
            t0 + gap.mul_f64(k as f64),
            c(1),
            ClientOp::Publish(Publication::new().with("x", k as i64)),
        );
    }
    sim.schedule_cmd(
        t0 + gap.mul_f64(15.0),
        c(2),
        ClientOp::MoveTo(b(2), ProtocolKind::Reconfig),
    );
    sim.run_to_quiescence();
    assert_eq!(sim.home_of(c(2)), Some(b(2)), "movement did not commit");
    sim.metrics
        .delivery_log
        .as_ref()
        .expect("log enabled")
        .iter()
        .map(|d| format!("{d:?}"))
        .collect()
}

#[test]
fn sim_delivery_log_is_identical_under_parallel_config() {
    for seed in [1u64, 7, 42] {
        let seq = run(MobileBrokerConfig::reconfig(), seed);
        let par = run(
            MobileBrokerConfig::reconfig().with_parallelism(Parallelism::sharded(4, 2)),
            seed,
        );
        assert!(!seq.is_empty(), "scenario must deliver (seed {seed})");
        assert_eq!(seq, par, "delivery log diverged (seed {seed})");
    }
}
