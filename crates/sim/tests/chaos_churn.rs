//! Churn tier of the chaos suite: *permanent* broker deaths injected
//! mid-movement, with the overlay self-repair asserted to preserve the
//! paper's Sec. 3 ACI properties for every **surviving** participant.
//!
//! Churn contract (DESIGN.md §14):
//!
//! - **Atomicity under churn**: every movement whose source coordinator
//!   survives either commits or aborts cleanly — no transaction wedges,
//!   no half-moved client. The moving client keeps exactly one
//!   `Started` stub among the survivors (or died with its only host).
//! - **Isolation / exactly-once**: no surviving client is surfaced the
//!   same publication twice, even while repair floods re-propagate
//!   routing state over new edges.
//! - **Delivery transparency after repair**: once the repair has
//!   quiesced, a fresh publication reaches *every* surviving matching
//!   subscriber. (Publications in flight at the death instant may be
//!   lost with the victim's queues — permanent death forfeits the
//!   persisted-queue assumption that crash/restart keeps.)
//!
//! The randomized tier honours `CHAOS_CASES` (default 128); the death
//! offset sweeps the whole protocol window so the victim dies in every
//! phase of both movement protocols.

use std::collections::BTreeSet;

use proptest::prelude::*;
use transmob_broker::Topology;
use transmob_core::{properties, ClientOp, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_sim::{FaultPlan, NetworkModel, ScheduledDeath, Sim, SimDuration, SimTime};

const PUBLISHER: ClientId = ClientId(1);
const MOVER: ClientId = ClientId(2);
const STATIC_SUB: ClientId = ClientId(3);
/// Chain B1–B2–B3–B4–B5; publisher at B1, static subscriber at B5.
const PUB_HOME: BrokerId = BrokerId(1);
const SOURCE: BrokerId = BrokerId(4);
const TARGET: BrokerId = BrokerId(2);
const PATH: BrokerId = BrokerId(3);
const SUB_HOME: BrokerId = BrokerId(5);

/// One randomized churn schedule: who dies, and when (offset after the
/// MOVE command, spanning every protocol phase).
#[derive(Debug, Clone)]
struct ChurnCase {
    seed: u64,
    victim: BrokerId,
    death_offset_us: u64,
}

fn arb_case() -> impl Strategy<Value = ChurnCase> {
    (0u64..1 << 48, 0usize..3, 0u64..12_000).prop_map(|(seed, victim, death_offset_us)| ChurnCase {
        seed,
        victim: [PATH, TARGET, SOURCE][victim],
        death_offset_us,
    })
}

fn config_for(protocol: ProtocolKind) -> MobileBrokerConfig {
    match protocol {
        ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
        ProtocolKind::Covering => MobileBrokerConfig {
            make_before_break: true,
            ..MobileBrokerConfig::covering()
        },
    }
}

fn setup(protocol: ProtocolKind, seed: u64) -> Sim {
    let mut sim = Sim::new(
        Topology::chain(5),
        config_for(protocol),
        NetworkModel::cluster(),
        seed,
    );
    sim.enable_durability();
    sim.enable_delivery_log();
    sim.create_client(PUB_HOME, PUBLISHER);
    sim.create_client(SOURCE, MOVER);
    sim.create_client(SUB_HOME, STATIC_SUB);
    let everything = || Filter::builder().ge("x", 0).le("x", 100).build();
    sim.schedule_cmd(SimTime(0), PUBLISHER, ClientOp::Advertise(everything()));
    sim.schedule_cmd(SimTime(0), MOVER, ClientOp::Subscribe(everything()));
    sim.schedule_cmd(SimTime(0), STATIC_SUB, ClientOp::Subscribe(everything()));
    sim.run_to_quiescence();
    sim
}

/// Schedules the movement, a publication stream straddling the death,
/// and the death itself.
fn inject(sim: &mut Sim, case: &ChurnCase, protocol: ProtocolKind) {
    let t0 = sim.now();
    let move_at = t0 + SimDuration::from_millis(1);
    for (i, off_us) in [500u64, 2_000, 4_000, 8_000].iter().enumerate() {
        sim.schedule_cmd(
            t0 + SimDuration::from_micros(*off_us),
            PUBLISHER,
            ClientOp::Publish(Publication::new().with("x", i as i64 + 1)),
        );
    }
    sim.schedule_cmd(move_at, MOVER, ClientOp::MoveTo(TARGET, protocol));
    let mut plan = FaultPlan::new(case.seed);
    plan.deaths.push(ScheduledDeath {
        at: move_at + SimDuration::from_micros(case.death_offset_us),
        broker: case.victim,
    });
    sim.apply_fault_plan(&plan);
}

/// Exactly-once at the application layer, across repair re-propagation
/// and transient multi-path forwarding.
fn assert_app_exactly_once(sim: &Sim) -> Result<(), TestCaseError> {
    let log = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled");
    let mut seen = BTreeSet::new();
    for d in log {
        prop_assert!(
            seen.insert((d.client, d.publication)),
            "publication {} surfaced twice to {}",
            d.publication,
            d.client
        );
    }
    Ok(())
}

/// After quiescence, publishes a fresh probe and demands it reach every
/// surviving matching subscriber exactly once (delivery transparency
/// after repair).
fn assert_post_repair_delivery(sim: &mut Sim, ctx: &str) -> Result<(), TestCaseError> {
    let mut expected: BTreeSet<ClientId> = BTreeSet::from([STATIC_SUB]);
    if sim.find_client(MOVER).is_some() {
        expected.insert(MOVER);
    }
    let before = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled")
        .len();
    let probe_at = sim.now() + SimDuration::from_millis(1);
    sim.schedule_cmd(
        probe_at,
        PUBLISHER,
        ClientOp::Publish(Publication::new().with("x", 55)),
    );
    sim.run_to_quiescence();
    let log = sim
        .metrics
        .delivery_log
        .as_ref()
        .expect("delivery log enabled");
    let mut got: Vec<ClientId> = log[before..].iter().map(|d| d.client).collect();
    got.sort_unstable();
    let got_set: BTreeSet<ClientId> = got.iter().copied().collect();
    prop_assert_eq!(
        got_set.clone(),
        expected,
        "{}: post-repair probe delivery set wrong",
        ctx
    );
    prop_assert_eq!(
        got.len(),
        got_set.len(),
        "{}: post-repair probe duplicated",
        ctx
    );
    // The static routing fixpoint over the survivors' tables must agree.
    let probe_case = properties::ConsistencyCase {
        publisher_broker: PUB_HOME,
        probe: Publication::new().with("x", 55),
        expected: got_set,
    };
    properties::check_routing_consistency(sim, std::slice::from_ref(&probe_case))
        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    Ok(())
}

fn run_case(case: &ChurnCase, protocol: ProtocolKind) -> Result<(), TestCaseError> {
    let mut sim = setup(protocol, case.seed);
    inject(&mut sim, case, protocol);
    sim.run_to_quiescence();
    let ctx = format!("{protocol:?} {case:?}");

    // Safety half of ACI among the survivors.
    properties::assert_single_instance(&sim)
        .map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;
    assert_app_exactly_once(&sim)?;

    // Atomicity: with the source coordinator alive, the movement must
    // resolve — committed or aborted, never wedged.
    if case.victim != SOURCE {
        for (m, rec) in sim.metrics.moves.iter() {
            prop_assert!(
                rec.committed.is_some(),
                "{}: movement {} wedged (never finished)",
                ctx,
                m
            );
        }
        // A committed movement placed the client at the target (which
        // may then have died with it — same fate as any stationary
        // client whose broker dies); an aborted one resumed it at the
        // source. Never anywhere else, never in two places.
        let committed = sim
            .metrics
            .moves
            .values()
            .any(|r| r.committed == Some(true));
        let expected_home = if committed {
            (!sim.dead_brokers().contains(&TARGET)).then_some(TARGET)
        } else {
            Some(SOURCE)
        };
        prop_assert_eq!(
            sim.find_client(MOVER),
            expected_home,
            "{}: mover not where its outcome says (committed={})",
            ctx,
            committed
        );
    }

    // Routing reconstruction: every survivor's SRT points along the
    // repaired tree toward each live publisher.
    properties::check_srt_paths(&sim).map_err(|e| TestCaseError::fail(format!("{ctx}: {e}")))?;

    assert_post_repair_delivery(&mut sim, &ctx)
}

fn chaos_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn broker_death_mid_movement_preserves_aci(case in arb_case()) {
        run_case(&case, ProtocolKind::Reconfig)?;
        run_case(&case, ProtocolKind::Covering)?;
    }
}

/// Deterministic sweep: kill the path broker, the target, and the
/// source with every millisecond offset across the protocol window,
/// for both protocols.
#[test]
fn death_sweep_over_every_protocol_step() {
    for protocol in [ProtocolKind::Reconfig, ProtocolKind::Covering] {
        for victim in [PATH, TARGET, SOURCE] {
            for offset_ms in 0..=12u64 {
                let case = ChurnCase {
                    seed: 1000 * offset_ms + victim.0 as u64,
                    victim,
                    death_offset_us: offset_ms * 1000,
                };
                if let Err(e) = run_case(&case, protocol) {
                    panic!("sweep {protocol:?} victim {victim} offset {offset_ms}ms: {e}");
                }
            }
        }
    }
}

/// Repair without any movement in flight: the overlay heals and
/// publications flow along the new edge.
#[test]
fn repair_restores_delivery_with_no_movement() {
    let mut sim = setup(ProtocolKind::Reconfig, 7);
    sim.kill_broker(sim.now() + SimDuration::from_millis(1), PATH);
    sim.run_to_quiescence();
    assert!(sim.dead_brokers().contains(&PATH));
    assert!(!sim.topology().contains(PATH), "gods-eye overlay repaired");
    assert_post_repair_delivery(&mut sim, "no-movement repair").expect("delivery after repair");
    assert_eq!(sim.total_anomalies(), 0, "clean repair counts no anomalies");
}

/// Same schedule, same seed, same result: churn must not perturb
/// determinism.
#[test]
fn churn_runs_are_deterministic_per_seed() {
    let case = ChurnCase {
        seed: 42,
        victim: PATH,
        death_offset_us: 2_500,
    };
    let fingerprint = |_: u32| {
        let mut sim = setup(ProtocolKind::Reconfig, case.seed);
        inject(&mut sim, &case, ProtocolKind::Reconfig);
        sim.run_to_quiescence();
        (
            sim.now(),
            sim.metrics.total_traffic(),
            sim.metrics.delivery_count,
            sim.events_processed(),
        )
    };
    assert_eq!(fingerprint(0), fingerprint(1));
}
