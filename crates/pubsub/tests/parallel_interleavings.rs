//! Seeded interleaving smoke for the parallel matching stage (the
//! loom-style tier of `scripts/ci.sh`, also run under TSAN when the
//! toolchain supports it).
//!
//! The worker pool claims shard jobs off a shared atomic cursor, so
//! the *schedule* — which worker probes which shard, and in which
//! order results land — is nondeterministic. The merge must erase
//! that: `matching_batch_seeded` forces adversarial job orders via a
//! seeded shuffle, and every (seed, worker-count, shard-count)
//! combination must reproduce the sequential sweep exactly.
//!
//! `INTERLEAVE_SEEDS` scales the seed sweep (default 64).

use transmob_pubsub::{Filter, MatchIndex, Parallelism, Publication};

fn seeds() -> u64 {
    std::env::var("INTERLEAVE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Splitmix64 for the deterministic workload stream.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const ATTRS: [&str; 7] = ["a0", "a1", "a2", "a3", "a4", "a5", "a6"];

fn filter(i: usize) -> Filter {
    let h = mix(i as u64);
    let a = ATTRS[i % ATTRS.len()];
    let b = ATTRS[(i + 1 + (h as usize >> 8) % (ATTRS.len() - 1)) % ATTRS.len()];
    let lo = (h % 80) as i64;
    match h % 4 {
        0 => Filter::builder().ge(a, lo).le(a, lo + 30).build(),
        1 => Filter::builder()
            .ge(a, lo)
            .le(a, lo + 30)
            .ge(b, lo / 2)
            .build(),
        2 => Filter::builder().eq(a, lo / 4).any(b).build(),
        _ => Filter::builder()
            .ge(a, lo)
            .le(a, lo + 40)
            .ne(a, lo + 7)
            .build(),
    }
}

fn pubs(n: usize) -> Vec<Publication> {
    (0..n)
        .map(|i| {
            let mut p = Publication::new();
            for (j, a) in ATTRS.iter().enumerate() {
                if !mix((i as u64) << 16 | j as u64).is_multiple_of(3) {
                    p.set(*a, (mix((j as u64) << 32 | i as u64) % 100) as i64);
                }
            }
            p
        })
        .collect()
}

/// Every forced schedule over every layout reproduces the sequential
/// sweep bit-for-bit.
#[test]
fn seeded_schedules_are_invisible() {
    let batch = pubs(48);
    let mut sequential: MatchIndex<u64> = MatchIndex::new();
    for i in 0..400 {
        sequential.insert(i as u64, &filter(i));
    }
    let expected = sequential.matching_batch(&batch);
    for (shards, workers) in [(2usize, 2usize), (4, 2), (4, 4), (7, 3), (8, 8)] {
        let mut ix = sequential.clone();
        ix.set_parallelism(Parallelism::sharded(shards, workers));
        for seed in 0..seeds() {
            assert_eq!(
                ix.matching_batch_seeded(&batch, seed),
                expected,
                "schedule seed {seed} over {shards} shards / {workers} workers"
            );
        }
    }
}

/// The smoke stays meaningful under churn: after removals and
/// re-inserts (slot recycling), forced schedules still agree.
#[test]
fn seeded_schedules_agree_after_churn() {
    let batch = pubs(32);
    let mut sequential: MatchIndex<u64> = MatchIndex::new();
    for i in 0..300 {
        sequential.insert(i as u64, &filter(i));
    }
    for i in (0..300).step_by(3) {
        sequential.remove(&(i as u64));
    }
    for i in (0..300).step_by(6) {
        sequential.insert(i as u64, &filter(i + 1000));
    }
    let expected = sequential.matching_batch(&batch);
    let mut ix = sequential.clone();
    ix.set_parallelism(Parallelism::sharded(5, 3));
    ix.check_shard_invariants();
    for seed in 0..seeds().min(32) {
        assert_eq!(ix.matching_batch_seeded(&batch, seed), expected);
    }
}

/// Pool reuse under adversarial schedules: one index dispatches the
/// whole seed sweep through a single persistent pool — the helpers
/// spawn once, every forced schedule reuses them, and no schedule can
/// corrupt the per-slot scratch another schedule left behind.
#[test]
fn seeded_schedules_reuse_one_pool() {
    let batch = pubs(40);
    let mut ix: MatchIndex<u64> = MatchIndex::new();
    for i in 0..350 {
        ix.insert(i as u64, &filter(i));
    }
    let expected = ix.matching_batch(&batch);
    ix.set_parallelism(Parallelism::sharded(3, 4));
    let mut spawned_after_first = None;
    for seed in 0..seeds() {
        assert_eq!(
            ix.matching_batch_seeded(&batch, seed),
            expected,
            "schedule seed {seed} with a reused pool"
        );
        let spawned = ix.pool_stats().workers_spawned;
        match spawned_after_first {
            None => {
                assert_eq!(spawned, 3, "fan-out 4 spawns exactly three helpers");
                spawned_after_first = Some(spawned);
            }
            Some(first) => assert_eq!(
                spawned, first,
                "seed {seed} respawned workers instead of reusing the pool"
            ),
        }
    }
}
