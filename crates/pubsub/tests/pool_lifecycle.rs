//! Regression tests pinning the worker-pool lifecycle contract of the
//! parallel matching stage:
//!
//! - `workers == 0` (sequential) and `workers == 1` (inline sharded
//!   stage) never touch the pool — no threads, no fan-outs;
//! - the pooled stage (`workers >= 2`) spawns its helper threads
//!   lazily on the first multi-worker batch and **reuses** them for
//!   every later batch (no per-batch spawning — the bug class this
//!   PR's kernel rework removed);
//! - the unseeded entry point never fans out beyond the machine's
//!   hardware parallelism;
//! - clones share one pool, so a cloned index rides the already
//!   spawned workers.
//!
//! The counters come from [`MatchIndex::pool_stats`]. The seeded entry
//! point is used where the test must observe real helper threads even
//! on single-core CI boxes (the unseeded path clamps to the hardware).

use transmob_pubsub::{Filter, MatchIndex, Parallelism, Publication};

fn loaded(n: usize) -> MatchIndex<u64> {
    let mut ix = MatchIndex::new();
    for i in 0..n {
        let lo = (i % 50) as i64;
        ix.insert(
            i as u64,
            &Filter::builder().ge("x", lo).le("x", lo + 20).build(),
        );
    }
    ix
}

fn batch(n: usize) -> Vec<Publication> {
    (0..n)
        .map(|i| Publication::new().with("x", (i % 60) as i64))
        .collect()
}

#[test]
fn sequential_and_single_worker_touch_no_pool() {
    let pubs = batch(64);
    for par in [Parallelism::sequential(), Parallelism::sharded(4, 1)] {
        let mut ix = loaded(300);
        ix.set_parallelism(par);
        for _ in 0..5 {
            let _ = ix.matching_batch(&pubs);
        }
        let stats = ix.pool_stats();
        assert_eq!(
            stats.workers_spawned, 0,
            "{par:?} must run inline, spawning nothing"
        );
        assert_eq!(
            stats.runs, 0,
            "{par:?} must not dispatch through the pool at all"
        );
    }
}

#[test]
fn pooled_stage_spawns_lazily_then_reuses() {
    let pubs = batch(64);
    let mut ix = loaded(300);
    ix.set_parallelism(Parallelism::sharded(2, 4));
    // Lazy: configuring parallelism alone starts nothing.
    assert_eq!(ix.pool_stats().workers_spawned, 0);
    assert_eq!(ix.pool_stats().runs, 0);

    let expected = ix.matching_batch(&pubs);
    let first = ix.matching_batch_seeded(&pubs, 1);
    assert_eq!(first, expected);
    let after_first = ix.pool_stats();
    // Fan-out 4 = the caller plus three pool helpers.
    assert_eq!(after_first.workers_spawned, 3, "helpers spawn on first use");

    for seed in 2..12 {
        assert_eq!(ix.matching_batch_seeded(&pubs, seed), expected);
    }
    let after_many = ix.pool_stats();
    assert_eq!(
        after_many.workers_spawned, after_first.workers_spawned,
        "later batches must reuse the spawned workers, not add more"
    );
    assert_eq!(
        after_many.runs,
        after_first.runs + 10,
        "every pooled batch is exactly one fan-out"
    );
}

#[test]
fn unseeded_fanout_is_clamped_to_hardware_parallelism() {
    let pubs = batch(64);
    let mut ix = loaded(300);
    ix.set_parallelism(Parallelism::sharded(2, 4));
    for _ in 0..3 {
        let _ = ix.matching_batch(&pubs);
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cap = hw.saturating_sub(1).min(3);
    assert!(
        ix.pool_stats().workers_spawned <= cap,
        "unseeded batches spawned {} helpers, cap is {cap} (hw {hw})",
        ix.pool_stats().workers_spawned
    );
}

#[test]
fn clones_share_the_pool() {
    let pubs = batch(64);
    let mut ix = loaded(300);
    ix.set_parallelism(Parallelism::sharded(2, 4));
    let expected = ix.matching_batch(&pubs);
    assert_eq!(ix.matching_batch_seeded(&pubs, 7), expected);
    let spawned = ix.pool_stats().workers_spawned;
    assert_eq!(spawned, 3);

    let clone = ix.clone();
    assert_eq!(clone.matching_batch_seeded(&pubs, 8), expected);
    assert_eq!(
        clone.pool_stats().workers_spawned,
        spawned,
        "a cloned index must ride the original's workers"
    );
    assert_eq!(
        ix.pool_stats().workers_spawned,
        spawned,
        "the shared pool must not grow when a clone dispatches"
    );
}
