//! Shard rebalancing round-trips: `set_parallelism` re-partitions a
//! live `MatchIndex` in place, and a 1 → N → 1 round-trip must land on
//! exactly the table it started from — same answers on every query
//! family, same internal invariants, with slot assignments preserved
//! across the moves so batch-merge state never dangles.
//!
//! The filter population deliberately covers every row representation
//! the shards own: interval rows, one-sided rows, numeric equality
//! (inline-exact) rows, `ne` exclusion rows attached to intervals,
//! string-equality inline-exact rows, prefix rows, presence (`any`)
//! rows, arity-0 filters (slotless, zero-set), and unsatisfiable
//! filters (indexed nowhere).

use transmob_pubsub::{Filter, MatchIndex, Parallelism, Publication};

/// A filter population touching every row family the shards store.
fn population() -> Vec<(u64, Filter)> {
    let mut out = Vec::new();
    let mut id = 0u64;
    let mut push = |f: Filter, out: &mut Vec<(u64, Filter)>| {
        out.push((id, f));
        id += 1;
    };
    for i in 0..6i64 {
        // Interval bands with and without `ne` exclusions inside.
        push(
            Filter::builder()
                .ge("x", i * 10)
                .le("x", i * 10 + 25)
                .build(),
            &mut out,
        );
        push(
            Filter::builder()
                .ge("x", i * 10)
                .le("x", i * 10 + 25)
                .ne("x", i * 10 + 5)
                .build(),
            &mut out,
        );
        // One-sided rows on a second attribute.
        push(Filter::builder().ge("y", i * 7 - 3).build(), &mut out);
        push(Filter::builder().le("y", i * 7 + 3).build(), &mut out);
        // Inline-exact numeric and string rows, prefixes, presence.
        push(Filter::builder().eq("z", i).build(), &mut out);
        push(
            Filter::builder()
                .eq("tag", ["alpha", "beta", "gamma"][i as usize % 3])
                .build(),
            &mut out,
        );
        push(
            Filter::builder()
                .prefix("tag", ["al", "be", ""][i as usize % 3])
                .build(),
            &mut out,
        );
        push(Filter::builder().any("w").build(), &mut out);
        // Conjunctions spanning attributes (hence spanning shards).
        push(
            Filter::builder()
                .ge("x", i * 5)
                .le("y", i * 5 + 40)
                .eq("tag", "alpha")
                .build(),
            &mut out,
        );
    }
    // Arity-0 (matches everything; slotless) and unsatisfiable rows.
    push(Filter::builder().build(), &mut out);
    push(Filter::builder().eq("x", 1).eq("x", 2).build(), &mut out);
    out
}

fn probe_pubs() -> Vec<Publication> {
    let mut pubs = vec![Publication::new()];
    for v in [-5i64, 0, 5, 12, 15, 23, 31, 47, 60] {
        pubs.push(
            Publication::new()
                .with("x", v)
                .with("y", 40 - v)
                .with("z", v % 6),
        );
    }
    for tag in ["alpha", "beta", "al", ""] {
        pubs.push(Publication::new().with("tag", tag).with("w", 1));
    }
    pubs
}

fn probe_filters() -> Vec<Filter> {
    vec![
        Filter::builder().ge("x", 5).le("x", 20).build(),
        Filter::builder().ge("x", 0).le("x", 100).build(),
        Filter::builder().eq("tag", "alpha").build(),
        Filter::builder().prefix("tag", "al").build(),
        Filter::builder().any("w").ge("y", 0).build(),
        Filter::builder().build(),
    ]
}

/// Every query family answered by `ix`, flattened into one comparable
/// structure.
fn snapshot(ix: &MatchIndex<u64>) -> Vec<Vec<u64>> {
    let mut shot = Vec::new();
    let pubs = probe_pubs();
    for p in &pubs {
        shot.push(ix.matching(p));
    }
    shot.extend(ix.matching_batch(&pubs));
    for f in probe_filters() {
        shot.push(ix.overlapping(&f));
        shot.push(ix.covering(&f));
        shot.push(ix.covered_by(&f));
    }
    shot
}

fn build(par: Parallelism) -> MatchIndex<u64> {
    let mut ix = MatchIndex::with_parallelism(par);
    for (id, f) in population() {
        ix.insert(id, &f);
    }
    ix
}

/// 1 → N → 1: rebalancing out to `n` shards and back reproduces the
/// original answers at every stage, for every row family.
#[test]
fn round_trip_preserves_every_query_family() {
    let baseline = build(Parallelism::sequential());
    let reference = snapshot(&baseline);
    for n in [2usize, 3, 5, 8] {
        let mut ix = build(Parallelism::sequential());
        ix.set_parallelism(Parallelism::sharded(n, 2));
        ix.check_shard_invariants();
        assert_eq!(snapshot(&ix), reference, "sharded to {n}");
        ix.set_parallelism(Parallelism::sequential());
        ix.check_shard_invariants();
        assert_eq!(snapshot(&ix), reference, "back from {n} shards");
    }
}

/// Rebalancing between two multi-shard layouts (N → M, no stop at 1)
/// is just as exact.
#[test]
fn cross_rebalance_preserves_answers() {
    let reference = snapshot(&build(Parallelism::sequential()));
    let mut ix = build(Parallelism::sharded(3, 2));
    for n in [7usize, 2, 5, 3] {
        ix.set_parallelism(Parallelism::sharded(n, 2));
        ix.check_shard_invariants();
        assert_eq!(snapshot(&ix), reference, "rebalanced to {n}");
    }
}

/// Churn interleaved with rebalances: removes and re-inserts between
/// layout changes must keep the table equal to a freshly-built
/// sequential twin, exclusion and inline-exact rows included.
#[test]
fn churn_across_rebalances_matches_fresh_build() {
    let pop = population();
    let mut ix = build(Parallelism::sequential());
    let mut layouts = [
        Parallelism::sharded(4, 2),
        Parallelism::sharded(1, 1),
        Parallelism::sharded(6, 2),
        Parallelism::sequential(),
    ]
    .into_iter();
    // Remove every third row, rebalance, re-insert, rebalance, ...
    let removed: Vec<u64> = pop
        .iter()
        .filter(|(id, _)| id % 3 == 0)
        .map(|(id, _)| *id)
        .collect();
    for id in &removed {
        assert!(ix.remove(id), "row {id} must exist before removal");
    }
    ix.set_parallelism(layouts.next().unwrap());
    ix.check_shard_invariants();
    let mut twin: MatchIndex<u64> = MatchIndex::new();
    for (id, f) in pop.iter().filter(|(id, _)| id % 3 != 0) {
        twin.insert(*id, f);
    }
    assert_eq!(snapshot(&ix), snapshot(&twin), "after removals");
    for (id, f) in pop.iter().filter(|(id, _)| removed.contains(id)) {
        ix.insert(*id, f);
    }
    for par in layouts {
        ix.set_parallelism(par);
        ix.check_shard_invariants();
    }
    let full: MatchIndex<u64> = {
        let mut t = MatchIndex::new();
        for (id, f) in &pop {
            t.insert(*id, f);
        }
        t
    };
    assert_eq!(snapshot(&ix), snapshot(&full), "after re-insertion");
}

/// `set_parallelism` to the current layout is a no-op, and shard
/// counts are clamped to at least one.
#[test]
fn degenerate_layouts_are_safe() {
    let mut ix = build(Parallelism::sharded(4, 2));
    let reference = snapshot(&ix);
    ix.set_parallelism(Parallelism::sharded(4, 2));
    ix.check_shard_invariants();
    assert_eq!(snapshot(&ix), reference);
    ix.set_parallelism(Parallelism::sharded(0, 0));
    ix.check_shard_invariants();
    assert_eq!(ix.parallelism().shards, 1, "shard count clamps to ≥ 1");
    assert_eq!(snapshot(&ix), reference);
}
