//! Normalized per-attribute constraints.
//!
//! A [`crate::Filter`] (subscription or advertisement) is a conjunction
//! of predicates. For routing we need three relations between filters:
//! *matching* a publication, *covering* (subsumption: every publication
//! matching `f2` matches `f1`), and *overlap* (some publication could
//! match both — the advertisement/subscription intersection test).
//!
//! Rather than reason about raw predicate lists, each filter normalizes
//! the predicates on one attribute into a [`Constraint`]: an interval
//! with excluded points for numeric attributes, an interval plus
//! prefix/suffix/substring conjuncts for strings, or an allowed-set for
//! booleans.
//!
//! # Soundness contract
//!
//! The relations are *conservative in the safe direction* for
//! content-based routing:
//!
//! - [`Constraint::covers`] never returns `true` unless subsumption
//!   really holds (no false positives — a false positive would suppress
//!   a subscription and lose notifications). It may return `false` for
//!   exotic string-constraint combinations it cannot prove.
//! - [`Constraint::overlaps`] never returns `false` when an overlap
//!   exists (no false negatives — a false negative would break routing
//!   paths). It may return `true` for some actually-empty intersections,
//!   which only costs extra forwarding.
//!
//! These contracts are exercised by the property tests in this module
//! and in `tests/` of this crate.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::predicate::{Op, Predicate};
use crate::value::{Value, ValueKind};

/// Domains over which intervals are defined (numeric and string).
///
/// This trait is sealed in spirit: it exists so [`Interval`] can be
/// shared between `f64` and `String` endpoints; implementing it for
/// other types is not useful.
pub trait Domain: Clone + fmt::Debug {
    /// Total order on the domain.
    fn cmp_dom(&self, other: &Self) -> Ordering;
}

impl Domain for f64 {
    fn cmp_dom(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Domain for String {
    fn cmp_dom(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
}

/// One end of an [`Interval`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Bound<T> {
    /// No bound on this side.
    Unbounded,
    /// Closed bound (endpoint included).
    Incl(T),
    /// Open bound (endpoint excluded).
    Excl(T),
}

impl<T: Domain> Bound<T> {
    fn as_ref(&self) -> Option<(&T, bool)> {
        match self {
            Bound::Unbounded => None,
            Bound::Incl(t) => Some((t, true)),
            Bound::Excl(t) => Some((t, false)),
        }
    }
}

/// A (possibly half-open, possibly unbounded) interval over a [`Domain`].
///
/// The numeric domain is treated as continuous (`f64`); see the module
/// docs for why that is conservative in the safe direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interval<T> {
    lo: Bound<T>,
    hi: Bound<T>,
}

impl<T: Domain> Default for Interval<T> {
    fn default() -> Self {
        Interval::full()
    }
}

impl<T: Domain> Interval<T> {
    /// The full domain.
    pub fn full() -> Self {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// The single point `[v, v]`.
    pub fn point(v: T) -> Self {
        Interval {
            lo: Bound::Incl(v.clone()),
            hi: Bound::Incl(v),
        }
    }

    /// Builds an interval from explicit bounds.
    pub fn new(lo: Bound<T>, hi: Bound<T>) -> Self {
        Interval { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> &Bound<T> {
        &self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> &Bound<T> {
        &self.hi
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: &T) -> bool {
        let lo_ok = match self.lo.as_ref() {
            None => true,
            Some((l, incl)) => match l.cmp_dom(v) {
                Ordering::Less => true,
                Ordering::Equal => incl,
                Ordering::Greater => false,
            },
        };
        let hi_ok = match self.hi.as_ref() {
            None => true,
            Some((h, incl)) => match v.cmp_dom(h) {
                Ordering::Less => true,
                Ordering::Equal => incl,
                Ordering::Greater => false,
            },
        };
        lo_ok && hi_ok
    }

    /// Whether the interval contains no points (in the continuous
    /// interpretation of the domain).
    pub fn is_empty(&self) -> bool {
        match (self.lo.as_ref(), self.hi.as_ref()) {
            (Some((l, li)), Some((h, hi))) => match l.cmp_dom(h) {
                Ordering::Greater => true,
                Ordering::Equal => !(li && hi),
                Ordering::Less => false,
            },
            _ => false,
        }
    }

    /// If the interval is a single point, returns it.
    pub fn as_point(&self) -> Option<&T> {
        match (&self.lo, &self.hi) {
            (Bound::Incl(l), Bound::Incl(h)) if l.cmp_dom(h) == Ordering::Equal => Some(l),
            _ => None,
        }
    }

    /// Intersection of two intervals (tightest bounds on each side).
    pub fn intersect(&self, other: &Interval<T>) -> Interval<T> {
        fn tighter_lo<T: Domain>(a: &Bound<T>, b: &Bound<T>) -> Bound<T> {
            match (a.as_ref(), b.as_ref()) {
                (None, _) => b.clone(),
                (_, None) => a.clone(),
                (Some((x, xi)), Some((y, yi))) => match x.cmp_dom(y) {
                    Ordering::Greater => a.clone(),
                    Ordering::Less => b.clone(),
                    Ordering::Equal => {
                        if !xi || !yi {
                            Bound::Excl(x.clone())
                        } else {
                            Bound::Incl(x.clone())
                        }
                    }
                },
            }
        }
        fn tighter_hi<T: Domain>(a: &Bound<T>, b: &Bound<T>) -> Bound<T> {
            match (a.as_ref(), b.as_ref()) {
                (None, _) => b.clone(),
                (_, None) => a.clone(),
                (Some((x, xi)), Some((y, yi))) => match x.cmp_dom(y) {
                    Ordering::Less => a.clone(),
                    Ordering::Greater => b.clone(),
                    Ordering::Equal => {
                        if !xi || !yi {
                            Bound::Excl(x.clone())
                        } else {
                            Bound::Incl(x.clone())
                        }
                    }
                },
            }
        }
        Interval {
            lo: tighter_lo(&self.lo, &other.lo),
            hi: tighter_hi(&self.hi, &other.hi),
        }
    }

    /// Whether `self ⊆ other` (every point of `self` lies in `other`).
    ///
    /// An empty `self` is a subset of everything.
    pub fn is_subset(&self, other: &Interval<T>) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok = match (other.lo.as_ref(), self.lo.as_ref()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((ol, oi)), Some((sl, si))) => match ol.cmp_dom(sl) {
                Ordering::Less => true,
                Ordering::Equal => oi || !si,
                Ordering::Greater => false,
            },
        };
        let hi_ok = match (other.hi.as_ref(), self.hi.as_ref()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((oh, oi)), Some((sh, si))) => match oh.cmp_dom(sh) {
                Ordering::Greater => true,
                Ordering::Equal => oi || !si,
                Ordering::Less => false,
            },
        };
        lo_ok && hi_ok
    }

    /// Whether the two intervals share at least one point.
    pub fn overlaps(&self, other: &Interval<T>) -> bool {
        !self.intersect(other).is_empty()
    }
}

impl Interval<f64> {
    /// The interval's effective endpoints in the `total_cmp` order:
    /// unbounded sides map to [`TotalF64::MIN`] / [`TotalF64::MAX`].
    ///
    /// Bound exclusivity is deliberately dropped: for any relation the
    /// index cares about (containment either way, overlap), comparing
    /// effective endpoints with the *inclusive* variant of the relevant
    /// inequality yields a superset of the qualifying intervals, so a
    /// range scan over endpoint-ordered maps can prune and the exact
    /// [`NumConstraint`] relations re-verify the survivors.
    pub fn total_endpoints(&self) -> (TotalF64, TotalF64) {
        let lo = match &self.lo {
            Bound::Unbounded => TotalF64::MIN,
            Bound::Incl(v) | Bound::Excl(v) => TotalF64(*v),
        };
        let hi = match &self.hi {
            Bound::Unbounded => TotalF64::MAX,
            Bound::Incl(v) | Bound::Excl(v) => TotalF64(*v),
        };
        (lo, hi)
    }
}

/// `f64` with a total order, for use in ordered sets of excluded points
/// and as the endpoint key of the index's ordered interval maps.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// Smallest value in the `total_cmp` order (the negative NaN with
    /// maximal payload): the effective endpoint of intervals unbounded
    /// below.
    pub const MIN: TotalF64 = TotalF64(f64::from_bits(u64::MAX));
    /// Largest value in the `total_cmp` order: the effective endpoint
    /// of intervals unbounded above.
    pub const MAX: TotalF64 = TotalF64(f64::from_bits(i64::MAX as u64));
}

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Numeric constraint: an interval minus a finite set of excluded points
/// (each `!=` predicate contributes one exclusion).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NumConstraint {
    /// Admissible interval.
    pub interval: Interval<f64>,
    /// Points excluded by `!=` predicates.
    pub excluded: BTreeSet<TotalF64>,
}

impl NumConstraint {
    fn satisfied_by(&self, v: f64) -> bool {
        self.interval.contains(&v) && !self.excluded.contains(&TotalF64(v))
    }

    fn covers(&self, other: &NumConstraint) -> bool {
        // self's interval must admit all of other's interval, and every
        // point self excludes must be unreachable under other.
        other.interval.is_subset(&self.interval)
            && self
                .excluded
                .iter()
                .all(|p| !other.interval.contains(&p.0) || other.excluded.contains(p))
    }

    fn overlaps(&self, other: &NumConstraint) -> bool {
        let ix = self.interval.intersect(&other.interval);
        if ix.is_empty() {
            return false;
        }
        // If the intersection is a single point that either side
        // excludes, it is empty. Larger intersections always retain a
        // point in the continuous domain (finite exclusions cannot
        // exhaust them).
        if let Some(p) = ix.as_point() {
            let key = TotalF64(*p);
            if self.excluded.contains(&key) || other.excluded.contains(&key) {
                return false;
            }
        }
        true
    }

    fn is_empty(&self) -> bool {
        if self.interval.is_empty() {
            return true;
        }
        if let Some(p) = self.interval.as_point() {
            if self.excluded.contains(&TotalF64(*p)) {
                return true;
            }
        }
        false
    }
}

/// String constraint: lexicographic interval (from `=`/ordering
/// predicates) plus prefix/suffix/substring conjuncts and excluded
/// strings.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StrConstraint {
    /// Lexicographic interval (equality folds to a point interval).
    pub interval: Interval<String>,
    /// Strings excluded by `!=`.
    pub excluded: BTreeSet<String>,
    /// All prefixes that must hold (conjunction).
    pub prefixes: Vec<String>,
    /// All suffixes that must hold.
    pub suffixes: Vec<String>,
    /// All substrings that must occur.
    pub contains: Vec<String>,
}

impl StrConstraint {
    fn satisfied_by(&self, s: &str) -> bool {
        self.interval.contains(&s.to_owned())
            && !self.excluded.contains(s)
            && self.prefixes.iter().all(|p| s.starts_with(p.as_str()))
            && self.suffixes.iter().all(|p| s.ends_with(p.as_str()))
            && self.contains.iter().all(|p| s.contains(p.as_str()))
    }

    fn covers(&self, other: &StrConstraint) -> bool {
        // Exact shortcut: if other admits exactly one string, test it.
        if let Some(p) = other.single_value() {
            return if other.satisfied_by(&p) {
                self.satisfied_by(&p)
            } else {
                true // other is empty; empty set is covered by anything
            };
        }
        // General conservative rules: each of self's conjuncts must be
        // implied by one of other's.
        let interval_ok =
            other.interval.is_subset(&self.interval) || self.interval == Interval::full();
        if !interval_ok {
            return false;
        }
        let prefixes_ok = self
            .prefixes
            .iter()
            .all(|p1| other.prefixes.iter().any(|p2| p2.starts_with(p1.as_str())));
        let suffixes_ok = self
            .suffixes
            .iter()
            .all(|s1| other.suffixes.iter().any(|s2| s2.ends_with(s1.as_str())));
        let contains_ok = self.contains.iter().all(|c1| {
            other.contains.iter().any(|c2| c2.contains(c1.as_str()))
                || other.prefixes.iter().any(|p| p.contains(c1.as_str()))
                || other.suffixes.iter().any(|s| s.contains(c1.as_str()))
        });
        // Every string self excludes must be unreachable under other.
        let excluded_ok = self.excluded.iter().all(|e| !other.satisfied_by(e));
        interval_ok && prefixes_ok && suffixes_ok && contains_ok && excluded_ok
    }

    fn overlaps(&self, other: &StrConstraint) -> bool {
        // Point shortcuts are exact.
        if let Some(p) = self.single_value() {
            return self.satisfied_by(&p) && other.satisfied_by(&p);
        }
        if let Some(p) = other.single_value() {
            return other.satisfied_by(&p) && self.satisfied_by(&p);
        }
        // Obvious disjointness: lexicographic intervals disjoint, or
        // incompatible prefixes.
        if !self.interval.overlaps(&other.interval) {
            return false;
        }
        for p1 in &self.prefixes {
            for p2 in &other.prefixes {
                if !p1.starts_with(p2.as_str()) && !p2.starts_with(p1.as_str()) {
                    return false;
                }
            }
        }
        true // conservative: assume an overlap exists
    }

    /// If this constraint pins the string to exactly one candidate
    /// value, returns it (the candidate may still fail the other
    /// conjuncts — callers must re-check with `satisfied_by`).
    fn single_value(&self) -> Option<String> {
        self.interval.as_point().cloned()
    }

    fn is_empty(&self) -> bool {
        if self.interval.is_empty() {
            return true;
        }
        if let Some(p) = self.single_value() {
            return !self.satisfied_by(&p);
        }
        // Prefix incompatibility makes the set provably empty.
        for (i, p1) in self.prefixes.iter().enumerate() {
            for p2 in &self.prefixes[i + 1..] {
                if !p1.starts_with(p2.as_str()) && !p2.starts_with(p1.as_str()) {
                    return true;
                }
            }
        }
        false
    }
}

/// Boolean constraint: which of `{false, true}` are admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoolConstraint {
    /// `false` admitted.
    pub allow_false: bool,
    /// `true` admitted.
    pub allow_true: bool,
}

impl Default for BoolConstraint {
    fn default() -> Self {
        BoolConstraint {
            allow_false: true,
            allow_true: true,
        }
    }
}

impl BoolConstraint {
    fn satisfied_by(&self, v: bool) -> bool {
        if v {
            self.allow_true
        } else {
            self.allow_false
        }
    }
    fn covers(&self, other: &BoolConstraint) -> bool {
        (!other.allow_true || self.allow_true) && (!other.allow_false || self.allow_false)
    }
    fn overlaps(&self, other: &BoolConstraint) -> bool {
        (self.allow_true && other.allow_true) || (self.allow_false && other.allow_false)
    }
    fn is_empty(&self) -> bool {
        !self.allow_true && !self.allow_false
    }
}

/// The normalized constraint a filter places on one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Attribute must be present; any value of any kind.
    Present,
    /// Numeric constraint.
    Num(NumConstraint),
    /// String constraint.
    Str(StrConstraint),
    /// Boolean constraint.
    Bool(BoolConstraint),
    /// Unsatisfiable (conflicting predicate kinds or empty range).
    Empty,
}

impl Constraint {
    /// Folds the predicates on a single attribute into a normalized
    /// constraint. All predicates must share the attribute; the caller
    /// (filter construction) guarantees this.
    pub fn from_predicates<'a>(preds: impl IntoIterator<Item = &'a Predicate>) -> Constraint {
        let mut c = Constraint::Present;
        for p in preds {
            c = c.and_predicate(p);
        }
        c.normalized()
    }

    /// Conjoins one more predicate onto this constraint.
    pub fn and_predicate(self, p: &Predicate) -> Constraint {
        if p.op() == Op::Any {
            return self; // presence is already required
        }
        let kind_wanted = match (p.op(), p.value().kind()) {
            (op, _) if op.is_string_op() => ValueKind::Str,
            (_, k) if k.is_numeric() => ValueKind::Float, // canonical numeric
            (_, ValueKind::Str) => ValueKind::Str,
            (_, ValueKind::Bool) => ValueKind::Bool,
            _ => unreachable!("kinds are exhaustively matched"),
        };
        match (self, kind_wanted) {
            (Constraint::Empty, _) => Constraint::Empty,
            (Constraint::Present, ValueKind::Float) => {
                Constraint::Num(NumConstraint::default()).and_predicate(p)
            }
            (Constraint::Present, ValueKind::Str) => {
                Constraint::Str(StrConstraint::default()).and_predicate(p)
            }
            (Constraint::Present, ValueKind::Bool) => {
                Constraint::Bool(BoolConstraint::default()).and_predicate(p)
            }
            (Constraint::Num(mut n), ValueKind::Float) => {
                // unwrap: kind_wanted Float implies a numeric operand
                let v = p.value().as_f64().unwrap();
                match p.op() {
                    Op::Eq => n.interval = n.interval.intersect(&Interval::point(v)),
                    Op::Neq => {
                        n.excluded.insert(TotalF64(v));
                    }
                    Op::Lt => {
                        n.interval = n
                            .interval
                            .intersect(&Interval::new(Bound::Unbounded, Bound::Excl(v)))
                    }
                    Op::Le => {
                        n.interval = n
                            .interval
                            .intersect(&Interval::new(Bound::Unbounded, Bound::Incl(v)))
                    }
                    Op::Gt => {
                        n.interval = n
                            .interval
                            .intersect(&Interval::new(Bound::Excl(v), Bound::Unbounded))
                    }
                    Op::Ge => {
                        n.interval = n
                            .interval
                            .intersect(&Interval::new(Bound::Incl(v), Bound::Unbounded))
                    }
                    _ => return Constraint::Empty,
                }
                Constraint::Num(n)
            }
            (Constraint::Str(mut s), ValueKind::Str) => {
                // unwrap: string operand guaranteed for string ops; Eq/Neq
                // with a string operand also lands here.
                let v = p.value().as_str().unwrap().to_owned();
                match p.op() {
                    Op::Eq => s.interval = s.interval.intersect(&Interval::point(v)),
                    Op::Neq => {
                        s.excluded.insert(v);
                    }
                    Op::Lt => {
                        s.interval = s
                            .interval
                            .intersect(&Interval::new(Bound::Unbounded, Bound::Excl(v)))
                    }
                    Op::Le => {
                        s.interval = s
                            .interval
                            .intersect(&Interval::new(Bound::Unbounded, Bound::Incl(v)))
                    }
                    Op::Gt => {
                        s.interval = s
                            .interval
                            .intersect(&Interval::new(Bound::Excl(v), Bound::Unbounded))
                    }
                    Op::Ge => {
                        s.interval = s
                            .interval
                            .intersect(&Interval::new(Bound::Incl(v), Bound::Unbounded))
                    }
                    Op::StrPrefix => s.prefixes.push(v),
                    Op::StrSuffix => s.suffixes.push(v),
                    Op::StrContains => s.contains.push(v),
                    Op::Any => unreachable!("Any handled above"),
                }
                Constraint::Str(s)
            }
            (Constraint::Bool(mut b), ValueKind::Bool) => {
                // unwrap: bool operand guaranteed by kind_wanted
                let v = p.value().as_bool().unwrap();
                match p.op() {
                    Op::Eq => {
                        if v {
                            b.allow_false = false;
                        } else {
                            b.allow_true = false;
                        }
                    }
                    Op::Neq => {
                        if v {
                            b.allow_true = false;
                        } else {
                            b.allow_false = false;
                        }
                    }
                    // Orderings on bools: false < true.
                    Op::Lt => {
                        b.allow_true = false;
                        if !v {
                            b.allow_false = false;
                        }
                    }
                    Op::Le => {
                        if !v {
                            b.allow_true = false;
                        }
                    }
                    Op::Gt => {
                        b.allow_false = false;
                        if v {
                            b.allow_true = false;
                        }
                    }
                    Op::Ge => {
                        if v {
                            b.allow_false = false;
                        }
                    }
                    _ => return Constraint::Empty,
                }
                Constraint::Bool(b)
            }
            // Kind conflict: x = 3 AND x = "a" admits nothing.
            _ => Constraint::Empty,
        }
    }

    /// Collapses provably-empty constraints to [`Constraint::Empty`].
    pub fn normalized(self) -> Constraint {
        let empty = match &self {
            Constraint::Num(n) => n.is_empty(),
            Constraint::Str(s) => s.is_empty(),
            Constraint::Bool(b) => b.is_empty(),
            _ => false,
        };
        if empty {
            Constraint::Empty
        } else {
            self
        }
    }

    /// Whether `v` satisfies this constraint.
    pub fn satisfied_by(&self, v: &Value) -> bool {
        match self {
            Constraint::Present => true,
            Constraint::Empty => false,
            Constraint::Num(n) => v.as_f64().is_some_and(|x| n.satisfied_by(x)),
            Constraint::Str(s) => v.as_str().is_some_and(|x| s.satisfied_by(x)),
            Constraint::Bool(b) => v.as_bool().is_some_and(|x| b.satisfied_by(x)),
        }
    }

    /// Subsumption: every value satisfying `other` satisfies `self`.
    ///
    /// Sound (no false positives); may be incomplete for exotic string
    /// combinations — see the module docs.
    pub fn covers(&self, other: &Constraint) -> bool {
        match (self, other) {
            (_, Constraint::Empty) => true,
            (Constraint::Empty, _) => false,
            (Constraint::Present, _) => true,
            (_, Constraint::Present) => false,
            (Constraint::Num(a), Constraint::Num(b)) => a.covers(b),
            (Constraint::Str(a), Constraint::Str(b)) => a.covers(b),
            (Constraint::Bool(a), Constraint::Bool(b)) => a.covers(b),
            _ => false, // cross-kind sets are disjoint
        }
    }

    /// Overlap: some value could satisfy both.
    ///
    /// Complete (no false negatives); may over-approximate.
    pub fn overlaps(&self, other: &Constraint) -> bool {
        match (self, other) {
            (Constraint::Empty, _) | (_, Constraint::Empty) => false,
            (Constraint::Present, _) | (_, Constraint::Present) => true,
            (Constraint::Num(a), Constraint::Num(b)) => a.overlaps(b),
            (Constraint::Str(a), Constraint::Str(b)) => a.overlaps(b),
            (Constraint::Bool(a), Constraint::Bool(b)) => a.overlaps(b),
            _ => false,
        }
    }

    /// Whether the constraint is provably unsatisfiable.
    pub fn is_empty(&self) -> bool {
        matches!(self, Constraint::Empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(preds: &[Predicate]) -> Constraint {
        Constraint::from_predicates(preds)
    }

    #[test]
    fn interval_basic_containment() {
        let i = Interval::new(Bound::Incl(1.0), Bound::Excl(5.0));
        assert!(i.contains(&1.0));
        assert!(i.contains(&4.999));
        assert!(!i.contains(&5.0));
        assert!(!i.contains(&0.999));
    }

    #[test]
    fn interval_emptiness() {
        assert!(Interval::new(Bound::Incl(5.0), Bound::Incl(1.0)).is_empty());
        assert!(Interval::new(Bound::Incl(5.0), Bound::Excl(5.0)).is_empty());
        assert!(!Interval::new(Bound::Incl(5.0), Bound::Incl(5.0)).is_empty());
        assert!(!Interval::<f64>::full().is_empty());
    }

    #[test]
    fn interval_subset() {
        let small = Interval::new(Bound::Incl(2.0), Bound::Incl(3.0));
        let big = Interval::new(Bound::Incl(1.0), Bound::Incl(4.0));
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.is_subset(&small));
        // Open vs closed at the same endpoint:
        let open = Interval::new(Bound::Excl(1.0), Bound::Incl(4.0));
        assert!(open.is_subset(&big));
        assert!(!big.is_subset(&open));
        // Everything is a subset of full.
        assert!(big.is_subset(&Interval::full()));
    }

    #[test]
    fn interval_intersection() {
        let a = Interval::new(Bound::Incl(1.0), Bound::Incl(5.0));
        let b = Interval::new(Bound::Incl(3.0), Bound::Incl(8.0));
        let ix = a.intersect(&b);
        assert!(ix.contains(&3.0) && ix.contains(&5.0));
        assert!(!ix.contains(&2.9) && !ix.contains(&5.1));
        // Disjoint:
        let c = Interval::new(Bound::Incl(6.0), Bound::Incl(8.0));
        assert!(a.intersect(&c).is_empty());
        // Touching endpoints, one open:
        let d = Interval::new(Bound::Excl(5.0), Bound::Incl(9.0));
        assert!(a.intersect(&d).is_empty());
        let e = Interval::new(Bound::Incl(5.0), Bound::Incl(9.0));
        assert!(!a.intersect(&e).is_empty());
    }

    #[test]
    fn numeric_constraint_from_range_predicates() {
        let c = num(&[
            Predicate::new("x", Op::Ge, 10),
            Predicate::new("x", Op::Lt, 20),
        ]);
        assert!(c.satisfied_by(&Value::Int(10)));
        assert!(c.satisfied_by(&Value::Int(19)));
        assert!(!c.satisfied_by(&Value::Int(20)));
        assert!(!c.satisfied_by(&Value::Int(9)));
        assert!(!c.satisfied_by(&Value::from("10")));
    }

    #[test]
    fn contradictory_range_is_empty() {
        let c = num(&[
            Predicate::new("x", Op::Gt, 20),
            Predicate::new("x", Op::Lt, 10),
        ]);
        assert!(c.is_empty());
        let c2 = num(&[
            Predicate::new("x", Op::Eq, 5),
            Predicate::new("x", Op::Neq, 5),
        ]);
        assert!(c2.is_empty());
    }

    #[test]
    fn kind_conflict_is_empty() {
        let c = num(&[
            Predicate::new("x", Op::Eq, 3),
            Predicate::new("x", Op::Eq, "three"),
        ]);
        assert!(c.is_empty());
    }

    #[test]
    fn numeric_covering() {
        let wide = num(&[
            Predicate::new("x", Op::Ge, 0),
            Predicate::new("x", Op::Le, 100),
        ]);
        let narrow = num(&[
            Predicate::new("x", Op::Ge, 10),
            Predicate::new("x", Op::Le, 20),
        ]);
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
    }

    #[test]
    fn covering_with_exclusions() {
        // wide excludes 15; narrow [10,20] includes 15 ⇒ not covered.
        let mut wide = num(&[
            Predicate::new("x", Op::Ge, 0),
            Predicate::new("x", Op::Le, 100),
        ]);
        wide = wide.and_predicate(&Predicate::new("x", Op::Neq, 15));
        let narrow = num(&[
            Predicate::new("x", Op::Ge, 10),
            Predicate::new("x", Op::Le, 20),
        ]);
        assert!(!wide.covers(&narrow));
        // But it covers a narrow range that also excludes 15.
        let narrow2 = narrow
            .clone()
            .and_predicate(&Predicate::new("x", Op::Neq, 15));
        assert!(wide.covers(&narrow2));
        // And covers one that avoids 15 entirely.
        let away = num(&[
            Predicate::new("x", Op::Ge, 30),
            Predicate::new("x", Op::Le, 40),
        ]);
        assert!(wide.covers(&away));
    }

    #[test]
    fn numeric_overlap() {
        let a = num(&[
            Predicate::new("x", Op::Ge, 0),
            Predicate::new("x", Op::Le, 10),
        ]);
        let b = num(&[
            Predicate::new("x", Op::Ge, 10),
            Predicate::new("x", Op::Le, 20),
        ]);
        let c = num(&[Predicate::new("x", Op::Gt, 10)]);
        assert!(a.overlaps(&b)); // touch at 10
        assert!(!a.overlaps(&c)); // open at 10
        assert!(b.overlaps(&c));
    }

    #[test]
    fn single_point_overlap_respects_exclusion() {
        let a = num(&[
            Predicate::new("x", Op::Ge, 0),
            Predicate::new("x", Op::Le, 10),
        ]);
        let b = num(&[
            Predicate::new("x", Op::Ge, 10),
            Predicate::new("x", Op::Le, 20),
            Predicate::new("x", Op::Neq, 10),
        ]);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn string_equality_covering_is_exact() {
        let pre = Constraint::from_predicates(&[Predicate::new("t", Op::StrPrefix, "stock/")]);
        let point = Constraint::from_predicates(&[Predicate::new("t", Op::Eq, "stock/ibm")]);
        let other = Constraint::from_predicates(&[Predicate::new("t", Op::Eq, "news/ibm")]);
        assert!(pre.covers(&point));
        assert!(!pre.covers(&other));
        assert!(!point.covers(&pre));
    }

    #[test]
    fn string_prefix_covering() {
        let short = Constraint::from_predicates(&[Predicate::new("t", Op::StrPrefix, "a/")]);
        let long = Constraint::from_predicates(&[Predicate::new("t", Op::StrPrefix, "a/b/")]);
        assert!(short.covers(&long));
        assert!(!long.covers(&short));
    }

    #[test]
    fn string_overlap_prefix_incompatible() {
        let a = Constraint::from_predicates(&[Predicate::new("t", Op::StrPrefix, "a/")]);
        let b = Constraint::from_predicates(&[Predicate::new("t", Op::StrPrefix, "b/")]);
        assert!(!a.overlaps(&b));
        let c = Constraint::from_predicates(&[Predicate::new("t", Op::StrPrefix, "a/b")]);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn bool_constraints() {
        let t = Constraint::from_predicates(&[Predicate::new("b", Op::Eq, true)]);
        let f = Constraint::from_predicates(&[Predicate::new("b", Op::Eq, false)]);
        let any = Constraint::from_predicates(&[Predicate::any("b")]);
        assert!(t.satisfied_by(&Value::from(true)));
        assert!(!t.satisfied_by(&Value::from(false)));
        assert!(!t.overlaps(&f));
        assert!(any.covers(&t) && any.covers(&f));
        assert!(!t.covers(&any));
        let none = t
            .and_predicate(&Predicate::new("b", Op::Eq, false))
            .normalized();
        assert!(none.is_empty());
    }

    #[test]
    fn present_relations() {
        let p = Constraint::Present;
        let n = num(&[Predicate::new("x", Op::Ge, 0)]);
        assert!(p.covers(&n));
        assert!(!n.covers(&p));
        assert!(p.overlaps(&n));
        assert!(p.covers(&p) && p.overlaps(&p));
    }

    #[test]
    fn empty_relations() {
        let e = Constraint::Empty;
        let n = num(&[Predicate::new("x", Op::Ge, 0)]);
        assert!(n.covers(&e));
        assert!(!e.covers(&n));
        assert!(!e.overlaps(&n));
        assert!(!n.overlaps(&e));
        assert!(e.covers(&e));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_num_pred() -> impl Strategy<Value = Predicate> {
        (0..6u8, -50i64..50).prop_map(|(op, v)| {
            let op = match op {
                0 => Op::Eq,
                1 => Op::Neq,
                2 => Op::Lt,
                3 => Op::Le,
                4 => Op::Gt,
                _ => Op::Ge,
            };
            Predicate::new("x", op, v)
        })
    }

    fn arb_constraint() -> impl Strategy<Value = Constraint> {
        proptest::collection::vec(arb_num_pred(), 1..4)
            .prop_map(|ps| Constraint::from_predicates(&ps))
    }

    proptest! {
        /// covers soundness: if c1 covers c2 then every sample value
        /// satisfying c2 satisfies c1.
        #[test]
        fn covers_is_sound(c1 in arb_constraint(), c2 in arb_constraint(), vs in proptest::collection::vec(-60i64..60, 40)) {
            if c1.covers(&c2) {
                for v in vs {
                    let val = Value::Int(v);
                    if c2.satisfied_by(&val) {
                        prop_assert!(c1.satisfied_by(&val),
                            "c1={c1:?} claims to cover c2={c2:?} but misses {v}");
                    }
                }
            }
        }

        /// overlap completeness: if some sampled value satisfies both,
        /// overlaps must be true.
        #[test]
        fn overlap_is_complete(c1 in arb_constraint(), c2 in arb_constraint(), vs in proptest::collection::vec(-60i64..60, 40)) {
            let witness = vs.iter().any(|v| {
                let val = Value::Int(*v);
                c1.satisfied_by(&val) && c2.satisfied_by(&val)
            });
            if witness {
                prop_assert!(c1.overlaps(&c2));
            }
        }

        /// covering is reflexive and transitive on sampled constraints.
        #[test]
        fn covers_reflexive(c in arb_constraint()) {
            prop_assert!(c.covers(&c));
        }

        #[test]
        fn covers_transitive(a in arb_constraint(), b in arb_constraint(), c in arb_constraint()) {
            if a.covers(&b) && b.covers(&c) {
                prop_assert!(a.covers(&c));
            }
        }

        /// overlap is symmetric.
        #[test]
        fn overlap_symmetric(a in arb_constraint(), b in arb_constraint()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }
    }
}

#[cfg(test)]
mod string_prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_str_pred() -> impl Strategy<Value = Predicate> {
        (0..6u8, "[ab]{0,4}").prop_map(|(op, v)| {
            let op = match op {
                0 => Op::Eq,
                1 => Op::Neq,
                2 => Op::StrPrefix,
                3 => Op::StrSuffix,
                4 => Op::StrContains,
                _ => Op::Le,
            };
            Predicate::new("s", op, v)
        })
    }

    fn arb_str_constraint() -> impl Strategy<Value = Constraint> {
        proptest::collection::vec(arb_str_pred(), 1..4)
            .prop_map(|ps| Constraint::from_predicates(&ps))
    }

    /// Sample strings over the same small alphabet so witnesses exist.
    fn samples() -> Vec<Value> {
        let mut out = Vec::new();
        let alpha = ["", "a", "b", "aa", "ab", "ba", "bb", "aab", "abab", "bbaa"];
        for s in alpha {
            out.push(Value::from(s));
        }
        out
    }

    proptest! {
        /// String-constraint covering soundness: a claimed cover never
        /// misses a sampled witness.
        #[test]
        fn string_covers_is_sound(c1 in arb_str_constraint(), c2 in arb_str_constraint()) {
            if c1.covers(&c2) {
                for v in samples() {
                    if c2.satisfied_by(&v) {
                        prop_assert!(
                            c1.satisfied_by(&v),
                            "c1={c1:?} claims cover of c2={c2:?} but misses {v}"
                        );
                    }
                }
            }
        }

        /// String-constraint overlap completeness: a sampled common
        /// witness forces overlaps() to be true.
        #[test]
        fn string_overlap_is_complete(c1 in arb_str_constraint(), c2 in arb_str_constraint()) {
            let witness = samples()
                .iter()
                .any(|v| c1.satisfied_by(v) && c2.satisfied_by(v));
            if witness {
                prop_assert!(c1.overlaps(&c2), "c1={c1:?} c2={c2:?}");
            }
        }

        /// Mixed-kind constraints never cover or overlap.
        #[test]
        fn cross_kind_disjoint(sp in arb_str_pred(), n in -20i64..20) {
            let sc = Constraint::from_predicates(&[sp]);
            let nc = Constraint::from_predicates(&[Predicate::new("s", Op::Ge, n)]);
            if !sc.is_empty() && !nc.is_empty() {
                prop_assert!(!sc.overlaps(&nc));
                prop_assert!(!sc.covers(&nc));
                prop_assert!(!nc.covers(&sc));
            }
        }
    }
}
