//! Attribute-indexed *counting* match index for filter tables.
//!
//! Brokers answer four hot-path queries against large filter tables:
//!
//! - **matching**: which stored filters match a publication? (the PRT
//!   publication-forwarding test)
//! - **overlapping**: which stored filters overlap a query filter?
//!   (the SRT/PRT subscription-routing intersection test)
//! - **covering**: which stored filters cover a query filter? (the
//!   covering-quench test of the subscription/advertisement paths)
//! - **covered_by**: which stored filters does a query filter cover?
//!   (active-retraction candidates and the covering-release cascade
//!   that dominates the paper's mobility unsubscribe bursts)
//!
//! The naive implementation scans every stored filter and evaluates
//! [`Filter::matches`] / [`Filter::overlaps`] — `O(table × arity)` per
//! publication. [`MatchIndex`] implements the classic counting
//! algorithm of Siena/PADRES-style brokers instead: each filter is
//! decomposed into its per-attribute normalized [`Constraint`]s, the
//! constraints are organized in per-attribute structures, and a
//! publication is matched by **counting** how many of a filter's
//! constraints are satisfied. A filter matches iff its count equals
//! its arity. Only filters constraining attributes the publication
//! actually carries are ever touched.
//!
//! # Data layout
//!
//! Per constrained attribute ([`AttrIndex`]):
//!
//! - numeric **point** constraints (`x = c`, no exclusions) live in a
//!   hash map keyed by the *bit pattern* of the point. Under
//!   `f64::total_cmp` — the order all numeric constraints use — two
//!   floats are equal iff their bit patterns are equal, so a single
//!   hash probe with `value.to_bits()` is exact.
//! - general numeric **interval** constraints live in a `BTreeMap`
//!   keyed by their *effective lower bound* in the total order
//!   (unbounded-below maps to the total-order minimum, the negative
//!   NaN with maximal payload). A value `x` can only satisfy intervals
//!   whose lower bound is `≤ x`, so a prefix range scan enumerates a
//!   superset of the satisfied intervals; each candidate is then
//!   verified against its upper bound (and, rarely, its `!=`
//!   exclusions).
//! - string constraints pinned to a **single value** (`s = "v"`) live
//!   in a hash map keyed by that value; constraints with **prefix**
//!   conjuncts are bucketed under their first prefix, probed by
//!   enumerating every prefix of the published string. Both bucket
//!   kinds re-verify hits with [`Constraint::satisfied_by`] (the
//!   bucket key is necessary, not sufficient).
//! - `[attr] *` **presence** constraints are satisfied by any value.
//! - everything else (booleans, exotic string shapes) falls back to a
//!   per-attribute scan with exact verification — still restricted to
//!   attributes the publication carries.
//!
//! # Dual-endpoint containment structure
//!
//! Containment and overlap between a query interval `[lq, hq]` and the
//! stored intervals are two-sided endpoint conditions:
//!
//! - stored **covers** query: `lo ≤ lq` and `hi ≥ hq`
//! - stored **covered by** query: `lo ≥ lq` and `hi ≤ hq`
//! - stored **overlaps** query: `lo ≤ hq` and `hi ≥ lq`
//!
//! (inclusive comparisons on effective endpoints in the `total_cmp`
//! order; exclusivity flags and `!=` exclusions only ever *shrink* the
//! true relation, so these are prune conditions). Each [`AttrIndex`]
//! therefore keeps every numeric constraint — point or interval — in
//! two additional ordered maps: `by_lo`, keyed by the effective lower
//! endpoint, and `by_hi`, keyed by the effective upper endpoint. Each
//! query becomes a *pair of range scans*, one per endpoint map, run in
//! lock-step; whichever side exhausts first already enumerates every
//! row satisfying its half of the conjunction, so the candidate set is
//! the smaller enumeration and total work is bounded by twice the
//! smaller side (instead of a per-constraint sweep of the attribute).
//! Candidates are then verified against the authoritative
//! [`Constraint`] relation.
//!
//! # Soundness
//!
//! Every fast path is *prune + verify*: the bucket structures only
//! narrow the candidate set, and any candidate that is not exact by
//! construction is re-checked against the authoritative constraint.
//! The index therefore returns byte-for-byte the same id sets as the
//! linear scans, including for unsatisfiable filters (never returned),
//! zero-arity filters (always returned by `matching`), and the
//! conservative [`Constraint::overlaps`] over-approximation contract
//! documented in [`crate::constraint`]. The routing layer keeps the
//! linear scans alive as a differential oracle.
//!
//! # Sharding and the parallel matching stages
//!
//! The per-attribute structures are hash-partitioned into
//! [`Parallelism::shards`] shards: attribute `a` lives in shard
//! `FastHasher(a) % shards`, a pure function of the attribute name, so
//! every insert/remove/query decomposes into independent per-shard
//! operations and an attribute's entire bucket family (interval map,
//! point/prefix hashes, dual-endpoint containment trees) is always
//! co-located in exactly one shard.
//!
//! [`MatchIndex::matching_batch`] selects among three equivalent
//! stages by [`Parallelism::workers`]:
//!
//! - **0 — sequential sweep**: the single-threaded amortized sweep,
//!   the default and the differential oracle every other stage is
//!   asserted against in debug builds.
//! - **1 — inline sharded stage**: probes are scattered by owning
//!   shard, each shard emits flat per-publication hit vectors of dense
//!   *slot* ids on the caller thread, and the hits are merged in
//!   ascending shard order through a dense array countdown re-seeded
//!   per publication. No threads are ever involved.
//! - **≥ 2 — pooled stage**: the batch is split into contiguous
//!   *publication chunks* claimed off an atomic cursor by the caller
//!   and the index's persistent worker pool (lazily started, parked on
//!   a channel between batches, shared by clones). Chunks are matched
//!   *publication-major* against an immutable [`PackedAttr`] snapshot
//!   of the numeric tables (rebuilt lazily when the index has mutated,
//!   shared by all workers): per probe, both endpoint-sorted arrays
//!   are binary-searched and only the **smaller** qualifying prefix is
//!   scanned, each visited row costing one comparison and, on a hit,
//!   one decrement of a per-publication count-grid block that stays
//!   cache-hot because all of a publication's probes bump the same
//!   block. Completed slots are staged as `u32` ranks and mapped back
//!   to keys already in sorted order, so there is no per-batch probe
//!   sort, no admission/retirement state, no serial scatter or merge
//!   section — and no key-comparison sort of the result rows. Chunk
//!   results are stitched back in batch order.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::{Hash, Hasher as _};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::fasthash::{FastHasher, FastMap};
use crate::pool::{MatchScratch, PoolStats, WorkerPool};

use crate::constraint::{Bound, Constraint, Interval, TotalF64};
use crate::filter::Filter;
use crate::publication::Publication;
use crate::value::Value;

/// Key types a [`MatchIndex`] can index filters under (`AdvId`,
/// `SubId`, …).
pub trait IndexKey: Copy + Ord + Eq + Hash + Debug {}
impl<T: Copy + Ord + Eq + Hash + Debug> IndexKey for T {}

/// One general numeric interval constraint, denormalized for cheap
/// verification during the prefix scan. The lower bound is the bucket
/// key it is stored under.
#[derive(Debug, Clone)]
struct NumRow<K> {
    key: K,
    /// The key's dense slot id (see [`SlotTable`]), carried inline so
    /// the batch paths can emit slots without a per-hit map lookup.
    slot: u32,
    /// Lower bound is exclusive (`x > lo` rather than `x ≥ lo`).
    lo_excl: bool,
    /// Effective upper bound in the total order.
    hi: f64,
    /// Upper bound is exclusive.
    hi_excl: bool,
    /// The constraint carries `!=` exclusions; hits must be re-checked
    /// against the authoritative constraint.
    has_exclusions: bool,
}

/// Where a constraint lives inside an [`AttrIndex`]. Classification is
/// a pure function of the constraint, so insert and remove agree.
enum Bucket {
    Present,
    NumEq(u64),
    NumRange {
        lo: TotalF64,
        lo_excl: bool,
        hi: f64,
        hi_excl: bool,
        has_exclusions: bool,
    },
    StrEq(String, bool),
    StrPre(String, bool),
    Other,
}

fn classify(c: &Constraint) -> Bucket {
    match c {
        Constraint::Present => Bucket::Present,
        Constraint::Num(n) => {
            if n.excluded.is_empty() {
                if let Some(p) = n.interval.as_point() {
                    return Bucket::NumEq(p.to_bits());
                }
            }
            let (lo, lo_excl) = match n.interval.lo() {
                Bound::Unbounded => (TotalF64::MIN.0, false),
                Bound::Incl(v) => (*v, false),
                Bound::Excl(v) => (*v, true),
            };
            let (hi, hi_excl) = match n.interval.hi() {
                Bound::Unbounded => (TotalF64::MAX.0, false),
                Bound::Incl(v) => (*v, false),
                Bound::Excl(v) => (*v, true),
            };
            Bucket::NumRange {
                lo: TotalF64(lo),
                lo_excl,
                hi,
                hi_excl,
                has_exclusions: !n.excluded.is_empty(),
            }
        }
        Constraint::Str(s) => {
            // `exact`: reaching the bucket already proves satisfaction,
            // so probes may bump without consulting the authoritative
            // constraint (the data-local trick of `NumRow`).
            let plain = s.excluded.is_empty() && s.suffixes.is_empty() && s.contains.is_empty();
            if let Some(p) = s.interval.as_point() {
                Bucket::StrEq(p.clone(), plain && s.prefixes.is_empty())
            } else if let Some(p) = s.prefixes.first() {
                let exact = plain && s.prefixes.len() == 1 && s.interval == Interval::full();
                Bucket::StrPre(p.clone(), exact)
            } else {
                Bucket::Other
            }
        }
        Constraint::Bool(_) => Bucket::Other,
        // Unsatisfiable filters are kept out of the attribute indexes
        // entirely (MatchIndex::insert).
        Constraint::Empty => unreachable!("empty constraints are not indexed"),
    }
}

/// Effective total-order endpoints of a numeric bucket (point
/// constraints are the degenerate interval `[p, p]`); `None` for
/// non-numeric buckets.
fn num_endpoints(bucket: &Bucket) -> Option<(TotalF64, TotalF64)> {
    match bucket {
        Bucket::NumEq(bits) => {
            let p = TotalF64(f64::from_bits(*bits));
            Some((p, p))
        }
        Bucket::NumRange { lo, hi, .. } => Some((*lo, TotalF64(*hi))),
        _ => None,
    }
}

/// One string-bucket row. `exact` means a probe that reaches the
/// bucket (equal string / matching prefix) is already known satisfied,
/// so the hot matching paths skip the per-key constraint lookup.
#[derive(Debug, Clone)]
struct StrRow<K> {
    key: K,
    /// The key's dense slot id (see [`SlotTable`]).
    slot: u32,
    exact: bool,
}

/// One row of the dual-endpoint containment structure. The stored
/// interval travels with the key so that containment/overlap
/// verification is data-local (no tree lookup per candidate); rows
/// whose constraint carries `!=` exclusions defer to the authoritative
/// constraint instead, because exclusions can flip the exact relation
/// at interval boundaries.
#[derive(Debug, Clone)]
struct EndRow<K> {
    key: K,
    interval: Interval<f64>,
    has_exclusions: bool,
}

fn drop_from_bucket<Q: Eq + Hash, K: PartialEq>(
    map: &mut FastMap<Q, Vec<(K, u32)>>,
    bucket: &Q,
    key: &K,
) {
    if let Some(keys) = map.get_mut(bucket) {
        keys.retain(|(k, _)| k != key);
        if keys.is_empty() {
            map.remove(bucket);
        }
    }
}

fn drop_str_row<K: PartialEq>(map: &mut FastMap<String, Vec<StrRow<K>>>, bucket: &str, key: &K) {
    if let Some(rows) = map.get_mut(bucket) {
        rows.retain(|r| r.key != *key);
        if rows.is_empty() {
            map.remove(bucket);
        }
    }
}

fn drop_from_tree<K: PartialEq>(
    map: &mut BTreeMap<TotalF64, Vec<EndRow<K>>>,
    at: TotalF64,
    key: &K,
) {
    if let Some(rows) = map.get_mut(&at) {
        rows.retain(|r| r.key != *key);
        if rows.is_empty() {
            map.remove(&at);
        }
    }
}

/// Runs two candidate enumerations in lock-step and returns whichever
/// exhausts first.
///
/// Both iterators enumerate (from opposite endpoint maps) a superset of
/// the same target set, so either one alone is a valid candidate set;
/// racing them bounds the work by twice the *smaller* enumeration
/// without knowing in advance which side is more selective.
fn min_side<K>(mut a: impl Iterator<Item = K>, mut b: impl Iterator<Item = K>) -> Vec<K> {
    let mut av = Vec::new();
    let mut bv = Vec::new();
    loop {
        match a.next() {
            Some(k) => av.push(k),
            None => return av,
        }
        match b.next() {
            Some(k) => bv.push(k),
            None => return bv,
        }
    }
}

/// The per-attribute constraint structures; see the module docs for
/// the layout.
#[derive(Debug, Clone)]
struct AttrIndex<K> {
    /// Authoritative constraint per key, also used for the overlap
    /// disqualification scan (sorted so results come out ordered).
    cons: BTreeMap<K, Constraint>,
    num_eq: FastMap<u64, Vec<(K, u32)>>,
    num_lo: BTreeMap<TotalF64, Vec<NumRow<K>>>,
    /// Every numeric constraint (points included), keyed by its
    /// effective lower endpoint: one half of the dual-endpoint
    /// containment structure (module docs).
    by_lo: BTreeMap<TotalF64, Vec<EndRow<K>>>,
    /// The same rows keyed by their effective upper endpoint.
    by_hi: BTreeMap<TotalF64, Vec<EndRow<K>>>,
    str_eq: FastMap<String, Vec<StrRow<K>>>,
    str_pre: FastMap<String, Vec<StrRow<K>>>,
    present: Vec<(K, u32)>,
    other: Vec<(K, u32)>,
}

impl<K: IndexKey> AttrIndex<K> {
    fn new() -> Self {
        AttrIndex {
            cons: BTreeMap::new(),
            num_eq: FastMap::default(),
            num_lo: BTreeMap::new(),
            by_lo: BTreeMap::new(),
            by_hi: BTreeMap::new(),
            str_eq: FastMap::default(),
            str_pre: FastMap::default(),
            present: Vec::new(),
            other: Vec::new(),
        }
    }

    fn insert(&mut self, key: K, slot: u32, c: &Constraint) {
        self.cons.insert(key, c.clone());
        let bucket = classify(c);
        if let (Some((lo, hi)), Constraint::Num(n)) = (num_endpoints(&bucket), c) {
            let row = EndRow {
                key,
                interval: n.interval.clone(),
                has_exclusions: !n.excluded.is_empty(),
            };
            self.by_lo.entry(lo).or_default().push(row.clone());
            self.by_hi.entry(hi).or_default().push(row);
        }
        match bucket {
            Bucket::Present => self.present.push((key, slot)),
            Bucket::NumEq(bits) => self.num_eq.entry(bits).or_default().push((key, slot)),
            Bucket::NumRange {
                lo,
                lo_excl,
                hi,
                hi_excl,
                has_exclusions,
            } => self.num_lo.entry(lo).or_default().push(NumRow {
                key,
                slot,
                lo_excl,
                hi,
                hi_excl,
                has_exclusions,
            }),
            Bucket::StrEq(s, exact) => {
                self.str_eq
                    .entry(s)
                    .or_default()
                    .push(StrRow { key, slot, exact })
            }
            Bucket::StrPre(p, exact) => {
                self.str_pre
                    .entry(p)
                    .or_default()
                    .push(StrRow { key, slot, exact })
            }
            Bucket::Other => self.other.push((key, slot)),
        }
    }

    fn remove(&mut self, key: K) {
        let Some(c) = self.cons.remove(&key) else {
            return;
        };
        let bucket = classify(&c);
        if let Some((lo, hi)) = num_endpoints(&bucket) {
            drop_from_tree(&mut self.by_lo, lo, &key);
            drop_from_tree(&mut self.by_hi, hi, &key);
        }
        match bucket {
            Bucket::Present => self.present.retain(|(k, _)| *k != key),
            Bucket::NumEq(bits) => drop_from_bucket(&mut self.num_eq, &bits, &key),
            Bucket::NumRange { lo, .. } => {
                if let Some(rows) = self.num_lo.get_mut(&lo) {
                    rows.retain(|r| r.key != key);
                    if rows.is_empty() {
                        self.num_lo.remove(&lo);
                    }
                }
            }
            Bucket::StrEq(s, _) => drop_str_row(&mut self.str_eq, &s, &key),
            Bucket::StrPre(p, _) => drop_str_row(&mut self.str_pre, &p, &key),
            Bucket::Other => self.other.retain(|(k, _)| *k != key),
        }
    }

    fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// Calls `bump(key, slot)` once for every key whose constraint on
    /// this attribute is satisfied by `value`. Exact: no false
    /// positives, no false negatives, at most one bump per key.
    fn count_satisfied(&self, value: &Value, bump: &mut impl FnMut(K, u32)) {
        if let Some(x) = value.as_f64() {
            self.num_satisfied(x, value, bump);
        } else if let Some(s) = value.as_str() {
            self.str_satisfied(s, value, bump);
        }
        self.common_satisfied(value, bump);
    }

    /// The numeric probe: the point bucket plus the prefix scan of the
    /// interval map. `x` is `value` as an f64.
    fn num_satisfied(&self, x: f64, value: &Value, bump: &mut impl FnMut(K, u32)) {
        if let Some(keys) = self.num_eq.get(&x.to_bits()) {
            for &(k, s) in keys {
                bump(k, s);
            }
        }
        for (lo, rows) in self.num_lo.range(..=TotalF64(x)) {
            for row in rows {
                if Self::num_row_hit(*lo, row, x, value, &self.cons) {
                    bump(row.key, row.slot);
                }
            }
        }
    }

    /// Whether interval `row` (stored under lower bound `lo`) is
    /// satisfied by `x`, given `lo ≤ x` already holds. Shared verify
    /// step of the single-probe scan and the batch sweep.
    fn num_row_hit(
        lo: TotalF64,
        row: &NumRow<K>,
        x: f64,
        value: &Value,
        cons: &BTreeMap<K, Constraint>,
    ) -> bool {
        if row.lo_excl && lo.0.total_cmp(&x) == Ordering::Equal {
            return false;
        }
        match x.total_cmp(&row.hi) {
            Ordering::Greater => return false,
            Ordering::Equal if row.hi_excl => return false,
            _ => {}
        }
        !row.has_exclusions || cons[&row.key].satisfied_by(value)
    }

    /// The numeric probes of a *batch*, `probes` sorted ascending by
    /// `f64::total_cmp`. Equivalent to calling [`AttrIndex::num_satisfied`]
    /// once per probe, but the interval map is swept exactly once:
    /// rows enter an active set when the ascending frontier passes
    /// their lower bound and retire permanently once it passes their
    /// upper bound, so each probe pays for its *stabbing set* instead
    /// of the full `lo ≤ x` prefix.
    fn num_satisfied_batch(
        &self,
        probes: &[(usize, f64, &Value)],
        bump: &mut impl FnMut(usize, K, u32),
    ) {
        let mut pending = self.num_lo.iter();
        let mut next = pending.next();
        // Admitted rows are *copied* into a packed vector: the
        // per-probe scan walks contiguous denormalized entries instead
        // of chasing `&NumRow` pointers back into tree nodes, which is
        // what the sweep spends most of its time on at large tables.
        struct ActiveRow<K> {
            lo: f64,
            hi: f64,
            key: K,
            slot: u32,
            lo_excl: bool,
            hi_excl: bool,
            has_exclusions: bool,
        }
        let mut active: Vec<ActiveRow<K>> = Vec::new();
        for &(pi, x, value) in probes {
            if let Some(keys) = self.num_eq.get(&x.to_bits()) {
                for &(k, s) in keys {
                    bump(pi, k, s);
                }
            }
            while let Some((lo, rows)) = next {
                if lo.0.total_cmp(&x) == Ordering::Greater {
                    break;
                }
                active.extend(rows.iter().map(|r| ActiveRow {
                    lo: lo.0,
                    hi: r.hi,
                    key: r.key,
                    slot: r.slot,
                    lo_excl: r.lo_excl,
                    hi_excl: r.hi_excl,
                    has_exclusions: r.has_exclusions,
                }));
                next = pending.next();
            }
            let mut i = 0;
            while i < active.len() {
                let row = &active[i];
                match x.total_cmp(&row.hi) {
                    Ordering::Greater => {
                        // Later probes are ≥ x in the total order, so
                        // the row can never be satisfied again: retire.
                        active.swap_remove(i);
                        continue;
                    }
                    Ordering::Equal if row.hi_excl => {}
                    _ => {
                        if !(row.lo_excl && row.lo.total_cmp(&x) == Ordering::Equal)
                            && (!row.has_exclusions || self.cons[&row.key].satisfied_by(value))
                        {
                            bump(pi, row.key, row.slot);
                        }
                    }
                }
                i += 1;
            }
        }
    }

    /// The string probe: the point bucket plus every prefix of the
    /// published string. `exact` rows bump straight from the bucket;
    /// the rest verify against the authoritative constraint.
    fn str_satisfied(&self, s: &str, value: &Value, bump: &mut impl FnMut(K, u32)) {
        if let Some(rows) = self.str_eq.get(s) {
            for row in rows {
                if row.exact || self.cons[&row.key].satisfied_by(value) {
                    bump(row.key, row.slot);
                }
            }
        }
        if !self.str_pre.is_empty() {
            for end in 0..=s.len() {
                if !s.is_char_boundary(end) {
                    continue;
                }
                if let Some(rows) = self.str_pre.get(&s[..end]) {
                    for row in rows {
                        if row.exact || self.cons[&row.key].satisfied_by(value) {
                            bump(row.key, row.slot);
                        }
                    }
                }
            }
        }
    }

    /// The kind-independent buckets: presence constraints (satisfied
    /// by any value) and the verified fallback scan.
    fn common_satisfied(&self, value: &Value, bump: &mut impl FnMut(K, u32)) {
        for &(k, s) in &self.present {
            bump(k, s);
        }
        for &(k, s) in &self.other {
            if self.cons[&k].satisfied_by(value) {
                bump(k, s);
            }
        }
    }

    /// Numeric candidates from the dual-endpoint maps: rows whose
    /// effective endpoints pass the inclusive prune conditions
    /// `lo ≤ lo_max` and `hi ≥ hi_min` (module docs), enumerated from
    /// whichever endpoint map is more selective.
    fn num_candidates(&self, lo_max: TotalF64, hi_min: TotalF64) -> Vec<&EndRow<K>> {
        min_side(
            self.by_lo
                .range(..=lo_max)
                .flat_map(|(_, rows)| rows.iter()),
            self.by_hi.range(hi_min..).flat_map(|(_, rows)| rows.iter()),
        )
    }

    /// The flipped prune (`lo ≥ lo_min`, `hi ≤ hi_max`): candidate
    /// rows *contained in* the queried endpoint window.
    fn num_contained_candidates(&self, lo_min: TotalF64, hi_max: TotalF64) -> Vec<&EndRow<K>> {
        min_side(
            self.by_lo.range(lo_min..).flat_map(|(_, rows)| rows.iter()),
            self.by_hi
                .range(..=hi_max)
                .flat_map(|(_, rows)| rows.iter()),
        )
    }

    /// String/bool/exotic rows, verified against `check`. Booleans and
    /// exotic string shapes share the `other` bucket, so both the
    /// string and the bool query kinds sweep it; `check` is the
    /// authoritative relation and rejects cross-kind rows.
    fn non_num_verified(
        &self,
        strings: bool,
        check: &mut impl FnMut(K) -> bool,
        bump: &mut impl FnMut(K),
    ) {
        if strings {
            for rows in self.str_eq.values().chain(self.str_pre.values()) {
                for row in rows {
                    if check(row.key) {
                        bump(row.key);
                    }
                }
            }
        }
        for &(k, _) in &self.other {
            if check(k) {
                bump(k);
            }
        }
    }

    /// Calls `bump(key)` once per key whose constraint on this
    /// attribute covers `qc`. Exact per [`Constraint::covers`].
    fn count_covering(&self, qc: &Constraint, bump: &mut impl FnMut(K)) {
        // A presence constraint covers every satisfiable constraint.
        for &(k, _) in &self.present {
            bump(k);
        }
        let mut check = |k: K| self.cons[&k].covers(qc);
        match qc {
            // Only `Present` covers `Present` (already bumped above).
            Constraint::Present => {}
            Constraint::Num(n) => {
                let (ql, qh) = n.interval.total_endpoints();
                for r in self.num_candidates(ql, qh) {
                    // Exclusion-free stored rows verify from the row
                    // itself: covering is pure interval containment
                    // (stored exclusions are what make `covers` more
                    // than that, and the query's own exclusions never
                    // weaken it).
                    let hit = if r.has_exclusions {
                        check(r.key)
                    } else {
                        n.interval.is_subset(&r.interval)
                    };
                    if hit {
                        bump(r.key);
                    }
                }
            }
            Constraint::Str(_) => self.non_num_verified(true, &mut check, bump),
            Constraint::Bool(_) => self.non_num_verified(false, &mut check, bump),
            // Satisfiable query filters never carry empty constraints.
            Constraint::Empty => unreachable!("empty constraints are not queried"),
        }
    }

    /// Calls `bump(key)` once per key whose constraint on this
    /// attribute is covered by `qc`. Exact per [`Constraint::covers`].
    fn count_covered_by(&self, qc: &Constraint, bump: &mut impl FnMut(K)) {
        let mut check = |k: K| qc.covers(&self.cons[&k]);
        match qc {
            // `Present` covers every stored constraint on the attribute.
            Constraint::Present => {
                for &k in self.cons.keys() {
                    bump(k);
                }
            }
            Constraint::Num(n) => {
                let (ql, qh) = n.interval.total_endpoints();
                // An exclusion-free *query* covers exactly the rows
                // whose interval it contains (stored exclusions only
                // shrink the row); with query exclusions the boundary
                // cases need the authoritative constraint.
                let q_clean = n.excluded.is_empty();
                for r in self.num_contained_candidates(ql, qh) {
                    let hit = if q_clean {
                        r.interval.is_subset(&n.interval)
                    } else {
                        check(r.key)
                    };
                    if hit {
                        bump(r.key);
                    }
                }
            }
            Constraint::Str(_) => self.non_num_verified(true, &mut check, bump),
            Constraint::Bool(_) => self.non_num_verified(false, &mut check, bump),
            Constraint::Empty => unreachable!("empty constraints are not queried"),
        }
    }

    /// Keys whose constraint on this attribute overlaps `qc`, sorted.
    /// Exact per [`Constraint::overlaps`] (including its conservative
    /// over-approximation for exotic string shapes).
    fn overlap_qualified(&self, qc: &Constraint) -> Vec<K> {
        // Presence overlaps everything, in both directions.
        if matches!(qc, Constraint::Present) {
            return self.cons.keys().copied().collect();
        }
        let mut out: Vec<K> = self.present.iter().map(|&(k, _)| k).collect();
        let mut check = |k: K| self.cons[&k].overlaps(qc);
        let mut push = |k: K| out.push(k);
        match qc {
            Constraint::Num(n) => {
                let (ql, qh) = n.interval.total_endpoints();
                // Without exclusions on either side, constraint
                // overlap is exactly interval overlap; a point-sized
                // intersection that an exclusion deletes is the one
                // case needing the authoritative relation.
                let q_clean = n.excluded.is_empty();
                for r in self.num_candidates(qh, ql) {
                    let hit = if q_clean && !r.has_exclusions {
                        r.interval.overlaps(&n.interval)
                    } else {
                        check(r.key)
                    };
                    if hit {
                        push(r.key);
                    }
                }
            }
            Constraint::Str(_) => self.non_num_verified(true, &mut check, &mut push),
            Constraint::Bool(_) => self.non_num_verified(false, &mut check, &mut push),
            Constraint::Present => unreachable!("handled above"),
            Constraint::Empty => unreachable!("empty constraints are not queried"),
        }
        out.sort_unstable();
        out
    }
}

/// Sharding and worker-pool configuration for a [`MatchIndex`] (and,
/// via the broker config, for every `Srt`/`Prt` in a deployment).
///
/// `shards` is the number of hash partitions of the attribute space
/// (at least 1); `workers` selects the batch-matching stage:
///
/// - `workers == 0` — the sequential amortized sweep (the default and
///   the differential oracle);
/// - `workers == 1` — the sharded stage inline on the caller thread:
///   no threads are ever spawned and the index's worker pool stays
///   untouched (pinned by regression tests against
///   [`MatchIndex::pool_stats`]);
/// - `workers ≥ 2` — the pooled stage: the batch is split into up to
///   `workers` publication chunks matched on the index's persistent
///   worker pool (lazily started on the first such batch, then reused
///   for every batch after; clones of an index share one pool). The
///   fan-out is bounded by the batch's publication count and by the
///   machine's available parallelism — never silently clamped by the
///   shard count, so `workers = 4` with one shard still engages
///   four-way matching on a 4-core box. (The seeded test entry point
///   bypasses the hardware clamp so schedule tests exercise real
///   threads anywhere.)
///
/// Sharding alone (workers = 0) changes the physical layout but never
/// the answers, and every stage returns byte-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Hash-partition count for the per-attribute structures (≥ 1).
    pub shards: usize,
    /// Worker threads for [`MatchIndex::matching_batch`]; 0 means the
    /// sequential sweep.
    pub workers: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            shards: 1,
            workers: 0,
        }
    }
}

impl Parallelism {
    /// One shard, no workers: the classic single-threaded index.
    pub fn sequential() -> Self {
        Parallelism::default()
    }

    /// `shards` hash partitions matched by a pool of `workers` threads.
    pub fn sharded(shards: usize, workers: usize) -> Self {
        Parallelism {
            shards: shards.max(1),
            workers,
        }
    }

    fn normalized(self) -> Self {
        Parallelism {
            shards: self.shards.max(1),
            workers: self.workers,
        }
    }
}

/// Cell budget of the pooled stage's per-worker count grid
/// (`cells × 2` bytes): sub-chunks are sized so the grid allocation
/// stays bounded for very large tables. The probes are stateless, so
/// this is a pure memory cap — only one publication's `nslots`-cell
/// block is ever hot at a time regardless of the budget.
const GRID_CELL_BUDGET: usize = 1 << 22;

/// The shard an attribute belongs to: a pure function of the attribute
/// name (and the shard count), so insert, remove, and every query
/// agree on the owning shard without coordination, and an attribute's
/// entire bucket family is always co-located.
fn shard_of_in(nshards: usize, attr: &str) -> usize {
    if nshards <= 1 {
        return 0;
    }
    let mut h = FastHasher::default();
    h.write(attr.as_bytes());
    (h.finish() % nshards as u64) as usize
}

/// One hash partition of the attribute space: the attribute structures
/// whose names hash to this shard.
#[derive(Debug, Clone)]
struct Shard<K> {
    attrs: FastMap<String, AttrIndex<K>>,
}

impl<K: IndexKey> Shard<K> {
    fn new() -> Self {
        Shard {
            attrs: FastMap::default(),
        }
    }

    /// Probes this shard's attribute structures with its share of the
    /// batch (`probes` regrouped by attribute, numeric probes to be
    /// sorted here) and returns one flat slot-id hit vector per
    /// publication. Pure read — this is the unit of work the parallel
    /// stage hands to a worker thread.
    fn probe_batch(
        &self,
        probes: &FastMap<&str, Vec<(usize, &Value)>>,
        npubs: usize,
    ) -> Vec<Vec<u32>> {
        let mut hits: Vec<Vec<u32>> = vec![Vec::new(); npubs];
        let mut nums: Vec<(usize, f64, &Value)> = Vec::new();
        for (attr, probes) in probes {
            let ai = &self.attrs[*attr];
            nums.clear();
            for &(pi, value) in probes {
                if let Some(x) = value.as_f64() {
                    nums.push((pi, x, value));
                } else if let Some(s) = value.as_str() {
                    let h = &mut hits[pi];
                    ai.str_satisfied(s, value, &mut |_, slot| h.push(slot));
                }
                let h = &mut hits[pi];
                ai.common_satisfied(value, &mut |_, slot| h.push(slot));
            }
            nums.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
            ai.num_satisfied_batch(&nums, &mut |pi, _, slot| hits[pi].push(slot));
        }
        hits
    }
}

/// Dense slot ids for the satisfiable, arity ≥ 1 keys.
///
/// Every such key gets a small stable `u32` id carried inline in the
/// attribute rows; the parallel merge counts arities down in flat
/// arrays indexed by slot (no hashing per hit) and maps a completed
/// slot back to its key through `keys`. Freed slots are recycled;
/// `keys`/`arity` entries of freed slots are stale but unreachable
/// (no live row carries the slot).
#[derive(Debug, Clone)]
struct SlotTable<K> {
    of: FastMap<K, u32>,
    keys: Vec<K>,
    arity: Vec<u32>,
    free: Vec<u32>,
}

impl<K: IndexKey> SlotTable<K> {
    fn new() -> Self {
        SlotTable {
            of: FastMap::default(),
            keys: Vec::new(),
            arity: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, key: K, arity: usize) -> u32 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.keys[s as usize] = key;
                self.arity[s as usize] = arity as u32;
                s
            }
            None => {
                self.keys.push(key);
                self.arity.push(arity as u32);
                (self.keys.len() - 1) as u32
            }
        };
        self.of.insert(key, slot);
        slot
    }

    fn release(&mut self, key: &K) {
        if let Some(slot) = self.of.remove(key) {
            self.free.push(slot);
        }
    }
}

/// Splitmix64-seeded Fisher–Yates shuffle; drives the seeded
/// interleaving smoke's job-order permutations.
fn shuffle_jobs(jobs: &mut [usize], seed: u64) {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..jobs.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        jobs.swap(i, j);
    }
}

/// Detected hardware thread count, cached for the life of the process.
///
/// The unseeded pooled stage never fans out wider than this: on a
/// host with fewer cores than configured workers, extra pool threads
/// add only handoff latency and cache thrash, never throughput. The
/// seeded test entry bypasses the clamp so interleaving tests always
/// exercise the configured fan-out with real threads.
fn hw_threads() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Bit in [`ExclRow::flags`]: the lower bound is exclusive (`>`).
const LO_EXCL: u32 = 1;
/// Bit in [`ExclRow::flags`]: the upper bound is exclusive (`<`).
const HI_EXCL: u32 = 1 << 1;

/// One exclusion-free interval row of a [`PackedAttr`] scan array.
///
/// The array's sort key — the *admission* endpoint — lives in a
/// parallel `f64` array probed by binary search, so a row carries only
/// the opposite endpoint and the min-side scan verifies each visited
/// row with a single total-order comparison.
#[derive(Debug, Clone, Copy)]
struct CleanRow {
    /// The non-admission endpoint: the upper bound in the `lo`-sorted
    /// array, the lower bound in the `hi`-sorted array.
    bound: f64,
    /// The row's dense slot id.
    slot: u32,
}

/// One boundary-exclusive interval row (`>` / `<` bounds, no `!=`
/// exclusions), carried in full because the exclusivity checks need
/// exact endpoint equality on both sides.
#[derive(Debug, Clone, Copy)]
struct ExclRow {
    lo: f64,
    hi: f64,
    slot: u32,
    /// `LO_EXCL` / `HI_EXCL` bits.
    flags: u32,
}

/// One `!=`-carrying row: hits defer entirely to the inlined
/// authoritative constraint (which re-checks the interval as well), so
/// no endpoint pruning is attempted. Such rows exist only for `ne`
/// predicates and are scanned exhaustively per probe.
#[derive(Debug, Clone)]
struct VerifyRow {
    slot: u32,
    cons: Constraint,
}

/// Whether the boundary-exclusive interval `r` contains `x`.
fn excl_hit(r: &ExclRow, x: f64) -> bool {
    match r.lo.total_cmp(&x) {
        Ordering::Greater => return false,
        Ordering::Equal if r.flags & LO_EXCL != 0 => return false,
        _ => {}
    }
    match x.total_cmp(&r.hi) {
        Ordering::Greater => false,
        Ordering::Equal if r.flags & HI_EXCL != 0 => false,
        _ => true,
    }
}

/// The packed numeric probe tables of one attribute: the pooled
/// stage's replacement for the interval-map prefix scan.
///
/// A probe value `x` satisfies a clean interval row iff `lo ≤ x` *and*
/// `x ≤ hi` (total order). Rather than sweeping value-sorted probes
/// through admission/retirement state, the rows are stored twice —
/// sorted ascending by `lo` and descending by `hi` — with the sort
/// endpoints in parallel `f64` arrays. Per probe, two binary searches
/// bound the qualifying prefix of each array and only the **smaller**
/// prefix is scanned; every visited row needs just one comparison
/// against its opposite endpoint. The scan is stateless, so probes
/// need no batch-wide sorting and parallelize trivially.
#[derive(Debug, Default)]
struct PackedAttr {
    /// Lower bounds of the clean rows, ascending in the total order;
    /// parallel to `lo_rows`.
    lo_bound: Vec<f64>,
    /// Clean rows sorted ascending by lower bound; `bound` is the
    /// upper bound.
    lo_rows: Vec<CleanRow>,
    /// Upper bounds of the same rows, descending; parallel to
    /// `hi_rows`.
    hi_bound: Vec<f64>,
    /// Clean rows sorted descending by upper bound; `bound` is the
    /// lower bound.
    hi_rows: Vec<CleanRow>,
    /// Boundary-exclusive rows, ascending by lower bound.
    excl_lo: Vec<ExclRow>,
    /// The same rows, descending by upper bound.
    excl_hi: Vec<ExclRow>,
    /// `!=`-carrying rows, scanned per probe without pruning.
    verify: Vec<VerifyRow>,
}

impl PackedAttr {
    fn is_empty(&self) -> bool {
        self.lo_rows.is_empty() && self.excl_lo.is_empty() && self.verify.is_empty()
    }

    /// Derives the `hi`-sorted duals once every row has been pushed
    /// into the `lo`-sorted halves (which arrive pre-sorted from the
    /// interval map's ascending iteration).
    fn finish(&mut self) {
        let mut ix: Vec<u32> = (0..self.lo_rows.len() as u32).collect();
        ix.sort_unstable_by(|&a, &b| {
            self.lo_rows[b as usize]
                .bound
                .total_cmp(&self.lo_rows[a as usize].bound)
        });
        self.hi_bound = ix.iter().map(|&i| self.lo_rows[i as usize].bound).collect();
        self.hi_rows = ix
            .iter()
            .map(|&i| CleanRow {
                bound: self.lo_bound[i as usize],
                slot: self.lo_rows[i as usize].slot,
            })
            .collect();
        self.excl_hi = self.excl_lo.clone();
        self.excl_hi.sort_unstable_by(|a, b| b.hi.total_cmp(&a.hi));
    }

    /// Calls `bump(slot)` once for every interval row satisfied by the
    /// numeric probe `x` (of `value`). Exact — together with the point
    /// bucket and the common buckets this reproduces
    /// [`AttrIndex::num_satisfied`] bump-for-bump.
    #[inline]
    fn scan(&self, x: f64, value: &Value, bump: &mut impl FnMut(u32)) {
        let lo_cnt = self
            .lo_bound
            .partition_point(|lo| lo.total_cmp(&x) != Ordering::Greater);
        let hi_cnt = self
            .hi_bound
            .partition_point(|hi| hi.total_cmp(&x) != Ordering::Less);
        if lo_cnt <= hi_cnt {
            for r in &self.lo_rows[..lo_cnt] {
                if x.total_cmp(&r.bound) != Ordering::Greater {
                    bump(r.slot);
                }
            }
        } else {
            for r in &self.hi_rows[..hi_cnt] {
                if r.bound.total_cmp(&x) != Ordering::Greater {
                    bump(r.slot);
                }
            }
        }
        if !self.excl_lo.is_empty() {
            let el = self
                .excl_lo
                .partition_point(|r| r.lo.total_cmp(&x) != Ordering::Greater);
            let eh = self
                .excl_hi
                .partition_point(|r| r.hi.total_cmp(&x) != Ordering::Less);
            let side = if el <= eh {
                &self.excl_lo[..el]
            } else {
                &self.excl_hi[..eh]
            };
            for r in side {
                if excl_hit(r, x) {
                    bump(r.slot);
                }
            }
        }
        for v in &self.verify {
            if v.cons.satisfied_by(value) {
                bump(v.slot);
            }
        }
    }
}

/// An immutable probe-side snapshot shared by every pool worker: the
/// packed numeric tables of each attribute plus the key *rank* order.
///
/// Rebuilt lazily — [`MatchIndex::packed`] compares the snapshot's
/// `version` stamp against the index's mutation counter and rebuilds
/// on the first pooled batch after any insert/remove, so steady-state
/// batches pay nothing. Clones of an index share the current snapshot
/// (it is immutable), and each clone's own mutations simply fork a new
/// one.
///
/// The rank order turns result-row sorting into `u32` sorting: the
/// pooled stage stages each publication's completed slots as ranks,
/// sorts those, and maps them back through `key_of_rank`, which yields
/// keys already in ascending order.
#[derive(Debug)]
struct PackedTables<K> {
    /// The index mutation count this snapshot was built at.
    version: u64,
    attrs: FastMap<String, PackedAttr>,
    /// Dense slot id → rank of the slot's key in ascending key order
    /// (`u32::MAX` for freed slots, which no live row references).
    rank_of: Vec<u32>,
    /// Rank → key: the live slot-bearing keys in ascending order.
    key_of_rank: Vec<K>,
}

/// A counting match index over `(key, Filter)` pairs.
///
/// Results are always sorted by key and identical to what the
/// corresponding linear scans produce (see the module docs for the
/// argument; the broker's routing layer additionally asserts this in
/// debug builds).
///
/// # Examples
///
/// ```
/// use transmob_pubsub::{Filter, MatchIndex, Publication};
///
/// let mut ix: MatchIndex<u32> = MatchIndex::new();
/// ix.insert(1, &Filter::builder().ge("x", 0).le("x", 10).build());
/// ix.insert(2, &Filter::builder().ge("x", 20).build());
/// let p = Publication::new().with("x", 5);
/// assert_eq!(ix.matching(&p), vec![1]);
/// ```
#[derive(Debug)]
pub struct MatchIndex<K> {
    /// Every indexed filter, satisfiable or not.
    filters: FastMap<K, Filter>,
    /// Constraint count per satisfiable key.
    arity: FastMap<K, usize>,
    /// Satisfiable keys, sorted (overlap candidates).
    sat: BTreeSet<K>,
    /// Satisfiable keys with no constraints: they match everything.
    zero: BTreeSet<K>,
    /// Unsatisfiable keys: they match and overlap nothing.
    unsat: BTreeSet<K>,
    /// The hash-partitioned attribute structures; always ≥ 1 shard.
    shards: Vec<Shard<K>>,
    /// Dense slot ids for the parallel merge (module docs).
    slots: SlotTable<K>,
    par: Parallelism,
    /// Monotone upper bound on any indexed filter's arity; the pooled
    /// stage's `u16` count grid is only used while this fits `u16`
    /// (beyond that — absurd 65k-conjunct filters — the stage falls
    /// back to the inline path rather than risk count wraparound).
    max_arity: usize,
    /// Mutation counter: bumped by every insert/remove, compared
    /// against [`PackedTables::version`] to invalidate the snapshot.
    version: u64,
    /// The lazily (re)built probe-side snapshot of the pooled stage.
    /// Interior mutability keeps `matching_batch` `&self`; clones
    /// carry the current snapshot over (it is immutable and `Arc`d).
    packed: Mutex<Option<Arc<PackedTables<K>>>>,
    /// The persistent worker pool of the `workers ≥ 2` matching stage;
    /// no threads exist until the first pooled batch. Clones share the
    /// pool (an index clone is a routing-table snapshot, not a new
    /// deployment), so snapshots never multiply threads.
    pool: Arc<WorkerPool>,
}

impl<K: IndexKey> Clone for MatchIndex<K> {
    fn clone(&self) -> Self {
        MatchIndex {
            filters: self.filters.clone(),
            arity: self.arity.clone(),
            sat: self.sat.clone(),
            zero: self.zero.clone(),
            unsat: self.unsat.clone(),
            shards: self.shards.clone(),
            slots: self.slots.clone(),
            par: self.par,
            max_arity: self.max_arity,
            version: self.version,
            packed: Mutex::new(
                self.packed
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .clone(),
            ),
            pool: Arc::clone(&self.pool),
        }
    }
}

impl<K: IndexKey> Default for MatchIndex<K> {
    fn default() -> Self {
        MatchIndex {
            filters: FastMap::default(),
            arity: FastMap::default(),
            sat: BTreeSet::new(),
            zero: BTreeSet::new(),
            unsat: BTreeSet::new(),
            shards: vec![Shard::new()],
            slots: SlotTable::new(),
            par: Parallelism::default(),
            max_arity: 0,
            version: 0,
            packed: Mutex::new(None),
            pool: Arc::new(WorkerPool::new()),
        }
    }
}

impl<K: IndexKey> MatchIndex<K> {
    /// Creates an empty index (one shard, sequential matching).
    pub fn new() -> Self {
        MatchIndex::default()
    }

    /// Creates an empty index with the given sharding configuration.
    pub fn with_parallelism(par: Parallelism) -> Self {
        let mut ix = MatchIndex::default();
        ix.set_parallelism(par);
        ix
    }

    /// The current sharding configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.par
    }

    /// Reconfigures sharding. Changing the shard count redistributes
    /// every attribute structure to its new owning shard (a rebuild of
    /// the per-attribute buckets from the authoritative filters; slot
    /// assignments survive); answers are identical before and after.
    pub fn set_parallelism(&mut self, par: Parallelism) {
        let par = par.normalized();
        if par.shards != self.shards.len() {
            let mut shards: Vec<Shard<K>> = (0..par.shards).map(|_| Shard::new()).collect();
            for (key, filter) in &self.filters {
                if self.unsat.contains(key) || self.zero.contains(key) {
                    continue;
                }
                let slot = self.slots.of[key];
                for (attr, c) in filter.constraints() {
                    shards[shard_of_in(par.shards, attr)]
                        .attrs
                        .entry(attr.to_owned())
                        .or_insert_with(AttrIndex::new)
                        .insert(*key, slot, c);
                }
            }
            self.shards = shards;
        }
        self.par = par;
    }

    /// The attribute structure owning `attr`, if any constraint on
    /// `attr` is indexed.
    fn attr_index(&self, attr: &str) -> Option<&AttrIndex<K>> {
        self.shards[shard_of_in(self.shards.len(), attr)]
            .attrs
            .get(attr)
    }

    /// Whether any attribute structure exists at all.
    fn has_attr_rows(&self) -> bool {
        self.shards.iter().any(|s| !s.attrs.is_empty())
    }

    /// Number of indexed filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The filter indexed under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&Filter> {
        self.filters.get(key)
    }

    /// Indexes `filter` under `key`. Replaces any previous filter for
    /// the key (upsert semantics).
    pub fn insert(&mut self, key: K, filter: &Filter) {
        self.remove(&key);
        self.version = self.version.wrapping_add(1);
        self.filters.insert(key, filter.clone());
        if !filter.is_satisfiable() {
            self.unsat.insert(key);
            return;
        }
        self.sat.insert(key);
        self.arity.insert(key, filter.arity());
        self.max_arity = self.max_arity.max(filter.arity());
        if filter.arity() == 0 {
            self.zero.insert(key);
            return;
        }
        let slot = self.slots.alloc(key, filter.arity());
        let nshards = self.shards.len();
        for (attr, c) in filter.constraints() {
            self.shards[shard_of_in(nshards, attr)]
                .attrs
                .entry(attr.to_owned())
                .or_insert_with(AttrIndex::new)
                .insert(key, slot, c);
        }
    }

    /// Removes the filter indexed under `key`, reporting whether one
    /// was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(filter) = self.filters.remove(key) else {
            return false;
        };
        self.version = self.version.wrapping_add(1);
        if self.unsat.remove(key) {
            return true;
        }
        self.sat.remove(key);
        self.zero.remove(key);
        self.arity.remove(key);
        let nshards = self.shards.len();
        for (attr, _) in filter.constraints() {
            let shard = &mut self.shards[shard_of_in(nshards, attr)];
            if let Some(ai) = shard.attrs.get_mut(attr) {
                ai.remove(*key);
                if ai.is_empty() {
                    shard.attrs.remove(attr);
                }
            }
        }
        self.slots.release(key);
        true
    }

    /// Keys of filters matching `publication`, sorted.
    ///
    /// Touches only the attribute indexes of attributes the
    /// publication carries, counting satisfied constraints per key; a
    /// key matches iff its count reaches its filter's arity.
    pub fn matching(&self, publication: &Publication) -> Vec<K> {
        let mut out: Vec<K> = self.zero.iter().copied().collect();
        if self.has_attr_rows() {
            // Count *down* from the filter's arity and emit on zero: a
            // key can be bumped at most once per attribute, so hitting
            // zero is exactly "every constraint satisfied", and no
            // finalization sweep over the map is needed.
            let mut remaining: FastMap<K, usize> = FastMap::default();
            for (attr, value) in publication.iter() {
                if let Some(ai) = self.attr_index(attr) {
                    ai.count_satisfied(value, &mut |k, _| {
                        let r = remaining.entry(k).or_insert_with(|| self.arity[&k]);
                        *r -= 1;
                        if *r == 0 {
                            out.push(k);
                        }
                    });
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// [`MatchIndex::matching`] for every publication of a batch,
    /// returning one sorted key vector per publication (same order as
    /// `pubs`).
    ///
    /// With [`Parallelism::workers`] == 0 (the default) this is the
    /// sequential amortized sweep
    /// ([`MatchIndex::matching_batch_sequential`]); otherwise the
    /// sharded parallel stage runs and, in debug builds, is asserted
    /// identical to the sequential sweep. Either way results are
    /// identical to mapping [`MatchIndex::matching`] over the slice.
    pub fn matching_batch(&self, pubs: &[Publication]) -> Vec<Vec<K>>
    where
        K: Send + Sync,
    {
        if pubs.len() == 1 {
            // Degenerate batch: neither regrouping nor fan-out has
            // anything to amortize; take the single-probe path.
            return vec![self.matching(&pubs[0])];
        }
        if self.par.workers == 0 {
            return self.matching_batch_sequential(pubs);
        }
        let out = self.matching_batch_parallel(pubs, None);
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            out,
            self.matching_batch_sequential(pubs),
            "parallel matching diverged from the sequential sweep"
        );
        out
    }

    /// The single-threaded amortized batch sweep: the sequential
    /// fallback of [`MatchIndex::matching_batch`] and the differential
    /// oracle the parallel stage is checked against.
    ///
    /// The probes are regrouped *by attribute*: per attribute index,
    /// the batch's numeric values are sorted and the interval map is
    /// swept once for the whole batch (each row is admitted once when
    /// the ascending frontier passes its lower bound and retired once
    /// the frontier passes its upper bound), so per-probe cost drops
    /// from the `lo ≤ x` prefix size to the stabbing-set size. Point,
    /// string, presence, and fallback buckets are probed exactly as in
    /// the single-publication path. Results are identical to mapping
    /// [`MatchIndex::matching`] over the slice (asserted in debug
    /// builds).
    pub fn matching_batch_sequential(&self, pubs: &[Publication]) -> Vec<Vec<K>> {
        let mut out: Vec<Vec<K>> = pubs
            .iter()
            .map(|_| self.zero.iter().copied().collect())
            .collect();
        if self.has_attr_rows() {
            // Probing appends raw hits to per-publication lists —
            // sequential pushes, no hashing — so the regrouped sweep
            // keeps a loop-sized working set. Counting happens after,
            // one publication at a time through a single reused map
            // (the countdown scheme of `matching`).
            let mut hits: Vec<Vec<K>> = vec![Vec::new(); pubs.len()];
            // Regroup the batch by attribute so each attribute index is
            // visited once with all of its probes.
            type ProbeGroups<'a, K> = FastMap<&'a str, (&'a AttrIndex<K>, Vec<(usize, &'a Value)>)>;
            let mut by_attr: ProbeGroups<'_, K> = FastMap::default();
            for (pi, p) in pubs.iter().enumerate() {
                for (attr, value) in p.iter() {
                    if let Some(ai) = self.attr_index(attr) {
                        by_attr
                            .entry(attr)
                            .or_insert_with(|| (ai, Vec::new()))
                            .1
                            .push((pi, value));
                    }
                }
            }
            for (_, (ai, probes)) in by_attr {
                let mut nums: Vec<(usize, f64, &Value)> = Vec::new();
                for &(pi, value) in &probes {
                    if let Some(x) = value.as_f64() {
                        nums.push((pi, x, value));
                    } else if let Some(s) = value.as_str() {
                        let h = &mut hits[pi];
                        ai.str_satisfied(s, value, &mut |k, _| h.push(k));
                    }
                    let h = &mut hits[pi];
                    ai.common_satisfied(value, &mut |k, _| h.push(k));
                }
                nums.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
                ai.num_satisfied_batch(&nums, &mut |pi, k, _| hits[pi].push(k));
            }
            let mut remaining: FastMap<K, usize> = FastMap::default();
            for (pi, keys) in hits.into_iter().enumerate() {
                remaining.clear();
                for k in keys {
                    let r = remaining.entry(k).or_insert_with(|| self.arity[&k]);
                    *r -= 1;
                    if *r == 0 {
                        out[pi].push(k);
                    }
                }
            }
        }
        for keys in &mut out {
            keys.sort_unstable();
        }
        #[cfg(debug_assertions)]
        for (pi, p) in pubs.iter().enumerate() {
            debug_assert_eq!(
                out[pi],
                self.matching(p),
                "batch matching diverged from the per-publication path on probe {pi}"
            );
        }
        out
    }

    /// The parallel matching stage dispatcher (module docs):
    /// `workers == 1` runs the inline sharded stage on the caller
    /// thread, `workers ≥ 2` the pooled publication-chunked stage.
    ///
    /// `schedule_seed` permutes the work order (the interleaving smoke
    /// uses it to force different distributions); results must be —
    /// and are asserted to be — independent of it.
    fn matching_batch_parallel(
        &self,
        pubs: &[Publication],
        schedule_seed: Option<u64>,
    ) -> Vec<Vec<K>>
    where
        K: Send + Sync,
    {
        if self.par.workers >= 2 && self.max_arity <= u16::MAX as usize {
            self.matching_batch_pooled(pubs, schedule_seed)
        } else {
            self.matching_batch_inline(pubs, schedule_seed)
        }
    }

    /// The inline sharded stage (`workers == 1`): shard-by-shard on
    /// the caller thread, no threads, no pool. Retained unchanged as
    /// the mid-tier reference implementation between the sequential
    /// oracle and the pooled stage — and as the baseline the
    /// `parallel_match` scaling gate divides by.
    ///
    /// 1. *Scatter*: the batch's probes are regrouped by owning shard
    ///    (pure `shard_of` routing, no locks).
    /// 2. *Probe*: each non-empty shard produces flat per-publication
    ///    hit vectors of slot ids.
    /// 3. *Merge*: per publication, shard hit vectors are consumed in
    ///    ascending shard order and counted down in a dense array
    ///    re-seeded per publication from the arity mirror; completed
    ///    slots map back to keys and each result is sorted.
    fn matching_batch_inline(
        &self,
        pubs: &[Publication],
        schedule_seed: Option<u64>,
    ) -> Vec<Vec<K>> {
        let nshards = self.shards.len();
        let mut groups: Vec<FastMap<&str, Vec<(usize, &Value)>>> =
            (0..nshards).map(|_| FastMap::default()).collect();
        for (pi, p) in pubs.iter().enumerate() {
            for (attr, value) in p.iter() {
                let s = shard_of_in(nshards, attr);
                if self.shards[s].attrs.contains_key(attr) {
                    groups[s].entry(attr).or_default().push((pi, value));
                }
            }
        }
        let mut jobs: Vec<usize> = (0..nshards).filter(|&s| !groups[s].is_empty()).collect();
        if let Some(seed) = schedule_seed {
            shuffle_jobs(&mut jobs, seed);
        }
        let mut shard_hits: Vec<Option<Vec<Vec<u32>>>> = (0..nshards).map(|_| None).collect();
        for &s in &jobs {
            shard_hits[s] = Some(self.shards[s].probe_batch(&groups[s], pubs.len()));
        }
        // Merge, in ascending shard order, through the dense
        // countdown: one `u32` per slot, re-seeded per publication by
        // a bulk copy of the arity mirror so the hot per-hit loop
        // touches exactly one array. (Freed slots keep stale arity
        // values in the mirror, but freed slots can never be emitted
        // as hits, so the copy is harmless.)
        let mut countdown: Vec<u32> = vec![0; self.slots.keys.len()];
        let mut out: Vec<Vec<K>> = pubs
            .iter()
            .map(|_| self.zero.iter().copied().collect())
            .collect();
        for (pi, row) in out.iter_mut().enumerate() {
            countdown.copy_from_slice(&self.slots.arity);
            for hits in shard_hits.iter().flatten() {
                for &slot in &hits[pi] {
                    let s = slot as usize;
                    countdown[s] -= 1;
                    if countdown[s] == 0 {
                        row.push(self.slots.keys[s]);
                    }
                }
            }
            row.sort_unstable();
        }
        out
    }

    /// Builds the probe-side snapshot of the pooled stage from the
    /// current attribute structures (see [`PackedTables`]).
    fn build_packed(&self) -> PackedTables<K> {
        let mut attrs: FastMap<String, PackedAttr> = FastMap::default();
        for shard in &self.shards {
            for (attr, ai) in &shard.attrs {
                let mut pa = PackedAttr::default();
                for (lo, rows) in &ai.num_lo {
                    for r in rows {
                        if r.has_exclusions {
                            pa.verify.push(VerifyRow {
                                slot: r.slot,
                                cons: ai.cons[&r.key].clone(),
                            });
                        } else if r.lo_excl || r.hi_excl {
                            pa.excl_lo.push(ExclRow {
                                lo: lo.0,
                                hi: r.hi,
                                slot: r.slot,
                                flags: ((r.lo_excl as u32) * LO_EXCL)
                                    | ((r.hi_excl as u32) * HI_EXCL),
                            });
                        } else {
                            pa.lo_bound.push(lo.0);
                            pa.lo_rows.push(CleanRow {
                                bound: r.hi,
                                slot: r.slot,
                            });
                        }
                    }
                }
                if !pa.is_empty() {
                    pa.finish();
                    attrs.insert(attr.clone(), pa);
                }
            }
        }
        let mut live: Vec<(K, u32)> = self.slots.of.iter().map(|(&k, &s)| (k, s)).collect();
        live.sort_unstable_by_key(|a| a.0);
        let mut rank_of = vec![u32::MAX; self.slots.keys.len()];
        let mut key_of_rank = Vec::with_capacity(live.len());
        for (rank, &(k, s)) in live.iter().enumerate() {
            rank_of[s as usize] = rank as u32;
            key_of_rank.push(k);
        }
        PackedTables {
            version: self.version,
            attrs,
            rank_of,
            key_of_rank,
        }
    }

    /// The current probe-side snapshot, rebuilding it first if the
    /// index has mutated since the last pooled batch.
    fn packed(&self) -> Arc<PackedTables<K>> {
        let mut g = self.packed.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(p) = g.as_ref() {
            if p.version == self.version {
                return Arc::clone(p);
            }
        }
        let p = Arc::new(self.build_packed());
        *g = Some(Arc::clone(&p));
        p
    }

    /// The pooled matching stage (`workers ≥ 2`).
    ///
    /// The batch is split into up to `workers` contiguous publication
    /// chunks; chunks are claimed off an atomic cursor by the caller
    /// (slot 0) and the persistent pool's workers, so a straggler
    /// chunk never idles the rest of the pool. Each chunk is matched
    /// publication-major against the shared [`PackedTables`] snapshot
    /// with one pool slot's reusable [`MatchScratch`] buffers
    /// ([`MatchIndex::match_chunk`]). Chunking by publication makes
    /// probe *and* merge embarrassingly parallel — there is no serial
    /// scatter or merge section at all — and chunk results are
    /// stitched back in batch order, so thread completion order is
    /// irrelevant.
    ///
    /// `schedule_seed` permutes only the order chunks are *claimed*
    /// in; chunk boundaries, and therefore all per-chunk computations,
    /// are schedule-independent by construction. Unseeded (production)
    /// batches additionally clamp the fan-out to the detected hardware
    /// thread count — a narrower schedule of the same chunks, which
    /// cannot change results.
    fn matching_batch_pooled(&self, pubs: &[Publication], schedule_seed: Option<u64>) -> Vec<Vec<K>>
    where
        K: Send + Sync,
    {
        let npubs = pubs.len();
        if npubs == 0 {
            return Vec::new();
        }
        let packed = self.packed();
        let fanout = match schedule_seed {
            Some(_) => self.par.workers.min(npubs),
            None => self.par.workers.min(hw_threads()).min(npubs),
        };
        let chunk = npubs.div_ceil(fanout);
        let nchunks = npubs.div_ceil(chunk);
        let mut order: Vec<usize> = (0..nchunks).collect();
        if let Some(seed) = schedule_seed {
            shuffle_jobs(&mut order, seed);
        }
        let results: Vec<Mutex<Vec<Vec<K>>>> =
            (0..nchunks).map(|_| Mutex::new(Vec::new())).collect();
        let cursor = AtomicUsize::new(0);
        let order = &order;
        let results_ref = &results;
        self.pool.run(nchunks, &|slot| {
            let scratch = self.pool.scratch(slot);
            let mut sc = scratch.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                let Some(&ci) = order.get(i) else { break };
                let lo = ci * chunk;
                let hi = ((ci + 1) * chunk).min(npubs);
                let rows = self.match_chunk(&pubs[lo..hi], &mut sc, &packed);
                *results_ref[ci].lock().unwrap_or_else(|p| p.into_inner()) = rows;
            }
        });
        let mut out: Vec<Vec<K>> = Vec::with_capacity(npubs);
        for cell in results {
            out.append(&mut cell.into_inner().unwrap_or_else(|p| p.into_inner()));
        }
        out
    }

    /// Matches one publication chunk of the pooled stage with one pool
    /// slot's reusable buffers, publication-major against the shared
    /// [`PackedTables`] snapshot.
    ///
    /// The chunk is processed in sub-chunks sized so the
    /// publication-major count grid stays within [`GRID_CELL_BUDGET`]
    /// (a pure memory bound — the probes are stateless, so sub-chunk
    /// boundaries cost nothing). Per publication, every probe bumps
    /// the publication's own grid block — which therefore stays
    /// cache-hot — and cells counted down to zero emit their slot on
    /// the spot. Completed slots are staged as ranks, sorted as plain
    /// `u32`s, mapped back to keys (ascending by construction) and
    /// merged with the zero-arity keys, so no key-space sort is ever
    /// needed. Returns the chunk's sorted result rows.
    fn match_chunk(
        &self,
        pubs: &[Publication],
        sc: &mut MatchScratch,
        packed: &PackedTables<K>,
    ) -> Vec<Vec<K>> {
        let nslots = self.slots.keys.len();
        let mut rows: Vec<Vec<K>> = Vec::with_capacity(pubs.len());
        if nslots == 0 || !self.has_attr_rows() {
            rows.extend(
                pubs.iter()
                    .map(|_| self.zero.iter().copied().collect::<Vec<K>>()),
            );
            return rows;
        }
        sc.set_template(&self.slots.arity);
        let max_pubs = (GRID_CELL_BUDGET / nslots).max(1);
        let mut base = 0;
        while base < pubs.len() {
            let sub = &pubs[base..pubs.len().min(base + max_pubs)];
            sc.seed_grid(sub.len());
            let MatchScratch {
                grid,
                matches,
                ranks,
                ..
            } = sc;
            for (pi, p) in sub.iter().enumerate() {
                let block = &mut grid[pi * nslots..(pi + 1) * nslots];
                matches.clear();
                for (attr, value) in p.iter() {
                    let Some(ai) = self.attr_index(attr) else {
                        continue;
                    };
                    let mut bump = |slot: u32| {
                        let c = &mut block[slot as usize];
                        *c -= 1;
                        if *c == 0 {
                            matches.push(slot);
                        }
                    };
                    if let Some(x) = value.as_f64() {
                        if let Some(keys) = ai.num_eq.get(&x.to_bits()) {
                            for &(_, slot) in keys {
                                bump(slot);
                            }
                        }
                        if let Some(pa) = packed.attrs.get(attr) {
                            pa.scan(x, value, &mut bump);
                        }
                    } else if let Some(s) = value.as_str() {
                        ai.str_satisfied(s, value, &mut |_, slot| bump(slot));
                    }
                    ai.common_satisfied(value, &mut |_, slot| bump(slot));
                }
                ranks.clear();
                ranks.extend(matches.iter().map(|&s| packed.rank_of[s as usize]));
                ranks.sort_unstable();
                let mut row: Vec<K> = Vec::with_capacity(ranks.len() + self.zero.len());
                if self.zero.is_empty() {
                    row.extend(ranks.iter().map(|&r| packed.key_of_rank[r as usize]));
                } else {
                    let mut zi = self.zero.iter().copied().peekable();
                    for &r in ranks.iter() {
                        let k = packed.key_of_rank[r as usize];
                        while let Some(&z) = zi.peek() {
                            if z < k {
                                row.push(z);
                                zi.next();
                            } else {
                                break;
                            }
                        }
                        row.push(k);
                    }
                    row.extend(zi);
                }
                rows.push(row);
            }
            base += sub.len();
        }
        rows
    }

    /// Lifecycle counters of the index's persistent worker pool. Test
    /// support: the pool-reuse, lazy-start, and `workers == 1`
    /// no-spawn regression tests pin the pool contract against these.
    #[doc(hidden)]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The parallel stage with a forced worker pool and a seeded job
    /// schedule: the entry point of the seeded interleaving smoke.
    /// Semantically identical to [`MatchIndex::matching_batch_sequential`]
    /// for every seed.
    #[doc(hidden)]
    pub fn matching_batch_seeded(&self, pubs: &[Publication], seed: u64) -> Vec<Vec<K>>
    where
        K: Send + Sync,
    {
        self.matching_batch_parallel(pubs, Some(seed))
    }

    /// Asserts the internal sharding invariants: every attribute
    /// structure lives in exactly the shard its hash names, and the
    /// slot table covers exactly the satisfiable arity ≥ 1 keys with
    /// consistent key/arity mirrors. Test support.
    #[doc(hidden)]
    pub fn check_shard_invariants(&self) {
        let nshards = self.shards.len();
        assert!(nshards >= 1, "shard vector must never be empty");
        assert_eq!(nshards, self.par.shards, "shard count drifted from config");
        let mut seen = BTreeSet::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for attr in shard.attrs.keys() {
                assert_eq!(
                    shard_of_in(nshards, attr),
                    s,
                    "attribute {attr:?} is in shard {s}, not its owning shard"
                );
                assert!(
                    seen.insert(attr.clone()),
                    "attribute {attr:?} in two shards"
                );
            }
        }
        let expected = self.sat.len() - self.zero.len();
        assert_eq!(self.slots.of.len(), expected, "slot table size mismatch");
        for (k, slot) in &self.slots.of {
            let s = *slot as usize;
            assert_eq!(self.slots.keys[s], *k, "slot {slot} key mirror mismatch");
            assert_eq!(
                self.slots.arity[s] as usize, self.arity[k],
                "slot {slot} arity mirror mismatch"
            );
        }
    }

    /// Keys of filters overlapping `filter`, sorted.
    ///
    /// A stored filter overlaps the query iff its constraint overlaps
    /// the query's on *every attribute both sides constrain*;
    /// attributes only one side constrains never disqualify — exactly
    /// the [`Filter::overlaps`] semantics. Per shared attribute the
    /// overlap-qualified keys come out of the dual-endpoint range scans
    /// (module docs); the result is seeded from the attribute promising
    /// the fewest survivors and filtered by the rest.
    pub fn overlapping(&self, filter: &Filter) -> Vec<K> {
        if !filter.is_satisfiable() {
            return Vec::new();
        }
        // Per query attribute at least one stored filter constrains:
        // the attribute index and its overlap-qualified keys.
        let mut relevant: Vec<(&AttrIndex<K>, Vec<K>)> = filter
            .constraints()
            .filter_map(|(attr, qc)| {
                self.attr_index(attr)
                    .map(|ai| (ai, ai.overlap_qualified(qc)))
            })
            .collect();
        if relevant.is_empty() {
            return self.sat.iter().copied().collect();
        }
        // The keys an attribute allows through are its qualified keys
        // plus every key not constraining it at all, so the survivor
        // count is bounded by |qualified| + (|sat| − |constraining|).
        let seed = (0..relevant.len())
            .min_by_key(|&i| relevant[i].1.len() + self.sat.len() - relevant[i].0.cons.len())
            .expect("relevant is non-empty");
        let (seed_ai, seed_q) = {
            let (ai, q) = &mut relevant[seed];
            (*ai, std::mem::take(q))
        };
        let mut out: Vec<K> = if seed_ai.cons.len() == self.sat.len() {
            // Every satisfiable filter constrains the seed attribute.
            seed_q
        } else {
            self.sat
                .iter()
                .copied()
                .filter(|k| !seed_ai.cons.contains_key(k) || seed_q.binary_search(k).is_ok())
                .collect()
        };
        for (i, (ai, q)) in relevant.iter().enumerate() {
            if i == seed {
                continue;
            }
            out.retain(|k| !ai.cons.contains_key(k) || q.binary_search(k).is_ok());
        }
        out
    }

    /// Keys of stored filters that *cover* `filter` (`stored.covers(filter)`),
    /// sorted. Exact per [`Filter::covers`], including its sound-but-
    /// incomplete string contract.
    ///
    /// Counting scheme: a stored filter covers the query iff every one
    /// of its constraints covers the query's constraint on the same
    /// attribute — so bumps only come from the query's attributes, and
    /// a key qualifies when its bump count reaches its own arity.
    /// Zero-arity filters cover everything; unsatisfiable queries are
    /// covered by everything.
    pub fn covering(&self, filter: &Filter) -> Vec<K> {
        if !filter.is_satisfiable() {
            let mut out: Vec<K> = self.filters.keys().copied().collect();
            out.sort_unstable();
            return out;
        }
        let mut out: Vec<K> = self.zero.iter().copied().collect();
        let mut counts: FastMap<K, usize> = FastMap::default();
        for (attr, qc) in filter.constraints() {
            if let Some(ai) = self.attr_index(attr) {
                ai.count_covering(qc, &mut |k| *counts.entry(k).or_insert(0) += 1);
            }
        }
        for (k, n) in counts {
            if self.arity.get(&k) == Some(&n) {
                out.push(k);
            }
        }
        out.sort_unstable();
        out
    }

    /// Keys of stored filters `filter` covers (`filter.covers(stored)`),
    /// sorted — the active-retraction / covering-release candidate set.
    ///
    /// Counting scheme: the query covers a satisfiable stored filter
    /// iff the stored filter carries a covered constraint on *every*
    /// query attribute, so a key qualifies when its bump count reaches
    /// the query's arity. Unsatisfiable stored filters are covered by
    /// anything; a zero-arity satisfiable query covers everything.
    pub fn covered_by(&self, filter: &Filter) -> Vec<K> {
        let mut out: Vec<K> = self.unsat.iter().copied().collect();
        if !filter.is_satisfiable() {
            return out; // BTreeSet iteration order: already sorted
        }
        if filter.arity() == 0 {
            let mut out: Vec<K> = self.filters.keys().copied().collect();
            out.sort_unstable();
            return out;
        }
        if filter.arity() == 1 {
            // Single-attribute query: every bump qualifies outright
            // (each attribute bumps a key at most once), so the
            // counting map is pure overhead on the release hot path.
            let (attr, qc) = filter.constraints().next().expect("arity 1");
            if let Some(ai) = self.attr_index(attr) {
                ai.count_covered_by(qc, &mut |k| out.push(k));
            }
            out.sort_unstable();
            return out;
        }
        let mut counts: FastMap<K, usize> = FastMap::default();
        for (attr, qc) in filter.constraints() {
            if let Some(ai) = self.attr_index(attr) {
                ai.count_covered_by(qc, &mut |k| *counts.entry(k).or_insert(0) += 1);
            }
        }
        for (k, n) in counts {
            if n == filter.arity() {
                out.push(k);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Op, Predicate};

    /// The reference implementations the index must agree with.
    fn linear_matching(table: &BTreeMap<u32, Filter>, p: &Publication) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.matches(p))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_overlapping(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.overlaps(q))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_covering(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.covers(q))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_covered_by(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| q.covers(f))
            .map(|(k, _)| *k)
            .collect()
    }

    fn build(filters: Vec<Filter>) -> (BTreeMap<u32, Filter>, MatchIndex<u32>) {
        let mut table = BTreeMap::new();
        let mut ix = MatchIndex::new();
        for (i, f) in filters.into_iter().enumerate() {
            ix.insert(i as u32, &f);
            table.insert(i as u32, f);
        }
        (table, ix)
    }

    fn assorted_filters() -> Vec<Filter> {
        vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 5).le("x", 20).ne("x", 7).build(),
            Filter::builder().eq("x", 7).build(),
            Filter::builder().gt("x", 10).build(),
            Filter::builder().lt("x", 0).build(),
            Filter::builder().eq("x", 7).ne("x", 7).build(), // unsatisfiable
            Filter::new(vec![]),                             // matches everything
            Filter::builder().any("x").build(),
            Filter::builder().eq("s", "alpha").build(),
            Filter::builder().prefix("s", "al").build(),
            Filter::builder()
                .prefix("s", "be")
                .suffix("s", "ta")
                .build(),
            Filter::builder().contains("s", "ph").build(),
            Filter::builder().ge("s", "a").lt("s", "c").build(),
            Filter::builder().eq("b", true).build(),
            Filter::builder().eq("b", false).build(),
            Filter::builder().ge("x", 0).eq("s", "alpha").build(),
            Filter::builder().ge("x", 0).le("y", 5).build(),
            Filter::builder().eq("x", 3.5).build(),
            Filter::builder().gt("x", 3).lt("x", 4).build(),
        ]
    }

    fn probes() -> Vec<Publication> {
        let mut ps = vec![Publication::new()];
        for x in [-5i64, 0, 3, 7, 10, 11, 15, 25] {
            ps.push(Publication::new().with("x", x));
            ps.push(Publication::new().with("x", x).with("y", 3));
        }
        ps.push(Publication::new().with("x", 3.5));
        ps.push(Publication::new().with("x", 3.25));
        for s in ["alpha", "al", "beta", "bta", "graph", "c", ""] {
            ps.push(Publication::new().with("s", s));
            ps.push(Publication::new().with("s", s).with("x", 7));
        }
        ps.push(Publication::new().with("b", true));
        ps.push(Publication::new().with("b", false));
        ps.push(Publication::new().with("z", 1));
        ps
    }

    #[test]
    fn matching_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p), "probe {p}");
        }
    }

    #[test]
    fn overlapping_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for q in assorted_filters() {
            assert_eq!(
                ix.overlapping(&q),
                linear_overlapping(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn covering_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for q in assorted_filters() {
            assert_eq!(ix.covering(&q), linear_covering(&table, &q), "query {q}");
            assert_eq!(
                ix.covered_by(&q),
                linear_covered_by(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn covering_endpoint_edge_cases() {
        // Exercises the inclusive-prune / exact-verify boundary: open
        // vs closed bounds meeting at the same endpoint, unbounded
        // sides, exclusions sitting on interval edges, and point
        // constraints as degenerate intervals.
        let (table, ix) = build(vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().gt("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 0).lt("x", 10).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 0).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 5).build(),
            Filter::builder().ge("x", 0).build(),
            Filter::builder().le("x", 10).build(),
            Filter::builder().eq("x", 0).build(),
            Filter::builder().eq("x", 10).build(),
            Filter::builder().any("x").build(),
            Filter::new(vec![]),
        ]);
        let queries = [
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().gt("x", 0).lt("x", 10).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 10).build(),
            Filter::builder().eq("x", 0).build(),
            Filter::builder().eq("x", 10).build(),
            Filter::builder().ge("x", 2).le("x", 8).build(),
            Filter::builder().ge("x", 2).le("x", 8).ne("x", 5).build(),
            Filter::builder().ge("x", 0).build(),
            Filter::builder().any("x").build(),
        ];
        for q in queries {
            assert_eq!(ix.covering(&q), linear_covering(&table, &q), "query {q}");
            assert_eq!(
                ix.covered_by(&q),
                linear_covered_by(&table, &q),
                "query {q}"
            );
            assert_eq!(
                ix.overlapping(&q),
                linear_overlapping(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn churn_keeps_index_consistent() {
        let filters = assorted_filters();
        let (mut table, mut ix) = build(filters.clone());
        // Remove every other key, re-check, re-insert shifted filters,
        // re-check: exercises bucket vacation and re-population.
        for k in (0..filters.len() as u32).step_by(2) {
            assert!(ix.remove(&k));
            assert!(!ix.remove(&k));
            table.remove(&k);
        }
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p));
        }
        for (i, f) in filters.iter().enumerate().take(8) {
            let k = 100 + i as u32;
            ix.insert(k, f);
            table.insert(k, f.clone());
        }
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p));
        }
        for q in filters.iter() {
            assert_eq!(ix.overlapping(q), linear_overlapping(&table, q));
            assert_eq!(ix.covering(q), linear_covering(&table, q));
            assert_eq!(ix.covered_by(q), linear_covered_by(&table, q));
        }
    }

    #[test]
    fn upsert_replaces_previous_filter() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().ge("x", 0).le("x", 10).build());
        ix.insert(1u32, &Filter::builder().ge("x", 50).build());
        let p = Publication::new().with("x", 5);
        assert!(ix.matching(&p).is_empty());
        assert_eq!(ix.matching(&Publication::new().with("x", 60)), vec![1]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn open_bounds_are_respected() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().gt("x", 10).le("x", 20).build());
        assert!(ix.matching(&Publication::new().with("x", 10)).is_empty());
        assert_eq!(ix.matching(&Publication::new().with("x", 11)), vec![1]);
        assert_eq!(ix.matching(&Publication::new().with("x", 20)), vec![1]);
        assert!(ix.matching(&Publication::new().with("x", 21)).is_empty());
    }

    #[test]
    fn mismatched_kinds_do_not_match() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().ge("x", 0).build());
        ix.insert(2u32, &Filter::builder().eq("x", "zero").build());
        assert_eq!(ix.matching(&Publication::new().with("x", 1)), vec![1]);
        assert_eq!(ix.matching(&Publication::new().with("x", "zero")), vec![2]);
    }

    #[test]
    fn presence_constraint_matches_any_kind() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::new(vec![Predicate::any("x")]));
        for v in [Value::Int(1), Value::from("s"), Value::Bool(true)] {
            let mut p = Publication::new();
            p.set("x", v);
            assert_eq!(ix.matching(&p), vec![1]);
        }
        assert!(ix.matching(&Publication::new().with("y", 1)).is_empty());
    }

    #[test]
    fn int_float_promotion_hits_point_buckets() {
        // `x = 7` built from an integer predicate must match the float
        // publication 7.0 and vice versa (both normalize to f64 bits).
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().eq("x", 7).build());
        assert_eq!(ix.matching(&Publication::new().with("x", 7.0)), vec![1]);
        ix.insert(2u32, &Filter::builder().eq("y", 2.0).build());
        assert_eq!(ix.matching(&Publication::new().with("y", 2)), vec![2]);
    }

    #[test]
    fn overlap_ignores_attrs_only_one_side_constrains() {
        let mut ix = MatchIndex::new();
        ix.insert(
            1u32,
            &Filter::builder().ge("price", 0).le("price", 50).build(),
        );
        let q = Filter::builder().ge("price", 40).eq("sym", "A").build();
        assert_eq!(ix.overlapping(&q), vec![1]);
        let disjoint = Filter::builder().gt("price", 60).build();
        assert!(ix.overlapping(&disjoint).is_empty());
    }

    #[test]
    fn batch_matching_agrees_with_per_publication_matching() {
        let (table, ix) = build(assorted_filters());
        let batch = probes();
        let got = ix.matching_batch(&batch);
        assert_eq!(got.len(), batch.len());
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
        // Duplicated, unsorted, and empty batches behave identically.
        let mut shuffled: Vec<Publication> = batch.iter().rev().cloned().collect();
        shuffled.extend(batch.iter().cloned());
        for (i, p) in shuffled.iter().enumerate() {
            assert_eq!(
                ix.matching_batch(&shuffled)[i],
                ix.matching(p),
                "shuffled probe {i}"
            );
        }
        assert!(ix.matching_batch(&[]).is_empty());
    }

    #[test]
    fn batch_sweep_handles_boundary_and_retirement_cases() {
        // Rows whose bounds collide with probe values in every
        // open/closed combination, probed in an order that forces
        // admission and retirement mid-sweep — including equal probes
        // (no retirement between them) and a probe past every hi.
        let (table, ix) = build(vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().gt("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 0).lt("x", 10).build(),
            Filter::builder().gt("x", 0).lt("x", 10).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 5).build(),
            Filter::builder()
                .ge("x", 10)
                .le("x", 10)
                .ne("x", 10)
                .build(),
            Filter::builder().eq("x", 0).build(),
            Filter::builder().eq("x", 10).build(),
            Filter::builder().ge("x", 5).build(),
            Filter::builder().le("x", 5).build(),
        ]);
        let batch: Vec<Publication> = [-1i64, 0, 0, 5, 5, 10, 10, 11, 100]
            .into_iter()
            .map(|x| Publication::new().with("x", x))
            .collect();
        let got = ix.matching_batch(&batch);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
    }

    #[test]
    fn batch_matching_mixes_value_kinds() {
        let (table, ix) = build(assorted_filters());
        let batch = vec![
            Publication::new().with("x", 7).with("s", "alpha"),
            Publication::new().with("s", "beta").with("b", true),
            Publication::new(),
            Publication::new().with("x", 3.5).with("y", 2),
            Publication::new().with("b", false).with("x", 25),
        ];
        let got = ix.matching_batch(&batch);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
    }

    #[test]
    fn predicate_ops_needing_fallback_paths() {
        // Suffix-only and contains-only string constraints take the
        // `other` fallback; make sure they are exact there.
        let (table, ix) = build(vec![
            Filter::new(vec![Predicate::new("s", Op::StrSuffix, "ta")]),
            Filter::new(vec![Predicate::new("s", Op::StrContains, "et")]),
            Filter::new(vec![Predicate::new("s", Op::Neq, "beta")]),
        ]);
        for s in ["beta", "theta", "et", "", "ta"] {
            let p = Publication::new().with("s", s);
            assert_eq!(ix.matching(&p), linear_matching(&table, &p), "s={s}");
        }
    }

    #[test]
    fn sharded_configs_agree_with_linear_scan() {
        // Sharding is a physical-layout change only: every shard count
        // and worker count must answer all four query families exactly
        // like the linear scans.
        for shards in [1usize, 3, 8] {
            for workers in [0usize, 2] {
                let (table, mut ix) = build(assorted_filters());
                ix.set_parallelism(Parallelism::sharded(shards, workers));
                ix.check_shard_invariants();
                let batch = probes();
                let got = ix.matching_batch(&batch);
                for (i, p) in batch.iter().enumerate() {
                    assert_eq!(
                        got[i],
                        linear_matching(&table, p),
                        "shards={shards} workers={workers} probe {i} ({p})"
                    );
                    assert_eq!(ix.matching(p), linear_matching(&table, p));
                }
                for q in assorted_filters() {
                    assert_eq!(ix.overlapping(&q), linear_overlapping(&table, &q));
                    assert_eq!(ix.covering(&q), linear_covering(&table, &q));
                    assert_eq!(ix.covered_by(&q), linear_covered_by(&table, &q));
                }
            }
        }
    }

    #[test]
    fn seeded_parallel_schedules_match_sequential() {
        let (_, mut ix) = build(assorted_filters());
        ix.set_parallelism(Parallelism::sharded(5, 3));
        let batch = probes();
        let want = ix.matching_batch_sequential(&batch);
        for seed in 0..16u64 {
            assert_eq!(ix.matching_batch_seeded(&batch, seed), want, "seed {seed}");
        }
    }

    #[test]
    fn sharded_churn_recycles_slots_consistently() {
        let filters = assorted_filters();
        let (mut table, mut ix) = build(filters.clone());
        ix.set_parallelism(Parallelism::sharded(4, 2));
        for k in (0..filters.len() as u32).step_by(2) {
            assert!(ix.remove(&k));
            table.remove(&k);
        }
        // Re-inserting reuses freed slot ids; answers must be unchanged.
        for (i, f) in filters.iter().enumerate().take(8) {
            let k = 100 + i as u32;
            ix.insert(k, f);
            table.insert(k, f.clone());
        }
        // Upsert in place while sharded.
        ix.insert(101, &Filter::builder().ge("y", 1).le("y", 2).build());
        table.insert(101, Filter::builder().ge("y", 1).le("y", 2).build());
        ix.check_shard_invariants();
        let batch = probes();
        let got = ix.matching_batch(&batch);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
        for q in filters.iter() {
            assert_eq!(ix.covering(q), linear_covering(&table, q));
            assert_eq!(ix.covered_by(q), linear_covered_by(&table, q));
        }
    }
}
