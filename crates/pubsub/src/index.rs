//! Attribute-indexed *counting* match index for filter tables.
//!
//! Brokers answer two hot-path queries against large filter tables:
//!
//! - **matching**: which stored filters match a publication? (the PRT
//!   publication-forwarding test)
//! - **overlapping**: which stored filters overlap a query filter?
//!   (the SRT/PRT subscription-routing intersection test)
//!
//! The naive implementation scans every stored filter and evaluates
//! [`Filter::matches`] / [`Filter::overlaps`] — `O(table × arity)` per
//! publication. [`MatchIndex`] implements the classic counting
//! algorithm of Siena/PADRES-style brokers instead: each filter is
//! decomposed into its per-attribute normalized [`Constraint`]s, the
//! constraints are organized in per-attribute structures, and a
//! publication is matched by **counting** how many of a filter's
//! constraints are satisfied. A filter matches iff its count equals
//! its arity. Only filters constraining attributes the publication
//! actually carries are ever touched.
//!
//! # Data layout
//!
//! Per constrained attribute ([`AttrIndex`]):
//!
//! - numeric **point** constraints (`x = c`, no exclusions) live in a
//!   hash map keyed by the *bit pattern* of the point. Under
//!   `f64::total_cmp` — the order all numeric constraints use — two
//!   floats are equal iff their bit patterns are equal, so a single
//!   hash probe with `value.to_bits()` is exact.
//! - general numeric **interval** constraints live in a `BTreeMap`
//!   keyed by their *effective lower bound* in the total order
//!   (unbounded-below maps to the total-order minimum, the negative
//!   NaN with maximal payload). A value `x` can only satisfy intervals
//!   whose lower bound is `≤ x`, so a prefix range scan enumerates a
//!   superset of the satisfied intervals; each candidate is then
//!   verified against its upper bound (and, rarely, its `!=`
//!   exclusions).
//! - string constraints pinned to a **single value** (`s = "v"`) live
//!   in a hash map keyed by that value; constraints with **prefix**
//!   conjuncts are bucketed under their first prefix, probed by
//!   enumerating every prefix of the published string. Both bucket
//!   kinds re-verify hits with [`Constraint::satisfied_by`] (the
//!   bucket key is necessary, not sufficient).
//! - `[attr] *` **presence** constraints are satisfied by any value.
//! - everything else (booleans, exotic string shapes) falls back to a
//!   per-attribute scan with exact verification — still restricted to
//!   attributes the publication carries.
//!
//! # Soundness
//!
//! Every fast path is *prune + verify*: the bucket structures only
//! narrow the candidate set, and any candidate that is not exact by
//! construction is re-checked against the authoritative constraint.
//! The index therefore returns byte-for-byte the same id sets as the
//! linear scans, including for unsatisfiable filters (never returned),
//! zero-arity filters (always returned by `matching`), and the
//! conservative [`Constraint::overlaps`] over-approximation contract
//! documented in [`crate::constraint`]. The routing layer keeps the
//! linear scans alive as a differential oracle.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

use crate::constraint::{Bound, Constraint, TotalF64};
use crate::filter::Filter;
use crate::publication::Publication;
use crate::value::Value;

/// Smallest `f64` in the `total_cmp` order (negative NaN, maximal
/// payload): the effective lower bound of intervals unbounded below.
const TOTAL_MIN: f64 = f64::from_bits(u64::MAX);
/// Largest `f64` in the `total_cmp` order: the effective upper bound
/// of intervals unbounded above.
const TOTAL_MAX: f64 = f64::from_bits(i64::MAX as u64);

/// Key types a [`MatchIndex`] can index filters under (`AdvId`,
/// `SubId`, …).
pub trait IndexKey: Copy + Ord + Eq + Hash + Debug {}
impl<T: Copy + Ord + Eq + Hash + Debug> IndexKey for T {}

/// One general numeric interval constraint, denormalized for cheap
/// verification during the prefix scan. The lower bound is the bucket
/// key it is stored under.
#[derive(Debug, Clone)]
struct NumRow<K> {
    key: K,
    /// Lower bound is exclusive (`x > lo` rather than `x ≥ lo`).
    lo_excl: bool,
    /// Effective upper bound in the total order.
    hi: f64,
    /// Upper bound is exclusive.
    hi_excl: bool,
    /// The constraint carries `!=` exclusions; hits must be re-checked
    /// against the authoritative constraint.
    has_exclusions: bool,
}

/// Where a constraint lives inside an [`AttrIndex`]. Classification is
/// a pure function of the constraint, so insert and remove agree.
enum Slot {
    Present,
    NumEq(u64),
    NumRange {
        lo: TotalF64,
        lo_excl: bool,
        hi: f64,
        hi_excl: bool,
        has_exclusions: bool,
    },
    StrEq(String),
    StrPre(String),
    Other,
}

fn classify(c: &Constraint) -> Slot {
    match c {
        Constraint::Present => Slot::Present,
        Constraint::Num(n) => {
            if n.excluded.is_empty() {
                if let Some(p) = n.interval.as_point() {
                    return Slot::NumEq(p.to_bits());
                }
            }
            let (lo, lo_excl) = match n.interval.lo() {
                Bound::Unbounded => (TOTAL_MIN, false),
                Bound::Incl(v) => (*v, false),
                Bound::Excl(v) => (*v, true),
            };
            let (hi, hi_excl) = match n.interval.hi() {
                Bound::Unbounded => (TOTAL_MAX, false),
                Bound::Incl(v) => (*v, false),
                Bound::Excl(v) => (*v, true),
            };
            Slot::NumRange {
                lo: TotalF64(lo),
                lo_excl,
                hi,
                hi_excl,
                has_exclusions: !n.excluded.is_empty(),
            }
        }
        Constraint::Str(s) => {
            if let Some(p) = s.interval.as_point() {
                Slot::StrEq(p.clone())
            } else if let Some(p) = s.prefixes.first() {
                Slot::StrPre(p.clone())
            } else {
                Slot::Other
            }
        }
        Constraint::Bool(_) => Slot::Other,
        // Unsatisfiable filters are kept out of the attribute indexes
        // entirely (MatchIndex::insert).
        Constraint::Empty => unreachable!("empty constraints are not indexed"),
    }
}

fn drop_from_bucket<Q: Eq + Hash, K: PartialEq>(map: &mut HashMap<Q, Vec<K>>, slot: &Q, key: &K) {
    if let Some(keys) = map.get_mut(slot) {
        keys.retain(|k| k != key);
        if keys.is_empty() {
            map.remove(slot);
        }
    }
}

/// The per-attribute constraint structures; see the module docs for
/// the layout.
#[derive(Debug, Clone)]
struct AttrIndex<K> {
    /// Authoritative constraint per key, also used for the overlap
    /// disqualification scan (sorted so results come out ordered).
    cons: BTreeMap<K, Constraint>,
    num_eq: HashMap<u64, Vec<K>>,
    num_lo: BTreeMap<TotalF64, Vec<NumRow<K>>>,
    str_eq: HashMap<String, Vec<K>>,
    str_pre: HashMap<String, Vec<K>>,
    present: Vec<K>,
    other: Vec<K>,
}

impl<K: IndexKey> AttrIndex<K> {
    fn new() -> Self {
        AttrIndex {
            cons: BTreeMap::new(),
            num_eq: HashMap::new(),
            num_lo: BTreeMap::new(),
            str_eq: HashMap::new(),
            str_pre: HashMap::new(),
            present: Vec::new(),
            other: Vec::new(),
        }
    }

    fn insert(&mut self, key: K, c: &Constraint) {
        self.cons.insert(key, c.clone());
        match classify(c) {
            Slot::Present => self.present.push(key),
            Slot::NumEq(bits) => self.num_eq.entry(bits).or_default().push(key),
            Slot::NumRange {
                lo,
                lo_excl,
                hi,
                hi_excl,
                has_exclusions,
            } => self.num_lo.entry(lo).or_default().push(NumRow {
                key,
                lo_excl,
                hi,
                hi_excl,
                has_exclusions,
            }),
            Slot::StrEq(s) => self.str_eq.entry(s).or_default().push(key),
            Slot::StrPre(p) => self.str_pre.entry(p).or_default().push(key),
            Slot::Other => self.other.push(key),
        }
    }

    fn remove(&mut self, key: K) {
        let Some(c) = self.cons.remove(&key) else {
            return;
        };
        match classify(&c) {
            Slot::Present => self.present.retain(|k| *k != key),
            Slot::NumEq(bits) => drop_from_bucket(&mut self.num_eq, &bits, &key),
            Slot::NumRange { lo, .. } => {
                if let Some(rows) = self.num_lo.get_mut(&lo) {
                    rows.retain(|r| r.key != key);
                    if rows.is_empty() {
                        self.num_lo.remove(&lo);
                    }
                }
            }
            Slot::StrEq(s) => drop_from_bucket(&mut self.str_eq, &s, &key),
            Slot::StrPre(p) => drop_from_bucket(&mut self.str_pre, &p, &key),
            Slot::Other => self.other.retain(|k| *k != key),
        }
    }

    fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// Calls `bump(key)` once for every key whose constraint on this
    /// attribute is satisfied by `value`. Exact: no false positives,
    /// no false negatives, at most one bump per key.
    fn count_satisfied(&self, value: &Value, bump: &mut impl FnMut(K)) {
        if let Some(x) = value.as_f64() {
            if let Some(keys) = self.num_eq.get(&x.to_bits()) {
                for &k in keys {
                    bump(k);
                }
            }
            for (lo, rows) in self.num_lo.range(..=TotalF64(x)) {
                for row in rows {
                    if row.lo_excl && lo.0.total_cmp(&x) == Ordering::Equal {
                        continue;
                    }
                    match x.total_cmp(&row.hi) {
                        Ordering::Greater => continue,
                        Ordering::Equal if row.hi_excl => continue,
                        _ => {}
                    }
                    if row.has_exclusions && !self.cons[&row.key].satisfied_by(value) {
                        continue;
                    }
                    bump(row.key);
                }
            }
        } else if let Some(s) = value.as_str() {
            if let Some(keys) = self.str_eq.get(s) {
                for &k in keys {
                    if self.cons[&k].satisfied_by(value) {
                        bump(k);
                    }
                }
            }
            if !self.str_pre.is_empty() {
                for end in 0..=s.len() {
                    if !s.is_char_boundary(end) {
                        continue;
                    }
                    if let Some(keys) = self.str_pre.get(&s[..end]) {
                        for &k in keys {
                            if self.cons[&k].satisfied_by(value) {
                                bump(k);
                            }
                        }
                    }
                }
            }
        }
        for &k in &self.present {
            bump(k);
        }
        for &k in &self.other {
            if self.cons[&k].satisfied_by(value) {
                bump(k);
            }
        }
    }
}

/// A counting match index over `(key, Filter)` pairs.
///
/// Results are always sorted by key and identical to what the
/// corresponding linear scans produce (see the module docs for the
/// argument; the broker's routing layer additionally asserts this in
/// debug builds).
///
/// # Examples
///
/// ```
/// use transmob_pubsub::{Filter, MatchIndex, Publication};
///
/// let mut ix: MatchIndex<u32> = MatchIndex::new();
/// ix.insert(1, &Filter::builder().ge("x", 0).le("x", 10).build());
/// ix.insert(2, &Filter::builder().ge("x", 20).build());
/// let p = Publication::new().with("x", 5);
/// assert_eq!(ix.matching(&p), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct MatchIndex<K> {
    /// Every indexed filter, satisfiable or not.
    filters: HashMap<K, Filter>,
    /// Constraint count per satisfiable key.
    arity: HashMap<K, usize>,
    /// Satisfiable keys, sorted (overlap candidates).
    sat: BTreeSet<K>,
    /// Satisfiable keys with no constraints: they match everything.
    zero: BTreeSet<K>,
    /// Unsatisfiable keys: they match and overlap nothing.
    unsat: BTreeSet<K>,
    attrs: HashMap<String, AttrIndex<K>>,
}

impl<K> Default for MatchIndex<K> {
    fn default() -> Self {
        MatchIndex {
            filters: HashMap::new(),
            arity: HashMap::new(),
            sat: BTreeSet::new(),
            zero: BTreeSet::new(),
            unsat: BTreeSet::new(),
            attrs: HashMap::new(),
        }
    }
}

impl<K: IndexKey> MatchIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        MatchIndex::default()
    }

    /// Number of indexed filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The filter indexed under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&Filter> {
        self.filters.get(key)
    }

    /// Indexes `filter` under `key`. Replaces any previous filter for
    /// the key (upsert semantics).
    pub fn insert(&mut self, key: K, filter: &Filter) {
        self.remove(&key);
        self.filters.insert(key, filter.clone());
        if !filter.is_satisfiable() {
            self.unsat.insert(key);
            return;
        }
        self.sat.insert(key);
        self.arity.insert(key, filter.arity());
        if filter.arity() == 0 {
            self.zero.insert(key);
            return;
        }
        for (attr, c) in filter.constraints() {
            self.attrs
                .entry(attr.to_owned())
                .or_insert_with(AttrIndex::new)
                .insert(key, c);
        }
    }

    /// Removes the filter indexed under `key`, reporting whether one
    /// was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(filter) = self.filters.remove(key) else {
            return false;
        };
        if self.unsat.remove(key) {
            return true;
        }
        self.sat.remove(key);
        self.zero.remove(key);
        self.arity.remove(key);
        for (attr, _) in filter.constraints() {
            if let Some(ai) = self.attrs.get_mut(attr) {
                ai.remove(*key);
                if ai.is_empty() {
                    self.attrs.remove(attr);
                }
            }
        }
        true
    }

    /// Keys of filters matching `publication`, sorted.
    ///
    /// Touches only the attribute indexes of attributes the
    /// publication carries, counting satisfied constraints per key; a
    /// key matches iff its count reaches its filter's arity.
    pub fn matching(&self, publication: &Publication) -> Vec<K> {
        let mut out: Vec<K> = self.zero.iter().copied().collect();
        if !self.attrs.is_empty() {
            let mut counts: HashMap<K, usize> = HashMap::new();
            for (attr, value) in publication.iter() {
                if let Some(ai) = self.attrs.get(attr) {
                    ai.count_satisfied(value, &mut |k| *counts.entry(k).or_insert(0) += 1);
                }
            }
            for (k, n) in counts {
                if self.arity.get(&k) == Some(&n) {
                    out.push(k);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Keys of filters overlapping `filter`, sorted.
    ///
    /// Works by *disqualification*: every satisfiable stored filter is
    /// a candidate, and for each attribute the query constrains, the
    /// stored filters whose constraint on that attribute fails
    /// [`Constraint::overlaps`] are struck out. Attributes only one
    /// side constrains never disqualify — exactly the
    /// [`Filter::overlaps`] semantics.
    pub fn overlapping(&self, filter: &Filter) -> Vec<K> {
        if !filter.is_satisfiable() {
            return Vec::new();
        }
        let mut disqualified: HashSet<K> = HashSet::new();
        for (attr, qc) in filter.constraints() {
            if let Some(ai) = self.attrs.get(attr) {
                for (k, c) in &ai.cons {
                    if !c.overlaps(qc) {
                        disqualified.insert(*k);
                    }
                }
            }
        }
        self.sat
            .iter()
            .copied()
            .filter(|k| !disqualified.contains(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Op, Predicate};

    /// The reference implementations the index must agree with.
    fn linear_matching(table: &BTreeMap<u32, Filter>, p: &Publication) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.matches(p))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_overlapping(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.overlaps(q))
            .map(|(k, _)| *k)
            .collect()
    }

    fn build(filters: Vec<Filter>) -> (BTreeMap<u32, Filter>, MatchIndex<u32>) {
        let mut table = BTreeMap::new();
        let mut ix = MatchIndex::new();
        for (i, f) in filters.into_iter().enumerate() {
            ix.insert(i as u32, &f);
            table.insert(i as u32, f);
        }
        (table, ix)
    }

    fn assorted_filters() -> Vec<Filter> {
        vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 5).le("x", 20).ne("x", 7).build(),
            Filter::builder().eq("x", 7).build(),
            Filter::builder().gt("x", 10).build(),
            Filter::builder().lt("x", 0).build(),
            Filter::builder().eq("x", 7).ne("x", 7).build(), // unsatisfiable
            Filter::new(vec![]),                             // matches everything
            Filter::builder().any("x").build(),
            Filter::builder().eq("s", "alpha").build(),
            Filter::builder().prefix("s", "al").build(),
            Filter::builder()
                .prefix("s", "be")
                .suffix("s", "ta")
                .build(),
            Filter::builder().contains("s", "ph").build(),
            Filter::builder().ge("s", "a").lt("s", "c").build(),
            Filter::builder().eq("b", true).build(),
            Filter::builder().eq("b", false).build(),
            Filter::builder().ge("x", 0).eq("s", "alpha").build(),
            Filter::builder().ge("x", 0).le("y", 5).build(),
            Filter::builder().eq("x", 3.5).build(),
            Filter::builder().gt("x", 3).lt("x", 4).build(),
        ]
    }

    fn probes() -> Vec<Publication> {
        let mut ps = vec![Publication::new()];
        for x in [-5i64, 0, 3, 7, 10, 11, 15, 25] {
            ps.push(Publication::new().with("x", x));
            ps.push(Publication::new().with("x", x).with("y", 3));
        }
        ps.push(Publication::new().with("x", 3.5));
        ps.push(Publication::new().with("x", 3.25));
        for s in ["alpha", "al", "beta", "bta", "graph", "c", ""] {
            ps.push(Publication::new().with("s", s));
            ps.push(Publication::new().with("s", s).with("x", 7));
        }
        ps.push(Publication::new().with("b", true));
        ps.push(Publication::new().with("b", false));
        ps.push(Publication::new().with("z", 1));
        ps
    }

    #[test]
    fn matching_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p), "probe {p}");
        }
    }

    #[test]
    fn overlapping_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for q in assorted_filters() {
            assert_eq!(
                ix.overlapping(&q),
                linear_overlapping(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn churn_keeps_index_consistent() {
        let filters = assorted_filters();
        let (mut table, mut ix) = build(filters.clone());
        // Remove every other key, re-check, re-insert shifted filters,
        // re-check: exercises bucket vacation and re-population.
        for k in (0..filters.len() as u32).step_by(2) {
            assert!(ix.remove(&k));
            assert!(!ix.remove(&k));
            table.remove(&k);
        }
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p));
        }
        for (i, f) in filters.iter().enumerate().take(8) {
            let k = 100 + i as u32;
            ix.insert(k, f);
            table.insert(k, f.clone());
        }
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p));
        }
        for q in filters.iter() {
            assert_eq!(ix.overlapping(q), linear_overlapping(&table, q));
        }
    }

    #[test]
    fn upsert_replaces_previous_filter() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().ge("x", 0).le("x", 10).build());
        ix.insert(1u32, &Filter::builder().ge("x", 50).build());
        let p = Publication::new().with("x", 5);
        assert!(ix.matching(&p).is_empty());
        assert_eq!(ix.matching(&Publication::new().with("x", 60)), vec![1]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn open_bounds_are_respected() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().gt("x", 10).le("x", 20).build());
        assert!(ix.matching(&Publication::new().with("x", 10)).is_empty());
        assert_eq!(ix.matching(&Publication::new().with("x", 11)), vec![1]);
        assert_eq!(ix.matching(&Publication::new().with("x", 20)), vec![1]);
        assert!(ix.matching(&Publication::new().with("x", 21)).is_empty());
    }

    #[test]
    fn mismatched_kinds_do_not_match() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().ge("x", 0).build());
        ix.insert(2u32, &Filter::builder().eq("x", "zero").build());
        assert_eq!(ix.matching(&Publication::new().with("x", 1)), vec![1]);
        assert_eq!(ix.matching(&Publication::new().with("x", "zero")), vec![2]);
    }

    #[test]
    fn presence_constraint_matches_any_kind() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::new(vec![Predicate::any("x")]));
        for v in [Value::Int(1), Value::from("s"), Value::Bool(true)] {
            let mut p = Publication::new();
            p.set("x", v);
            assert_eq!(ix.matching(&p), vec![1]);
        }
        assert!(ix.matching(&Publication::new().with("y", 1)).is_empty());
    }

    #[test]
    fn int_float_promotion_hits_point_buckets() {
        // `x = 7` built from an integer predicate must match the float
        // publication 7.0 and vice versa (both normalize to f64 bits).
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().eq("x", 7).build());
        assert_eq!(ix.matching(&Publication::new().with("x", 7.0)), vec![1]);
        ix.insert(2u32, &Filter::builder().eq("y", 2.0).build());
        assert_eq!(ix.matching(&Publication::new().with("y", 2)), vec![2]);
    }

    #[test]
    fn overlap_ignores_attrs_only_one_side_constrains() {
        let mut ix = MatchIndex::new();
        ix.insert(
            1u32,
            &Filter::builder().ge("price", 0).le("price", 50).build(),
        );
        let q = Filter::builder().ge("price", 40).eq("sym", "A").build();
        assert_eq!(ix.overlapping(&q), vec![1]);
        let disjoint = Filter::builder().gt("price", 60).build();
        assert!(ix.overlapping(&disjoint).is_empty());
    }

    #[test]
    fn predicate_ops_needing_fallback_paths() {
        // Suffix-only and contains-only string constraints take the
        // `other` fallback; make sure they are exact there.
        let (table, ix) = build(vec![
            Filter::new(vec![Predicate::new("s", Op::StrSuffix, "ta")]),
            Filter::new(vec![Predicate::new("s", Op::StrContains, "et")]),
            Filter::new(vec![Predicate::new("s", Op::Neq, "beta")]),
        ]);
        for s in ["beta", "theta", "et", "", "ta"] {
            let p = Publication::new().with("s", s);
            assert_eq!(ix.matching(&p), linear_matching(&table, &p), "s={s}");
        }
    }
}
