//! Attribute-indexed *counting* match index for filter tables.
//!
//! Brokers answer four hot-path queries against large filter tables:
//!
//! - **matching**: which stored filters match a publication? (the PRT
//!   publication-forwarding test)
//! - **overlapping**: which stored filters overlap a query filter?
//!   (the SRT/PRT subscription-routing intersection test)
//! - **covering**: which stored filters cover a query filter? (the
//!   covering-quench test of the subscription/advertisement paths)
//! - **covered_by**: which stored filters does a query filter cover?
//!   (active-retraction candidates and the covering-release cascade
//!   that dominates the paper's mobility unsubscribe bursts)
//!
//! The naive implementation scans every stored filter and evaluates
//! [`Filter::matches`] / [`Filter::overlaps`] — `O(table × arity)` per
//! publication. [`MatchIndex`] implements the classic counting
//! algorithm of Siena/PADRES-style brokers instead: each filter is
//! decomposed into its per-attribute normalized [`Constraint`]s, the
//! constraints are organized in per-attribute structures, and a
//! publication is matched by **counting** how many of a filter's
//! constraints are satisfied. A filter matches iff its count equals
//! its arity. Only filters constraining attributes the publication
//! actually carries are ever touched.
//!
//! # Data layout
//!
//! Per constrained attribute ([`AttrIndex`]):
//!
//! - numeric **point** constraints (`x = c`, no exclusions) live in a
//!   hash map keyed by the *bit pattern* of the point. Under
//!   `f64::total_cmp` — the order all numeric constraints use — two
//!   floats are equal iff their bit patterns are equal, so a single
//!   hash probe with `value.to_bits()` is exact.
//! - general numeric **interval** constraints live in a `BTreeMap`
//!   keyed by their *effective lower bound* in the total order
//!   (unbounded-below maps to the total-order minimum, the negative
//!   NaN with maximal payload). A value `x` can only satisfy intervals
//!   whose lower bound is `≤ x`, so a prefix range scan enumerates a
//!   superset of the satisfied intervals; each candidate is then
//!   verified against its upper bound (and, rarely, its `!=`
//!   exclusions).
//! - string constraints pinned to a **single value** (`s = "v"`) live
//!   in a hash map keyed by that value; constraints with **prefix**
//!   conjuncts are bucketed under their first prefix, probed by
//!   enumerating every prefix of the published string. Both bucket
//!   kinds re-verify hits with [`Constraint::satisfied_by`] (the
//!   bucket key is necessary, not sufficient).
//! - `[attr] *` **presence** constraints are satisfied by any value.
//! - everything else (booleans, exotic string shapes) falls back to a
//!   per-attribute scan with exact verification — still restricted to
//!   attributes the publication carries.
//!
//! # Dual-endpoint containment structure
//!
//! Containment and overlap between a query interval `[lq, hq]` and the
//! stored intervals are two-sided endpoint conditions:
//!
//! - stored **covers** query: `lo ≤ lq` and `hi ≥ hq`
//! - stored **covered by** query: `lo ≥ lq` and `hi ≤ hq`
//! - stored **overlaps** query: `lo ≤ hq` and `hi ≥ lq`
//!
//! (inclusive comparisons on effective endpoints in the `total_cmp`
//! order; exclusivity flags and `!=` exclusions only ever *shrink* the
//! true relation, so these are prune conditions). Each [`AttrIndex`]
//! therefore keeps every numeric constraint — point or interval — in
//! two additional ordered maps: `by_lo`, keyed by the effective lower
//! endpoint, and `by_hi`, keyed by the effective upper endpoint. Each
//! query becomes a *pair of range scans*, one per endpoint map, run in
//! lock-step; whichever side exhausts first already enumerates every
//! row satisfying its half of the conjunction, so the candidate set is
//! the smaller enumeration and total work is bounded by twice the
//! smaller side (instead of a per-constraint sweep of the attribute).
//! Candidates are then verified against the authoritative
//! [`Constraint`] relation.
//!
//! # Soundness
//!
//! Every fast path is *prune + verify*: the bucket structures only
//! narrow the candidate set, and any candidate that is not exact by
//! construction is re-checked against the authoritative constraint.
//! The index therefore returns byte-for-byte the same id sets as the
//! linear scans, including for unsatisfiable filters (never returned),
//! zero-arity filters (always returned by `matching`), and the
//! conservative [`Constraint::overlaps`] over-approximation contract
//! documented in [`crate::constraint`]. The routing layer keeps the
//! linear scans alive as a differential oracle.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;

use crate::fasthash::FastMap;

use crate::constraint::{Bound, Constraint, Interval, TotalF64};
use crate::filter::Filter;
use crate::publication::Publication;
use crate::value::Value;

/// Key types a [`MatchIndex`] can index filters under (`AdvId`,
/// `SubId`, …).
pub trait IndexKey: Copy + Ord + Eq + Hash + Debug {}
impl<T: Copy + Ord + Eq + Hash + Debug> IndexKey for T {}

/// One general numeric interval constraint, denormalized for cheap
/// verification during the prefix scan. The lower bound is the bucket
/// key it is stored under.
#[derive(Debug, Clone)]
struct NumRow<K> {
    key: K,
    /// Lower bound is exclusive (`x > lo` rather than `x ≥ lo`).
    lo_excl: bool,
    /// Effective upper bound in the total order.
    hi: f64,
    /// Upper bound is exclusive.
    hi_excl: bool,
    /// The constraint carries `!=` exclusions; hits must be re-checked
    /// against the authoritative constraint.
    has_exclusions: bool,
}

/// Where a constraint lives inside an [`AttrIndex`]. Classification is
/// a pure function of the constraint, so insert and remove agree.
enum Slot {
    Present,
    NumEq(u64),
    NumRange {
        lo: TotalF64,
        lo_excl: bool,
        hi: f64,
        hi_excl: bool,
        has_exclusions: bool,
    },
    StrEq(String, bool),
    StrPre(String, bool),
    Other,
}

fn classify(c: &Constraint) -> Slot {
    match c {
        Constraint::Present => Slot::Present,
        Constraint::Num(n) => {
            if n.excluded.is_empty() {
                if let Some(p) = n.interval.as_point() {
                    return Slot::NumEq(p.to_bits());
                }
            }
            let (lo, lo_excl) = match n.interval.lo() {
                Bound::Unbounded => (TotalF64::MIN.0, false),
                Bound::Incl(v) => (*v, false),
                Bound::Excl(v) => (*v, true),
            };
            let (hi, hi_excl) = match n.interval.hi() {
                Bound::Unbounded => (TotalF64::MAX.0, false),
                Bound::Incl(v) => (*v, false),
                Bound::Excl(v) => (*v, true),
            };
            Slot::NumRange {
                lo: TotalF64(lo),
                lo_excl,
                hi,
                hi_excl,
                has_exclusions: !n.excluded.is_empty(),
            }
        }
        Constraint::Str(s) => {
            // `exact`: reaching the bucket already proves satisfaction,
            // so probes may bump without consulting the authoritative
            // constraint (the data-local trick of `NumRow`).
            let plain = s.excluded.is_empty() && s.suffixes.is_empty() && s.contains.is_empty();
            if let Some(p) = s.interval.as_point() {
                Slot::StrEq(p.clone(), plain && s.prefixes.is_empty())
            } else if let Some(p) = s.prefixes.first() {
                let exact = plain && s.prefixes.len() == 1 && s.interval == Interval::full();
                Slot::StrPre(p.clone(), exact)
            } else {
                Slot::Other
            }
        }
        Constraint::Bool(_) => Slot::Other,
        // Unsatisfiable filters are kept out of the attribute indexes
        // entirely (MatchIndex::insert).
        Constraint::Empty => unreachable!("empty constraints are not indexed"),
    }
}

/// Effective total-order endpoints of a numeric slot (point constraints
/// are the degenerate interval `[p, p]`); `None` for non-numeric slots.
fn num_endpoints(slot: &Slot) -> Option<(TotalF64, TotalF64)> {
    match slot {
        Slot::NumEq(bits) => {
            let p = TotalF64(f64::from_bits(*bits));
            Some((p, p))
        }
        Slot::NumRange { lo, hi, .. } => Some((*lo, TotalF64(*hi))),
        _ => None,
    }
}

/// One string-bucket row. `exact` means a probe that reaches the
/// bucket (equal string / matching prefix) is already known satisfied,
/// so the hot matching paths skip the per-key constraint lookup.
#[derive(Debug, Clone)]
struct StrRow<K> {
    key: K,
    exact: bool,
}

/// One row of the dual-endpoint containment structure. The stored
/// interval travels with the key so that containment/overlap
/// verification is data-local (no tree lookup per candidate); rows
/// whose constraint carries `!=` exclusions defer to the authoritative
/// constraint instead, because exclusions can flip the exact relation
/// at interval boundaries.
#[derive(Debug, Clone)]
struct EndRow<K> {
    key: K,
    interval: Interval<f64>,
    has_exclusions: bool,
}

fn drop_from_bucket<Q: Eq + Hash, K: PartialEq>(map: &mut FastMap<Q, Vec<K>>, slot: &Q, key: &K) {
    if let Some(keys) = map.get_mut(slot) {
        keys.retain(|k| k != key);
        if keys.is_empty() {
            map.remove(slot);
        }
    }
}

fn drop_str_row<K: PartialEq>(map: &mut FastMap<String, Vec<StrRow<K>>>, slot: &str, key: &K) {
    if let Some(rows) = map.get_mut(slot) {
        rows.retain(|r| r.key != *key);
        if rows.is_empty() {
            map.remove(slot);
        }
    }
}

fn drop_from_tree<K: PartialEq>(
    map: &mut BTreeMap<TotalF64, Vec<EndRow<K>>>,
    at: TotalF64,
    key: &K,
) {
    if let Some(rows) = map.get_mut(&at) {
        rows.retain(|r| r.key != *key);
        if rows.is_empty() {
            map.remove(&at);
        }
    }
}

/// Runs two candidate enumerations in lock-step and returns whichever
/// exhausts first.
///
/// Both iterators enumerate (from opposite endpoint maps) a superset of
/// the same target set, so either one alone is a valid candidate set;
/// racing them bounds the work by twice the *smaller* enumeration
/// without knowing in advance which side is more selective.
fn min_side<K>(mut a: impl Iterator<Item = K>, mut b: impl Iterator<Item = K>) -> Vec<K> {
    let mut av = Vec::new();
    let mut bv = Vec::new();
    loop {
        match a.next() {
            Some(k) => av.push(k),
            None => return av,
        }
        match b.next() {
            Some(k) => bv.push(k),
            None => return bv,
        }
    }
}

/// The per-attribute constraint structures; see the module docs for
/// the layout.
#[derive(Debug, Clone)]
struct AttrIndex<K> {
    /// Authoritative constraint per key, also used for the overlap
    /// disqualification scan (sorted so results come out ordered).
    cons: BTreeMap<K, Constraint>,
    num_eq: FastMap<u64, Vec<K>>,
    num_lo: BTreeMap<TotalF64, Vec<NumRow<K>>>,
    /// Every numeric constraint (points included), keyed by its
    /// effective lower endpoint: one half of the dual-endpoint
    /// containment structure (module docs).
    by_lo: BTreeMap<TotalF64, Vec<EndRow<K>>>,
    /// The same rows keyed by their effective upper endpoint.
    by_hi: BTreeMap<TotalF64, Vec<EndRow<K>>>,
    str_eq: FastMap<String, Vec<StrRow<K>>>,
    str_pre: FastMap<String, Vec<StrRow<K>>>,
    present: Vec<K>,
    other: Vec<K>,
}

impl<K: IndexKey> AttrIndex<K> {
    fn new() -> Self {
        AttrIndex {
            cons: BTreeMap::new(),
            num_eq: FastMap::default(),
            num_lo: BTreeMap::new(),
            by_lo: BTreeMap::new(),
            by_hi: BTreeMap::new(),
            str_eq: FastMap::default(),
            str_pre: FastMap::default(),
            present: Vec::new(),
            other: Vec::new(),
        }
    }

    fn insert(&mut self, key: K, c: &Constraint) {
        self.cons.insert(key, c.clone());
        let slot = classify(c);
        if let (Some((lo, hi)), Constraint::Num(n)) = (num_endpoints(&slot), c) {
            let row = EndRow {
                key,
                interval: n.interval.clone(),
                has_exclusions: !n.excluded.is_empty(),
            };
            self.by_lo.entry(lo).or_default().push(row.clone());
            self.by_hi.entry(hi).or_default().push(row);
        }
        match slot {
            Slot::Present => self.present.push(key),
            Slot::NumEq(bits) => self.num_eq.entry(bits).or_default().push(key),
            Slot::NumRange {
                lo,
                lo_excl,
                hi,
                hi_excl,
                has_exclusions,
            } => self.num_lo.entry(lo).or_default().push(NumRow {
                key,
                lo_excl,
                hi,
                hi_excl,
                has_exclusions,
            }),
            Slot::StrEq(s, exact) => self
                .str_eq
                .entry(s)
                .or_default()
                .push(StrRow { key, exact }),
            Slot::StrPre(p, exact) => self
                .str_pre
                .entry(p)
                .or_default()
                .push(StrRow { key, exact }),
            Slot::Other => self.other.push(key),
        }
    }

    fn remove(&mut self, key: K) {
        let Some(c) = self.cons.remove(&key) else {
            return;
        };
        let slot = classify(&c);
        if let Some((lo, hi)) = num_endpoints(&slot) {
            drop_from_tree(&mut self.by_lo, lo, &key);
            drop_from_tree(&mut self.by_hi, hi, &key);
        }
        match slot {
            Slot::Present => self.present.retain(|k| *k != key),
            Slot::NumEq(bits) => drop_from_bucket(&mut self.num_eq, &bits, &key),
            Slot::NumRange { lo, .. } => {
                if let Some(rows) = self.num_lo.get_mut(&lo) {
                    rows.retain(|r| r.key != key);
                    if rows.is_empty() {
                        self.num_lo.remove(&lo);
                    }
                }
            }
            Slot::StrEq(s, _) => drop_str_row(&mut self.str_eq, &s, &key),
            Slot::StrPre(p, _) => drop_str_row(&mut self.str_pre, &p, &key),
            Slot::Other => self.other.retain(|k| *k != key),
        }
    }

    fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// Calls `bump(key)` once for every key whose constraint on this
    /// attribute is satisfied by `value`. Exact: no false positives,
    /// no false negatives, at most one bump per key.
    fn count_satisfied(&self, value: &Value, bump: &mut impl FnMut(K)) {
        if let Some(x) = value.as_f64() {
            self.num_satisfied(x, value, bump);
        } else if let Some(s) = value.as_str() {
            self.str_satisfied(s, value, bump);
        }
        self.common_satisfied(value, bump);
    }

    /// The numeric probe: the point bucket plus the prefix scan of the
    /// interval map. `x` is `value` as an f64.
    fn num_satisfied(&self, x: f64, value: &Value, bump: &mut impl FnMut(K)) {
        if let Some(keys) = self.num_eq.get(&x.to_bits()) {
            for &k in keys {
                bump(k);
            }
        }
        for (lo, rows) in self.num_lo.range(..=TotalF64(x)) {
            for row in rows {
                if Self::num_row_hit(*lo, row, x, value, &self.cons) {
                    bump(row.key);
                }
            }
        }
    }

    /// Whether interval `row` (stored under lower bound `lo`) is
    /// satisfied by `x`, given `lo ≤ x` already holds. Shared verify
    /// step of the single-probe scan and the batch sweep.
    fn num_row_hit(
        lo: TotalF64,
        row: &NumRow<K>,
        x: f64,
        value: &Value,
        cons: &BTreeMap<K, Constraint>,
    ) -> bool {
        if row.lo_excl && lo.0.total_cmp(&x) == Ordering::Equal {
            return false;
        }
        match x.total_cmp(&row.hi) {
            Ordering::Greater => return false,
            Ordering::Equal if row.hi_excl => return false,
            _ => {}
        }
        !row.has_exclusions || cons[&row.key].satisfied_by(value)
    }

    /// The numeric probes of a *batch*, `probes` sorted ascending by
    /// `f64::total_cmp`. Equivalent to calling [`AttrIndex::num_satisfied`]
    /// once per probe, but the interval map is swept exactly once:
    /// rows enter an active set when the ascending frontier passes
    /// their lower bound and retire permanently once it passes their
    /// upper bound, so each probe pays for its *stabbing set* instead
    /// of the full `lo ≤ x` prefix.
    fn num_satisfied_batch(
        &self,
        probes: &[(usize, f64, &Value)],
        bump: &mut impl FnMut(usize, K),
    ) {
        let mut pending = self.num_lo.iter();
        let mut next = pending.next();
        let mut active: Vec<(TotalF64, &NumRow<K>)> = Vec::new();
        for &(pi, x, value) in probes {
            if let Some(keys) = self.num_eq.get(&x.to_bits()) {
                for &k in keys {
                    bump(pi, k);
                }
            }
            while let Some((lo, rows)) = next {
                if lo.0.total_cmp(&x) == Ordering::Greater {
                    break;
                }
                active.extend(rows.iter().map(|r| (*lo, r)));
                next = pending.next();
            }
            let mut i = 0;
            while i < active.len() {
                let (lo, row) = active[i];
                if x.total_cmp(&row.hi) == Ordering::Greater {
                    // Later probes are ≥ x in the total order, so the
                    // row can never be satisfied again: retire it.
                    active.swap_remove(i);
                    continue;
                }
                if Self::num_row_hit(lo, row, x, value, &self.cons) {
                    bump(pi, row.key);
                }
                i += 1;
            }
        }
    }

    /// The string probe: the point bucket plus every prefix of the
    /// published string. `exact` rows bump straight from the bucket;
    /// the rest verify against the authoritative constraint.
    fn str_satisfied(&self, s: &str, value: &Value, bump: &mut impl FnMut(K)) {
        if let Some(rows) = self.str_eq.get(s) {
            for row in rows {
                if row.exact || self.cons[&row.key].satisfied_by(value) {
                    bump(row.key);
                }
            }
        }
        if !self.str_pre.is_empty() {
            for end in 0..=s.len() {
                if !s.is_char_boundary(end) {
                    continue;
                }
                if let Some(rows) = self.str_pre.get(&s[..end]) {
                    for row in rows {
                        if row.exact || self.cons[&row.key].satisfied_by(value) {
                            bump(row.key);
                        }
                    }
                }
            }
        }
    }

    /// The kind-independent buckets: presence constraints (satisfied
    /// by any value) and the verified fallback scan.
    fn common_satisfied(&self, value: &Value, bump: &mut impl FnMut(K)) {
        for &k in &self.present {
            bump(k);
        }
        for &k in &self.other {
            if self.cons[&k].satisfied_by(value) {
                bump(k);
            }
        }
    }

    /// Numeric candidates from the dual-endpoint maps: rows whose
    /// effective endpoints pass the inclusive prune conditions
    /// `lo ≤ lo_max` and `hi ≥ hi_min` (module docs), enumerated from
    /// whichever endpoint map is more selective.
    fn num_candidates(&self, lo_max: TotalF64, hi_min: TotalF64) -> Vec<&EndRow<K>> {
        min_side(
            self.by_lo
                .range(..=lo_max)
                .flat_map(|(_, rows)| rows.iter()),
            self.by_hi.range(hi_min..).flat_map(|(_, rows)| rows.iter()),
        )
    }

    /// The flipped prune (`lo ≥ lo_min`, `hi ≤ hi_max`): candidate
    /// rows *contained in* the queried endpoint window.
    fn num_contained_candidates(&self, lo_min: TotalF64, hi_max: TotalF64) -> Vec<&EndRow<K>> {
        min_side(
            self.by_lo.range(lo_min..).flat_map(|(_, rows)| rows.iter()),
            self.by_hi
                .range(..=hi_max)
                .flat_map(|(_, rows)| rows.iter()),
        )
    }

    /// String/bool/exotic rows, verified against `check`. Booleans and
    /// exotic string shapes share the `other` bucket, so both the
    /// string and the bool query kinds sweep it; `check` is the
    /// authoritative relation and rejects cross-kind rows.
    fn non_num_verified(
        &self,
        strings: bool,
        check: &mut impl FnMut(K) -> bool,
        bump: &mut impl FnMut(K),
    ) {
        if strings {
            for rows in self.str_eq.values().chain(self.str_pre.values()) {
                for row in rows {
                    if check(row.key) {
                        bump(row.key);
                    }
                }
            }
        }
        for &k in &self.other {
            if check(k) {
                bump(k);
            }
        }
    }

    /// Calls `bump(key)` once per key whose constraint on this
    /// attribute covers `qc`. Exact per [`Constraint::covers`].
    fn count_covering(&self, qc: &Constraint, bump: &mut impl FnMut(K)) {
        // A presence constraint covers every satisfiable constraint.
        for &k in &self.present {
            bump(k);
        }
        let mut check = |k: K| self.cons[&k].covers(qc);
        match qc {
            // Only `Present` covers `Present` (already bumped above).
            Constraint::Present => {}
            Constraint::Num(n) => {
                let (ql, qh) = n.interval.total_endpoints();
                for r in self.num_candidates(ql, qh) {
                    // Exclusion-free stored rows verify from the row
                    // itself: covering is pure interval containment
                    // (stored exclusions are what make `covers` more
                    // than that, and the query's own exclusions never
                    // weaken it).
                    let hit = if r.has_exclusions {
                        check(r.key)
                    } else {
                        n.interval.is_subset(&r.interval)
                    };
                    if hit {
                        bump(r.key);
                    }
                }
            }
            Constraint::Str(_) => self.non_num_verified(true, &mut check, bump),
            Constraint::Bool(_) => self.non_num_verified(false, &mut check, bump),
            // Satisfiable query filters never carry empty constraints.
            Constraint::Empty => unreachable!("empty constraints are not queried"),
        }
    }

    /// Calls `bump(key)` once per key whose constraint on this
    /// attribute is covered by `qc`. Exact per [`Constraint::covers`].
    fn count_covered_by(&self, qc: &Constraint, bump: &mut impl FnMut(K)) {
        let mut check = |k: K| qc.covers(&self.cons[&k]);
        match qc {
            // `Present` covers every stored constraint on the attribute.
            Constraint::Present => {
                for &k in self.cons.keys() {
                    bump(k);
                }
            }
            Constraint::Num(n) => {
                let (ql, qh) = n.interval.total_endpoints();
                // An exclusion-free *query* covers exactly the rows
                // whose interval it contains (stored exclusions only
                // shrink the row); with query exclusions the boundary
                // cases need the authoritative constraint.
                let q_clean = n.excluded.is_empty();
                for r in self.num_contained_candidates(ql, qh) {
                    let hit = if q_clean {
                        r.interval.is_subset(&n.interval)
                    } else {
                        check(r.key)
                    };
                    if hit {
                        bump(r.key);
                    }
                }
            }
            Constraint::Str(_) => self.non_num_verified(true, &mut check, bump),
            Constraint::Bool(_) => self.non_num_verified(false, &mut check, bump),
            Constraint::Empty => unreachable!("empty constraints are not queried"),
        }
    }

    /// Keys whose constraint on this attribute overlaps `qc`, sorted.
    /// Exact per [`Constraint::overlaps`] (including its conservative
    /// over-approximation for exotic string shapes).
    fn overlap_qualified(&self, qc: &Constraint) -> Vec<K> {
        // Presence overlaps everything, in both directions.
        if matches!(qc, Constraint::Present) {
            return self.cons.keys().copied().collect();
        }
        let mut out: Vec<K> = self.present.to_vec();
        let mut check = |k: K| self.cons[&k].overlaps(qc);
        let mut push = |k: K| out.push(k);
        match qc {
            Constraint::Num(n) => {
                let (ql, qh) = n.interval.total_endpoints();
                // Without exclusions on either side, constraint
                // overlap is exactly interval overlap; a point-sized
                // intersection that an exclusion deletes is the one
                // case needing the authoritative relation.
                let q_clean = n.excluded.is_empty();
                for r in self.num_candidates(qh, ql) {
                    let hit = if q_clean && !r.has_exclusions {
                        r.interval.overlaps(&n.interval)
                    } else {
                        check(r.key)
                    };
                    if hit {
                        push(r.key);
                    }
                }
            }
            Constraint::Str(_) => self.non_num_verified(true, &mut check, &mut push),
            Constraint::Bool(_) => self.non_num_verified(false, &mut check, &mut push),
            Constraint::Present => unreachable!("handled above"),
            Constraint::Empty => unreachable!("empty constraints are not queried"),
        }
        out.sort_unstable();
        out
    }
}

/// A counting match index over `(key, Filter)` pairs.
///
/// Results are always sorted by key and identical to what the
/// corresponding linear scans produce (see the module docs for the
/// argument; the broker's routing layer additionally asserts this in
/// debug builds).
///
/// # Examples
///
/// ```
/// use transmob_pubsub::{Filter, MatchIndex, Publication};
///
/// let mut ix: MatchIndex<u32> = MatchIndex::new();
/// ix.insert(1, &Filter::builder().ge("x", 0).le("x", 10).build());
/// ix.insert(2, &Filter::builder().ge("x", 20).build());
/// let p = Publication::new().with("x", 5);
/// assert_eq!(ix.matching(&p), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct MatchIndex<K> {
    /// Every indexed filter, satisfiable or not.
    filters: FastMap<K, Filter>,
    /// Constraint count per satisfiable key.
    arity: FastMap<K, usize>,
    /// Satisfiable keys, sorted (overlap candidates).
    sat: BTreeSet<K>,
    /// Satisfiable keys with no constraints: they match everything.
    zero: BTreeSet<K>,
    /// Unsatisfiable keys: they match and overlap nothing.
    unsat: BTreeSet<K>,
    attrs: FastMap<String, AttrIndex<K>>,
}

impl<K> Default for MatchIndex<K> {
    fn default() -> Self {
        MatchIndex {
            filters: FastMap::default(),
            arity: FastMap::default(),
            sat: BTreeSet::new(),
            zero: BTreeSet::new(),
            unsat: BTreeSet::new(),
            attrs: FastMap::default(),
        }
    }
}

impl<K: IndexKey> MatchIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        MatchIndex::default()
    }

    /// Number of indexed filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// The filter indexed under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&Filter> {
        self.filters.get(key)
    }

    /// Indexes `filter` under `key`. Replaces any previous filter for
    /// the key (upsert semantics).
    pub fn insert(&mut self, key: K, filter: &Filter) {
        self.remove(&key);
        self.filters.insert(key, filter.clone());
        if !filter.is_satisfiable() {
            self.unsat.insert(key);
            return;
        }
        self.sat.insert(key);
        self.arity.insert(key, filter.arity());
        if filter.arity() == 0 {
            self.zero.insert(key);
            return;
        }
        for (attr, c) in filter.constraints() {
            self.attrs
                .entry(attr.to_owned())
                .or_insert_with(AttrIndex::new)
                .insert(key, c);
        }
    }

    /// Removes the filter indexed under `key`, reporting whether one
    /// was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(filter) = self.filters.remove(key) else {
            return false;
        };
        if self.unsat.remove(key) {
            return true;
        }
        self.sat.remove(key);
        self.zero.remove(key);
        self.arity.remove(key);
        for (attr, _) in filter.constraints() {
            if let Some(ai) = self.attrs.get_mut(attr) {
                ai.remove(*key);
                if ai.is_empty() {
                    self.attrs.remove(attr);
                }
            }
        }
        true
    }

    /// Keys of filters matching `publication`, sorted.
    ///
    /// Touches only the attribute indexes of attributes the
    /// publication carries, counting satisfied constraints per key; a
    /// key matches iff its count reaches its filter's arity.
    pub fn matching(&self, publication: &Publication) -> Vec<K> {
        let mut out: Vec<K> = self.zero.iter().copied().collect();
        if !self.attrs.is_empty() {
            // Count *down* from the filter's arity and emit on zero: a
            // key can be bumped at most once per attribute, so hitting
            // zero is exactly "every constraint satisfied", and no
            // finalization sweep over the map is needed.
            let mut remaining: FastMap<K, usize> = FastMap::default();
            for (attr, value) in publication.iter() {
                if let Some(ai) = self.attrs.get(attr) {
                    ai.count_satisfied(value, &mut |k| {
                        let r = remaining.entry(k).or_insert_with(|| self.arity[&k]);
                        *r -= 1;
                        if *r == 0 {
                            out.push(k);
                        }
                    });
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// [`MatchIndex::matching`] for every publication of a batch,
    /// returning one sorted key vector per publication (same order as
    /// `pubs`).
    ///
    /// The probes are regrouped *by attribute*: per attribute index,
    /// the batch's numeric values are sorted and the interval map is
    /// swept once for the whole batch (each row is admitted once when
    /// the ascending frontier passes its lower bound and retired once
    /// the frontier passes its upper bound), so per-probe cost drops
    /// from the `lo ≤ x` prefix size to the stabbing-set size. Point,
    /// string, presence, and fallback buckets are probed exactly as in
    /// the single-publication path. Results are identical to mapping
    /// [`MatchIndex::matching`] over the slice (asserted in debug
    /// builds).
    pub fn matching_batch(&self, pubs: &[Publication]) -> Vec<Vec<K>> {
        if pubs.len() == 1 {
            // Degenerate batch: the regrouping machinery has nothing
            // to amortize, so take the single-probe path directly.
            return vec![self.matching(&pubs[0])];
        }
        let mut out: Vec<Vec<K>> = pubs
            .iter()
            .map(|_| self.zero.iter().copied().collect())
            .collect();
        if !self.attrs.is_empty() {
            // Probing appends raw hits to per-publication lists —
            // sequential pushes, no hashing — so the regrouped sweep
            // keeps a loop-sized working set. Counting happens after,
            // one publication at a time through a single reused map
            // (the countdown scheme of `matching`).
            let mut hits: Vec<Vec<K>> = vec![Vec::new(); pubs.len()];
            // Regroup the batch by attribute so each attribute index is
            // visited once with all of its probes.
            let mut by_attr: FastMap<&str, Vec<(usize, &Value)>> = FastMap::default();
            for (pi, p) in pubs.iter().enumerate() {
                for (attr, value) in p.iter() {
                    if self.attrs.contains_key(attr) {
                        by_attr.entry(attr).or_default().push((pi, value));
                    }
                }
            }
            for (attr, probes) in by_attr {
                let ai = &self.attrs[attr];
                let mut nums: Vec<(usize, f64, &Value)> = Vec::new();
                for &(pi, value) in &probes {
                    if let Some(x) = value.as_f64() {
                        nums.push((pi, x, value));
                    } else if let Some(s) = value.as_str() {
                        let h = &mut hits[pi];
                        ai.str_satisfied(s, value, &mut |k| h.push(k));
                    }
                    let h = &mut hits[pi];
                    ai.common_satisfied(value, &mut |k| h.push(k));
                }
                nums.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
                ai.num_satisfied_batch(&nums, &mut |pi, k| hits[pi].push(k));
            }
            let mut remaining: FastMap<K, usize> = FastMap::default();
            for (pi, keys) in hits.into_iter().enumerate() {
                remaining.clear();
                for k in keys {
                    let r = remaining.entry(k).or_insert_with(|| self.arity[&k]);
                    *r -= 1;
                    if *r == 0 {
                        out[pi].push(k);
                    }
                }
            }
        }
        for keys in &mut out {
            keys.sort_unstable();
        }
        #[cfg(debug_assertions)]
        for (pi, p) in pubs.iter().enumerate() {
            debug_assert_eq!(
                out[pi],
                self.matching(p),
                "batch matching diverged from the per-publication path on probe {pi}"
            );
        }
        out
    }

    /// Keys of filters overlapping `filter`, sorted.
    ///
    /// A stored filter overlaps the query iff its constraint overlaps
    /// the query's on *every attribute both sides constrain*;
    /// attributes only one side constrains never disqualify — exactly
    /// the [`Filter::overlaps`] semantics. Per shared attribute the
    /// overlap-qualified keys come out of the dual-endpoint range scans
    /// (module docs); the result is seeded from the attribute promising
    /// the fewest survivors and filtered by the rest.
    pub fn overlapping(&self, filter: &Filter) -> Vec<K> {
        if !filter.is_satisfiable() {
            return Vec::new();
        }
        // Per query attribute at least one stored filter constrains:
        // the attribute index and its overlap-qualified keys.
        let mut relevant: Vec<(&AttrIndex<K>, Vec<K>)> = filter
            .constraints()
            .filter_map(|(attr, qc)| {
                self.attrs
                    .get(attr)
                    .map(|ai| (ai, ai.overlap_qualified(qc)))
            })
            .collect();
        if relevant.is_empty() {
            return self.sat.iter().copied().collect();
        }
        // The keys an attribute allows through are its qualified keys
        // plus every key not constraining it at all, so the survivor
        // count is bounded by |qualified| + (|sat| − |constraining|).
        let seed = (0..relevant.len())
            .min_by_key(|&i| relevant[i].1.len() + self.sat.len() - relevant[i].0.cons.len())
            .expect("relevant is non-empty");
        let (seed_ai, seed_q) = {
            let (ai, q) = &mut relevant[seed];
            (*ai, std::mem::take(q))
        };
        let mut out: Vec<K> = if seed_ai.cons.len() == self.sat.len() {
            // Every satisfiable filter constrains the seed attribute.
            seed_q
        } else {
            self.sat
                .iter()
                .copied()
                .filter(|k| !seed_ai.cons.contains_key(k) || seed_q.binary_search(k).is_ok())
                .collect()
        };
        for (i, (ai, q)) in relevant.iter().enumerate() {
            if i == seed {
                continue;
            }
            out.retain(|k| !ai.cons.contains_key(k) || q.binary_search(k).is_ok());
        }
        out
    }

    /// Keys of stored filters that *cover* `filter` (`stored.covers(filter)`),
    /// sorted. Exact per [`Filter::covers`], including its sound-but-
    /// incomplete string contract.
    ///
    /// Counting scheme: a stored filter covers the query iff every one
    /// of its constraints covers the query's constraint on the same
    /// attribute — so bumps only come from the query's attributes, and
    /// a key qualifies when its bump count reaches its own arity.
    /// Zero-arity filters cover everything; unsatisfiable queries are
    /// covered by everything.
    pub fn covering(&self, filter: &Filter) -> Vec<K> {
        if !filter.is_satisfiable() {
            let mut out: Vec<K> = self.filters.keys().copied().collect();
            out.sort_unstable();
            return out;
        }
        let mut out: Vec<K> = self.zero.iter().copied().collect();
        let mut counts: FastMap<K, usize> = FastMap::default();
        for (attr, qc) in filter.constraints() {
            if let Some(ai) = self.attrs.get(attr) {
                ai.count_covering(qc, &mut |k| *counts.entry(k).or_insert(0) += 1);
            }
        }
        for (k, n) in counts {
            if self.arity.get(&k) == Some(&n) {
                out.push(k);
            }
        }
        out.sort_unstable();
        out
    }

    /// Keys of stored filters `filter` covers (`filter.covers(stored)`),
    /// sorted — the active-retraction / covering-release candidate set.
    ///
    /// Counting scheme: the query covers a satisfiable stored filter
    /// iff the stored filter carries a covered constraint on *every*
    /// query attribute, so a key qualifies when its bump count reaches
    /// the query's arity. Unsatisfiable stored filters are covered by
    /// anything; a zero-arity satisfiable query covers everything.
    pub fn covered_by(&self, filter: &Filter) -> Vec<K> {
        let mut out: Vec<K> = self.unsat.iter().copied().collect();
        if !filter.is_satisfiable() {
            return out; // BTreeSet iteration order: already sorted
        }
        if filter.arity() == 0 {
            let mut out: Vec<K> = self.filters.keys().copied().collect();
            out.sort_unstable();
            return out;
        }
        if filter.arity() == 1 {
            // Single-attribute query: every bump qualifies outright
            // (each attribute bumps a key at most once), so the
            // counting map is pure overhead on the release hot path.
            let (attr, qc) = filter.constraints().next().expect("arity 1");
            if let Some(ai) = self.attrs.get(attr) {
                ai.count_covered_by(qc, &mut |k| out.push(k));
            }
            out.sort_unstable();
            return out;
        }
        let mut counts: FastMap<K, usize> = FastMap::default();
        for (attr, qc) in filter.constraints() {
            if let Some(ai) = self.attrs.get(attr) {
                ai.count_covered_by(qc, &mut |k| *counts.entry(k).or_insert(0) += 1);
            }
        }
        for (k, n) in counts {
            if n == filter.arity() {
                out.push(k);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Op, Predicate};

    /// The reference implementations the index must agree with.
    fn linear_matching(table: &BTreeMap<u32, Filter>, p: &Publication) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.matches(p))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_overlapping(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.overlaps(q))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_covering(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| f.covers(q))
            .map(|(k, _)| *k)
            .collect()
    }

    fn linear_covered_by(table: &BTreeMap<u32, Filter>, q: &Filter) -> Vec<u32> {
        table
            .iter()
            .filter(|(_, f)| q.covers(f))
            .map(|(k, _)| *k)
            .collect()
    }

    fn build(filters: Vec<Filter>) -> (BTreeMap<u32, Filter>, MatchIndex<u32>) {
        let mut table = BTreeMap::new();
        let mut ix = MatchIndex::new();
        for (i, f) in filters.into_iter().enumerate() {
            ix.insert(i as u32, &f);
            table.insert(i as u32, f);
        }
        (table, ix)
    }

    fn assorted_filters() -> Vec<Filter> {
        vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 5).le("x", 20).ne("x", 7).build(),
            Filter::builder().eq("x", 7).build(),
            Filter::builder().gt("x", 10).build(),
            Filter::builder().lt("x", 0).build(),
            Filter::builder().eq("x", 7).ne("x", 7).build(), // unsatisfiable
            Filter::new(vec![]),                             // matches everything
            Filter::builder().any("x").build(),
            Filter::builder().eq("s", "alpha").build(),
            Filter::builder().prefix("s", "al").build(),
            Filter::builder()
                .prefix("s", "be")
                .suffix("s", "ta")
                .build(),
            Filter::builder().contains("s", "ph").build(),
            Filter::builder().ge("s", "a").lt("s", "c").build(),
            Filter::builder().eq("b", true).build(),
            Filter::builder().eq("b", false).build(),
            Filter::builder().ge("x", 0).eq("s", "alpha").build(),
            Filter::builder().ge("x", 0).le("y", 5).build(),
            Filter::builder().eq("x", 3.5).build(),
            Filter::builder().gt("x", 3).lt("x", 4).build(),
        ]
    }

    fn probes() -> Vec<Publication> {
        let mut ps = vec![Publication::new()];
        for x in [-5i64, 0, 3, 7, 10, 11, 15, 25] {
            ps.push(Publication::new().with("x", x));
            ps.push(Publication::new().with("x", x).with("y", 3));
        }
        ps.push(Publication::new().with("x", 3.5));
        ps.push(Publication::new().with("x", 3.25));
        for s in ["alpha", "al", "beta", "bta", "graph", "c", ""] {
            ps.push(Publication::new().with("s", s));
            ps.push(Publication::new().with("s", s).with("x", 7));
        }
        ps.push(Publication::new().with("b", true));
        ps.push(Publication::new().with("b", false));
        ps.push(Publication::new().with("z", 1));
        ps
    }

    #[test]
    fn matching_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p), "probe {p}");
        }
    }

    #[test]
    fn overlapping_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for q in assorted_filters() {
            assert_eq!(
                ix.overlapping(&q),
                linear_overlapping(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn covering_agrees_with_linear_scan() {
        let (table, ix) = build(assorted_filters());
        for q in assorted_filters() {
            assert_eq!(ix.covering(&q), linear_covering(&table, &q), "query {q}");
            assert_eq!(
                ix.covered_by(&q),
                linear_covered_by(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn covering_endpoint_edge_cases() {
        // Exercises the inclusive-prune / exact-verify boundary: open
        // vs closed bounds meeting at the same endpoint, unbounded
        // sides, exclusions sitting on interval edges, and point
        // constraints as degenerate intervals.
        let (table, ix) = build(vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().gt("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 0).lt("x", 10).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 0).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 5).build(),
            Filter::builder().ge("x", 0).build(),
            Filter::builder().le("x", 10).build(),
            Filter::builder().eq("x", 0).build(),
            Filter::builder().eq("x", 10).build(),
            Filter::builder().any("x").build(),
            Filter::new(vec![]),
        ]);
        let queries = [
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().gt("x", 0).lt("x", 10).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 10).build(),
            Filter::builder().eq("x", 0).build(),
            Filter::builder().eq("x", 10).build(),
            Filter::builder().ge("x", 2).le("x", 8).build(),
            Filter::builder().ge("x", 2).le("x", 8).ne("x", 5).build(),
            Filter::builder().ge("x", 0).build(),
            Filter::builder().any("x").build(),
        ];
        for q in queries {
            assert_eq!(ix.covering(&q), linear_covering(&table, &q), "query {q}");
            assert_eq!(
                ix.covered_by(&q),
                linear_covered_by(&table, &q),
                "query {q}"
            );
            assert_eq!(
                ix.overlapping(&q),
                linear_overlapping(&table, &q),
                "query {q}"
            );
        }
    }

    #[test]
    fn churn_keeps_index_consistent() {
        let filters = assorted_filters();
        let (mut table, mut ix) = build(filters.clone());
        // Remove every other key, re-check, re-insert shifted filters,
        // re-check: exercises bucket vacation and re-population.
        for k in (0..filters.len() as u32).step_by(2) {
            assert!(ix.remove(&k));
            assert!(!ix.remove(&k));
            table.remove(&k);
        }
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p));
        }
        for (i, f) in filters.iter().enumerate().take(8) {
            let k = 100 + i as u32;
            ix.insert(k, f);
            table.insert(k, f.clone());
        }
        for p in probes() {
            assert_eq!(ix.matching(&p), linear_matching(&table, &p));
        }
        for q in filters.iter() {
            assert_eq!(ix.overlapping(q), linear_overlapping(&table, q));
            assert_eq!(ix.covering(q), linear_covering(&table, q));
            assert_eq!(ix.covered_by(q), linear_covered_by(&table, q));
        }
    }

    #[test]
    fn upsert_replaces_previous_filter() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().ge("x", 0).le("x", 10).build());
        ix.insert(1u32, &Filter::builder().ge("x", 50).build());
        let p = Publication::new().with("x", 5);
        assert!(ix.matching(&p).is_empty());
        assert_eq!(ix.matching(&Publication::new().with("x", 60)), vec![1]);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn open_bounds_are_respected() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().gt("x", 10).le("x", 20).build());
        assert!(ix.matching(&Publication::new().with("x", 10)).is_empty());
        assert_eq!(ix.matching(&Publication::new().with("x", 11)), vec![1]);
        assert_eq!(ix.matching(&Publication::new().with("x", 20)), vec![1]);
        assert!(ix.matching(&Publication::new().with("x", 21)).is_empty());
    }

    #[test]
    fn mismatched_kinds_do_not_match() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().ge("x", 0).build());
        ix.insert(2u32, &Filter::builder().eq("x", "zero").build());
        assert_eq!(ix.matching(&Publication::new().with("x", 1)), vec![1]);
        assert_eq!(ix.matching(&Publication::new().with("x", "zero")), vec![2]);
    }

    #[test]
    fn presence_constraint_matches_any_kind() {
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::new(vec![Predicate::any("x")]));
        for v in [Value::Int(1), Value::from("s"), Value::Bool(true)] {
            let mut p = Publication::new();
            p.set("x", v);
            assert_eq!(ix.matching(&p), vec![1]);
        }
        assert!(ix.matching(&Publication::new().with("y", 1)).is_empty());
    }

    #[test]
    fn int_float_promotion_hits_point_buckets() {
        // `x = 7` built from an integer predicate must match the float
        // publication 7.0 and vice versa (both normalize to f64 bits).
        let mut ix = MatchIndex::new();
        ix.insert(1u32, &Filter::builder().eq("x", 7).build());
        assert_eq!(ix.matching(&Publication::new().with("x", 7.0)), vec![1]);
        ix.insert(2u32, &Filter::builder().eq("y", 2.0).build());
        assert_eq!(ix.matching(&Publication::new().with("y", 2)), vec![2]);
    }

    #[test]
    fn overlap_ignores_attrs_only_one_side_constrains() {
        let mut ix = MatchIndex::new();
        ix.insert(
            1u32,
            &Filter::builder().ge("price", 0).le("price", 50).build(),
        );
        let q = Filter::builder().ge("price", 40).eq("sym", "A").build();
        assert_eq!(ix.overlapping(&q), vec![1]);
        let disjoint = Filter::builder().gt("price", 60).build();
        assert!(ix.overlapping(&disjoint).is_empty());
    }

    #[test]
    fn batch_matching_agrees_with_per_publication_matching() {
        let (table, ix) = build(assorted_filters());
        let batch = probes();
        let got = ix.matching_batch(&batch);
        assert_eq!(got.len(), batch.len());
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
        // Duplicated, unsorted, and empty batches behave identically.
        let mut shuffled: Vec<Publication> = batch.iter().rev().cloned().collect();
        shuffled.extend(batch.iter().cloned());
        for (i, p) in shuffled.iter().enumerate() {
            assert_eq!(
                ix.matching_batch(&shuffled)[i],
                ix.matching(p),
                "shuffled probe {i}"
            );
        }
        assert!(ix.matching_batch(&[]).is_empty());
    }

    #[test]
    fn batch_sweep_handles_boundary_and_retirement_cases() {
        // Rows whose bounds collide with probe values in every
        // open/closed combination, probed in an order that forces
        // admission and retirement mid-sweep — including equal probes
        // (no retirement between them) and a probe past every hi.
        let (table, ix) = build(vec![
            Filter::builder().ge("x", 0).le("x", 10).build(),
            Filter::builder().gt("x", 0).le("x", 10).build(),
            Filter::builder().ge("x", 0).lt("x", 10).build(),
            Filter::builder().gt("x", 0).lt("x", 10).build(),
            Filter::builder().ge("x", 0).le("x", 10).ne("x", 5).build(),
            Filter::builder()
                .ge("x", 10)
                .le("x", 10)
                .ne("x", 10)
                .build(),
            Filter::builder().eq("x", 0).build(),
            Filter::builder().eq("x", 10).build(),
            Filter::builder().ge("x", 5).build(),
            Filter::builder().le("x", 5).build(),
        ]);
        let batch: Vec<Publication> = [-1i64, 0, 0, 5, 5, 10, 10, 11, 100]
            .into_iter()
            .map(|x| Publication::new().with("x", x))
            .collect();
        let got = ix.matching_batch(&batch);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
    }

    #[test]
    fn batch_matching_mixes_value_kinds() {
        let (table, ix) = build(assorted_filters());
        let batch = vec![
            Publication::new().with("x", 7).with("s", "alpha"),
            Publication::new().with("s", "beta").with("b", true),
            Publication::new(),
            Publication::new().with("x", 3.5).with("y", 2),
            Publication::new().with("b", false).with("x", 25),
        ];
        let got = ix.matching_batch(&batch);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], linear_matching(&table, p), "probe {i} ({p})");
        }
    }

    #[test]
    fn predicate_ops_needing_fallback_paths() {
        // Suffix-only and contains-only string constraints take the
        // `other` fallback; make sure they are exact there.
        let (table, ix) = build(vec![
            Filter::new(vec![Predicate::new("s", Op::StrSuffix, "ta")]),
            Filter::new(vec![Predicate::new("s", Op::StrContains, "et")]),
            Filter::new(vec![Predicate::new("s", Op::Neq, "beta")]),
        ]);
        for s in ["beta", "theta", "et", "", "ta"] {
            let p = Publication::new().with("s", s);
            assert_eq!(ix.matching(&p), linear_matching(&table, &p), "s={s}");
        }
    }
}
