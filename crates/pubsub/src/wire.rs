//! Compact binary wire encoding for the pub/sub data model.
//!
//! The TCP runtime's binary codec (see `transmob-runtime::codec`)
//! frames protocol messages as length-prefixed byte strings. This
//! module holds the layer-0 pieces every message type builds on:
//!
//! - **varints** — unsigned LEB128 for lengths, counts and ids;
//!   zig-zag LEB128 for signed integers. Small values (the common
//!   case for broker/client ids and sequence numbers) cost one byte.
//! - **interned attribute keys** — publications and predicates repeat
//!   a small vocabulary of attribute names over and over. Each
//!   connection negotiates a string table incrementally: the first
//!   use of a key ships `0x00 + len + bytes` and implicitly assigns
//!   the next table id; every later use ships just `varint(id + 1)`.
//!   Encoder and decoder stay in sync because frames are encoded and
//!   decoded in connection order; both sides reset the table when a
//!   link is re-established, so a redial starts from a clean slate.
//! - the [`Wire`] trait — structural encode/decode for every type
//!   that can appear inside a frame, implemented here for the pub/sub
//!   vocabulary and by the `transmob-broker` / `transmob-core` crates
//!   for their message enums.
//!
//! # Robustness contract
//!
//! Decoding never panics and never allocates proportionally to a
//! length field alone: every claimed collection or string length is
//! checked against the bytes actually remaining in the frame before
//! any allocation, and the decode-side string table is capped. A
//! corrupt frame yields a descriptive [`WireError`] so the transport
//! can count it and name the link-death cause.

use std::fmt;

use crate::fasthash::FastMap;
use crate::message::PublicationMsg;
use crate::message::{
    AdvId, Advertisement, BrokerId, ClientId, MoveId, PubId, SubId, Subscription,
};
use crate::predicate::{Op, Predicate};
use crate::publication::Publication;
use crate::value::Value;
use crate::Filter;

/// Hard cap on the decode-side string table (entries), bounding the
/// memory a misbehaving peer can pin with fabricated intern entries.
pub const MAX_INTERNED_STRINGS: usize = 1 << 16;

/// A decode failure: the frame bytes do not describe a valid message.
///
/// Carries a human-readable reason so the transport layer can report
/// *why* a link died (see the per-link decode-failure counters in the
/// TCP runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Encoder half of the per-connection attribute-key string table.
#[derive(Debug, Default)]
pub struct StrEncTable {
    ids: FastMap<String, u32>,
}

impl StrEncTable {
    /// A fresh (empty) table, as negotiated at link establishment.
    pub fn new() -> Self {
        StrEncTable::default()
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Decoder half of the per-connection attribute-key string table.
#[derive(Debug, Default)]
pub struct StrDecTable {
    strs: Vec<String>,
}

impl StrDecTable {
    /// A fresh (empty) table, as negotiated at link establishment.
    pub fn new() -> Self {
        StrDecTable::default()
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.strs.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strs.is_empty()
    }
}

/// Byte sink for one frame payload, carrying the connection's encoder
/// string table.
#[derive(Debug)]
pub struct WireWriter<'a> {
    buf: &'a mut Vec<u8>,
    strs: &'a mut StrEncTable,
}

impl<'a> WireWriter<'a> {
    /// Wraps an output buffer and the connection's intern table.
    pub fn new(buf: &'a mut Vec<u8>, strs: &'a mut StrEncTable) -> Self {
        WireWriter { buf, strs }
    }

    /// Appends one raw byte.
    pub fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Appends a zig-zag LEB128 signed varint.
    pub fn varint_i64(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends an IEEE-754 double, bit-exact (NaN survives — unlike
    /// the JSON path, which flattens non-finite floats to `null`).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed raw (non-interned) string.
    pub fn str_raw(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an interned attribute key: known keys ship as
    /// `varint(id + 1)`, a first use ships `0x00` plus the raw string
    /// and assigns the next id on both sides.
    pub fn attr(&mut self, s: &str) {
        if let Some(&id) = self.strs.ids.get(s) {
            self.varint(u64::from(id) + 1);
        } else {
            let id = self.strs.ids.len() as u32;
            self.byte(0);
            self.str_raw(s);
            // Past the cap, stop assigning ids: the key is re-shipped
            // raw every time (decoder mirrors this exactly).
            if (self.strs.ids.len()) < MAX_INTERNED_STRINGS {
                self.strs.ids.insert(s.to_owned(), id);
            }
        }
    }
}

/// Byte source over one frame payload, carrying the connection's
/// decoder string table.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
    strs: &'a mut StrDecTable,
}

impl<'a> WireReader<'a> {
    /// Wraps a frame payload and the connection's intern table.
    pub fn new(buf: &'a [u8], strs: &'a mut StrDecTable) -> Self {
        WireReader { buf, pos: 0, strs }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the payload was consumed exactly.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads one raw byte.
    pub fn byte(&mut self) -> Result<u8, WireError> {
        if self.pos >= self.buf.len() {
            return err(format!("truncated payload at offset {}", self.pos));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return err("varint overflows u64");
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return err("varint longer than 10 bytes");
            }
        }
    }

    /// Reads a zig-zag LEB128 signed varint.
    pub fn varint_i64(&mut self) -> Result<i64, WireError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a varint and validates it as a collection count: each
    /// element needs at least one byte, so a count larger than the
    /// remaining payload is corruption (and guarding here prevents
    /// attacker-controlled preallocation).
    pub fn count(&mut self) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return err(format!(
                "claimed count {n} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        Ok(n as usize)
    }

    /// Reads an IEEE-754 double.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        if self.remaining() < 8 {
            return err("truncated f64");
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Reads a length-prefixed raw string.
    pub fn str_raw(&mut self) -> Result<String, WireError> {
        let n = self.count()?;
        let bytes = &self.buf[self.pos..self.pos + n];
        let s = std::str::from_utf8(bytes)
            .map_err(|e| WireError(format!("invalid utf-8 in string: {e}")))?
            .to_owned();
        self.pos += n;
        Ok(s)
    }

    /// Reads an interned attribute key (see [`WireWriter::attr`]).
    pub fn attr(&mut self) -> Result<String, WireError> {
        let code = self.varint()?;
        if code == 0 {
            let s = self.str_raw()?;
            if self.strs.strs.len() < MAX_INTERNED_STRINGS {
                self.strs.strs.push(s.clone());
            }
            Ok(s)
        } else {
            let idx = (code - 1) as usize;
            match self.strs.strs.get(idx) {
                Some(s) => Ok(s.clone()),
                None => err(format!(
                    "interned string id {idx} out of range (table has {})",
                    self.strs.strs.len()
                )),
            }
        }
    }
}

/// Structural binary encode/decode for one wire-visible type.
///
/// Implementations must be exact inverses: `dec(enc(x)) == x` for
/// every value `x` that can be constructed through the public API
/// (the codec proptests in `transmob-runtime` pin this against the
/// JSON path as a differential oracle).
pub trait Wire: Sized {
    /// Appends this value to the frame payload.
    fn enc(&self, w: &mut WireWriter<'_>);
    /// Parses one value from the frame payload.
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl Wire for u32 {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.varint(u64::from(*self));
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let v = r.varint()?;
        u32::try_from(v).map_err(|_| WireError(format!("u32 out of range: {v}")))
    }
}

impl Wire for u64 {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.varint(*self);
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.varint()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.varint(self.len() as u64);
        for item in self {
            item.enc(w);
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.count()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::dec(r)?);
        }
        Ok(out)
    }
}

macro_rules! id_wire {
    ($name:ident, $inner:ty) => {
        impl Wire for $name {
            fn enc(&self, w: &mut WireWriter<'_>) {
                w.varint(self.0 as u64);
            }
            fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let v = r.varint()?;
                <$inner>::try_from(v)
                    .map(|x| $name(x))
                    .map_err(|_| WireError(format!("{} out of range: {v}", stringify!($name))))
            }
        }
    };
}

id_wire!(BrokerId, u32);
id_wire!(ClientId, u64);
id_wire!(MoveId, u64);
id_wire!(PubId, u64);

impl Wire for SubId {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.client.enc(w);
        w.varint(u64::from(self.seq));
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SubId {
            client: ClientId::dec(r)?,
            seq: u32::dec(r)?,
        })
    }
}

impl Wire for AdvId {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.client.enc(w);
        w.varint(u64::from(self.seq));
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AdvId {
            client: ClientId::dec(r)?,
            seq: u32::dec(r)?,
        })
    }
}

impl Wire for Value {
    fn enc(&self, w: &mut WireWriter<'_>) {
        match self {
            Value::Int(i) => {
                w.byte(0);
                w.varint_i64(*i);
            }
            Value::Float(f) => {
                w.byte(1);
                w.f64(*f);
            }
            Value::Str(s) => {
                w.byte(2);
                w.str_raw(s);
            }
            Value::Bool(b) => {
                w.byte(3);
                w.byte(u8::from(*b));
            }
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Value::Int(r.varint_i64()?)),
            1 => Ok(Value::Float(r.f64()?)),
            2 => Ok(Value::Str(r.str_raw()?)),
            3 => match r.byte()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => err(format!("invalid bool byte {b}")),
            },
            t => err(format!("unknown value tag {t}")),
        }
    }
}

impl Wire for Publication {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.varint(self.len() as u64);
        for (attr, value) in self.iter() {
            w.attr(attr);
            value.enc(w);
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.count()?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = r.attr()?;
            let value = Value::dec(r)?;
            pairs.push((attr, value));
        }
        Ok(pairs.into_iter().collect())
    }
}

fn op_tag(op: Op) -> u8 {
    match op {
        Op::Eq => 0,
        Op::Neq => 1,
        Op::Lt => 2,
        Op::Le => 3,
        Op::Gt => 4,
        Op::Ge => 5,
        Op::Any => 6,
        Op::StrPrefix => 7,
        Op::StrSuffix => 8,
        Op::StrContains => 9,
    }
}

impl Wire for Op {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.byte(op_tag(*self));
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Op::Eq),
            1 => Ok(Op::Neq),
            2 => Ok(Op::Lt),
            3 => Ok(Op::Le),
            4 => Ok(Op::Gt),
            5 => Ok(Op::Ge),
            6 => Ok(Op::Any),
            7 => Ok(Op::StrPrefix),
            8 => Ok(Op::StrSuffix),
            9 => Ok(Op::StrContains),
            t => err(format!("unknown op tag {t}")),
        }
    }
}

impl Wire for Predicate {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.attr(self.attr());
        self.op().enc(w);
        self.value().enc(w);
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let attr = r.attr()?;
        let op = Op::dec(r)?;
        let value = Value::dec(r)?;
        Ok(Predicate::new(attr, op, value))
    }
}

impl Wire for Filter {
    /// Only the predicate list travels; the receiver rebuilds the
    /// normalized per-attribute constraints with [`Filter::new`] —
    /// they are a deterministic function of the predicates, so
    /// shipping them (as the JSON path does) would only inflate the
    /// frame.
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.varint(self.predicates().len() as u64);
        for p in self.predicates() {
            p.enc(w);
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.count()?;
        let mut preds = Vec::with_capacity(n);
        for _ in 0..n {
            preds.push(Predicate::dec(r)?);
        }
        Ok(Filter::new(preds))
    }
}

impl Wire for Subscription {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.id.enc(w);
        self.filter.enc(w);
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Subscription {
            id: SubId::dec(r)?,
            filter: Filter::dec(r)?,
        })
    }
}

impl Wire for Advertisement {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.id.enc(w);
        self.filter.enc(w);
        match self.ttl {
            None => w.byte(0),
            Some(t) => {
                w.byte(1);
                w.varint(u64::from(t));
            }
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = AdvId::dec(r)?;
        let filter = Filter::dec(r)?;
        let ttl = match r.byte()? {
            0 => None,
            1 => Some(u32::dec(r)?),
            b => return err(format!("invalid ttl presence byte {b}")),
        };
        Ok(Advertisement { id, filter, ttl })
    }
}

impl Wire for PublicationMsg {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.id.enc(w);
        self.publisher.enc(w);
        self.content.enc(w);
        w.varint(u64::from(self.hops));
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(PublicationMsg {
            id: PubId::dec(r)?,
            publisher: ClientId::dec(r)?,
            content: Publication::dec(r)?,
            hops: u32::dec(r)?,
        })
    }
}

/// Encodes one value into a fresh buffer (tests and tools; transports
/// reuse buffers and tables across frames instead).
pub fn encode_one<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut strs = StrEncTable::new();
    value.enc(&mut WireWriter::new(&mut buf, &mut strs));
    buf
}

/// Decodes one value from a buffer, requiring exact consumption.
pub fn decode_one<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut strs = StrDecTable::new();
    let mut r = WireReader::new(bytes, &mut strs);
    let v = T::dec(&mut r)?;
    if !r.is_exhausted() {
        return err(format!("{} trailing bytes after value", r.remaining()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = encode_one(v);
        let back: T = decode_one(&bytes).expect("decode");
        assert_eq!(&back, v, "round trip through {} bytes", bytes.len());
    }

    #[test]
    fn varint_round_trips_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            round_trip(&v);
        }
    }

    #[test]
    fn signed_varint_round_trips() {
        let mut buf = Vec::new();
        let mut strs = StrEncTable::new();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            buf.clear();
            let mut w = WireWriter::new(&mut buf, &mut strs);
            w.varint_i64(v);
            let mut dec = StrDecTable::new();
            let mut r = WireReader::new(&buf, &mut dec);
            assert_eq!(r.varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn values_round_trip_including_nan() {
        round_trip(&Value::Int(-42));
        round_trip(&Value::Str("hello".into()));
        round_trip(&Value::Bool(true));
        round_trip(&Value::Float(2.5));
        // NaN is bit-exact on the binary wire (the JSON path turns it
        // into `null` and the frame dies at the receiver).
        let bytes = encode_one(&Value::Float(f64::NAN));
        match decode_one::<Value>(&bytes).unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            v => panic!("wrong kind: {v:?}"),
        }
    }

    #[test]
    fn attr_interning_shrinks_repeats_and_decodes() {
        let mut buf = Vec::new();
        let mut enc = StrEncTable::new();
        {
            let mut w = WireWriter::new(&mut buf, &mut enc);
            w.attr("price");
            w.attr("price");
            w.attr("symbol");
            w.attr("price");
        }
        // First "price": 1 tag + 1 len + 5 bytes; repeats: 1 byte.
        assert_eq!(buf.len(), 7 + 1 + 8 + 1);
        let mut dec = StrDecTable::new();
        let mut r = WireReader::new(&buf, &mut dec);
        assert_eq!(r.attr().unwrap(), "price");
        assert_eq!(r.attr().unwrap(), "price");
        assert_eq!(r.attr().unwrap(), "symbol");
        assert_eq!(r.attr().unwrap(), "price");
        assert!(r.is_exhausted());
        assert_eq!(dec.len(), 2);
    }

    #[test]
    fn publication_and_filter_round_trip_share_table() {
        let mut buf = Vec::new();
        let mut enc = StrEncTable::new();
        let p = Publication::new().with("x", 3).with("name", "alpha");
        let f = Filter::builder().ge("x", 0).prefix("name", "al").build();
        {
            let mut w = WireWriter::new(&mut buf, &mut enc);
            p.enc(&mut w);
            f.enc(&mut w);
        }
        let mut dec = StrDecTable::new();
        let mut r = WireReader::new(&buf, &mut dec);
        assert_eq!(Publication::dec(&mut r).unwrap(), p);
        assert_eq!(Filter::dec(&mut r).unwrap(), f);
        assert!(r.is_exhausted());
    }

    #[test]
    fn named_entities_round_trip() {
        round_trip(&Subscription::new(
            SubId::new(ClientId(7), 3),
            Filter::builder().ge("x", -5).le("x", 5).build(),
        ));
        round_trip(&Advertisement::new(
            AdvId::new(ClientId(1), 0),
            Filter::builder().any("y").build(),
        ));
        round_trip(&PublicationMsg::new(
            PubId(9),
            ClientId(2),
            Publication::new().with("k", true).with("v", 0.5),
        ));
    }

    #[test]
    fn stale_intern_id_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        let mut enc = StrEncTable::new();
        {
            let mut w = WireWriter::new(&mut buf, &mut enc);
            w.attr("price");
            w.attr("price");
        }
        // Decoding with a *fresh* table (as after a redial) must fail
        // loudly on the back-reference, not mis-resolve it.
        let mut dec = StrDecTable::new();
        let mut r = WireReader::new(&buf[7..], &mut dec);
        assert!(r.attr().is_err());
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocation() {
        // A claimed element count far beyond the payload size.
        let mut dec = StrDecTable::new();
        let mut r = WireReader::new(&[0xff, 0xff, 0xff, 0x7f], &mut dec);
        assert!(r.count().is_err());
        // Overlong varint.
        let mut dec = StrDecTable::new();
        let bytes = [0x80u8; 11];
        let mut r = WireReader::new(&bytes, &mut dec);
        assert!(r.varint().is_err());
        // Truncated float.
        let mut dec = StrDecTable::new();
        let mut r = WireReader::new(&[1, 2, 3], &mut dec);
        assert!(r.f64().is_err());
    }

    #[test]
    fn every_truncation_of_a_valid_encoding_errors_cleanly() {
        let msg = PublicationMsg::new(
            PubId(12),
            ClientId(34),
            Publication::new().with("alpha", 1).with("beta", "s"),
        );
        let bytes = encode_one(&msg);
        for cut in 0..bytes.len() {
            assert!(
                decode_one::<PublicationMsg>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }
}
