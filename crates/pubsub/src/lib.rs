//! # transmob-pubsub
//!
//! The content-based publish/subscribe *language model* underlying the
//! transmob reproduction of *"Transactional Mobility in Distributed
//! Content-Based Publish/Subscribe Systems"* (ICDCS 2009).
//!
//! This crate is the paper's PADRES-style data model: subscriptions and
//! advertisements are conjunctions of `(attribute, operator, value)`
//! predicates ([`Filter`]), publications are sets of
//! `(attribute, value)` pairs ([`Publication`]), and routing is driven
//! by three relations:
//!
//! - **matching** — [`Filter::matches`] a [`Publication`];
//! - **covering** — [`Filter::covers`], the subsumption relation behind
//!   the covering optimization whose mobile-client pathology the paper
//!   analyzes;
//! - **intersection** — [`Filter::overlaps`], which routes
//!   subscriptions toward advertisements.
//!
//! Higher layers live in sibling crates: `transmob-broker` (routing
//! tables and the broker state machine), `transmob-core` (the
//! transactional movement protocols — the paper's contribution),
//! `transmob-sim` (the discrete-event testbed), `transmob-workloads`
//! (the paper's Fig. 6/7 inputs) and `transmob-runtime` (a threaded
//! deployment).
//!
//! # Examples
//!
//! ```
//! use transmob_pubsub::{Filter, Publication};
//!
//! // A subscription for cheap IBM quotes...
//! let sub = Filter::builder().eq("symbol", "IBM").lt("price", 100).build();
//! // ...an advertisement promising IBM quotes at any price...
//! let adv = Filter::builder().eq("symbol", "IBM").ge("price", 0).build();
//! // ...and a broader subscription covering the first.
//! let broad = Filter::builder().eq("symbol", "IBM").build();
//!
//! assert!(adv.overlaps(&sub));   // sub is routed toward adv
//! assert!(broad.covers(&sub));   // sub is quenched by broad
//! let quote = Publication::new().with("symbol", "IBM").with("price", 88);
//! assert!(sub.matches(&quote));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod constraint;
pub mod fasthash;
pub mod filter;
pub mod index;
pub mod message;
pub mod parser;
pub(crate) mod pool;
pub mod predicate;
pub mod publication;
pub mod value;
pub mod wire;

pub use constraint::Constraint;
pub use filter::{Filter, FilterBuilder};
pub use index::{MatchIndex, Parallelism};
pub use message::{
    AdvId, Advertisement, BrokerId, ClientId, MoveId, PubId, PublicationMsg, SubId, Subscription,
};
pub use pool::PoolStats;
pub use predicate::{Op, Predicate};
pub use publication::Publication;
pub use value::{Value, ValueKind};
pub use wire::{StrDecTable, StrEncTable, Wire, WireError, WireReader, WireWriter};
