//! Publications: the messages content-based routing delivers.
//!
//! A publication is a set of `(attribute, value)` pairs. Attributes are
//! unique within a publication; setting an attribute twice keeps the
//! last value.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A set of `(attribute, value)` pairs.
///
/// # Examples
///
/// ```
/// use transmob_pubsub::{Publication, Value};
///
/// let p = Publication::new()
///     .with("symbol", "IBM")
///     .with("price", 120);
/// assert_eq!(p.get("price"), Some(&Value::Int(120)));
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Publication {
    attrs: BTreeMap<String, Value>,
}

impl Publication {
    /// Creates an empty publication.
    pub fn new() -> Self {
        Publication::default()
    }

    /// Returns the publication with `attr` set to `value` (builder
    /// style; last write wins).
    pub fn with(mut self, attr: impl Into<String>, value: impl Into<Value>) -> Self {
        self.attrs.insert(attr.into(), value.into());
        self
    }

    /// Sets `attr` to `value` in place, returning the previous value if
    /// any.
    pub fn set(&mut self, attr: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        self.attrs.insert(attr.into(), value.into())
    }

    /// The value of `attr`, if present.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.attrs.get(attr)
    }

    /// Whether the publication carries `attr`.
    pub fn has(&self, attr: &str) -> bool {
        self.attrs.contains_key(attr)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the publication has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(a, v)| (a.as_str(), v))
    }
}

impl fmt::Display for Publication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (a, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}={v}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<(String, Value)> for Publication {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Publication {
            attrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Value)> for Publication {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        self.attrs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_set_agree() {
        let a = Publication::new().with("x", 1).with("y", "v");
        let mut b = Publication::new();
        b.set("x", 1);
        b.set("y", "v");
        assert_eq!(a, b);
    }

    #[test]
    fn last_write_wins() {
        let p = Publication::new().with("x", 1).with("x", 2);
        assert_eq!(p.get("x"), Some(&Value::Int(2)));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn set_returns_previous() {
        let mut p = Publication::new().with("x", 1);
        assert_eq!(p.set("x", 5), Some(Value::Int(1)));
        assert_eq!(p.set("y", 7), None);
    }

    #[test]
    fn iteration_is_attribute_ordered() {
        let p = Publication::new().with("b", 2).with("a", 1).with("c", 3);
        let attrs: Vec<&str> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(attrs, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_compact() {
        let p = Publication::new().with("a", 1).with("b", "x");
        assert_eq!(p.to_string(), "[a=1,b='x']");
        assert_eq!(Publication::new().to_string(), "[]");
    }

    #[test]
    fn from_iterator_collects() {
        let p: Publication = vec![
            ("k".to_owned(), Value::Int(9)),
            ("s".to_owned(), Value::from("t")),
        ]
        .into_iter()
        .collect();
        assert!(p.has("k") && p.has("s"));
    }
}
