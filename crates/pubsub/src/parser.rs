//! A PADRES-style textual syntax for filters and publications.
//!
//! The PADRES prototype the paper builds on uses a bracketed triple
//! syntax; this module implements a compatible reader/writer:
//!
//! ```text
//! subscription / advertisement:
//!     [class,eq,'STOCK'],[price,<,100],[volume,>=,1000],[open,any]
//! publication:
//!     [class,'STOCK'],[price,95],[symbol,'IBM'],[halted,false]
//! ```
//!
//! Values are integers (`42`), floats (`3.14`), single-quoted strings
//! (`'IBM'`, with `''` escaping a quote) or booleans (`true`/`false`).
//! Operators: `eq` (or `=`), `neq` (or `!=`), `<`, `<=`, `>`, `>=`,
//! `any` (or `*`), `prefix`, `suffix`, `contains`.

use std::fmt;

use crate::filter::Filter;
use crate::predicate::{Op, Predicate};
use crate::publication::Publication;
use crate::value::Value;

/// Error parsing the textual syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            reason: reason.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected '{c}'")))
        }
    }

    fn try_eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    /// Reads up to (not including) the next `,` or `]`.
    fn token(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find([',', ']'])
            .ok_or_else(|| self.err("unterminated bracket"))?;
        let tok = rest[..end].trim_end();
        if tok.is_empty() {
            return Err(self.err("empty token"));
        }
        self.pos = self.src.len() - rest.len() + end;
        Ok(tok)
    }

    /// Parses a value: quoted string, boolean, integer or float.
    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        if self.rest().starts_with('\'') {
            // Quoted string with '' escaping.
            let mut out = String::new();
            let mut chars = self.rest().char_indices().skip(1).peekable();
            while let Some((i, ch)) = chars.next() {
                if ch == '\'' {
                    if matches!(chars.peek(), Some((_, '\''))) {
                        out.push('\'');
                        chars.next();
                        continue;
                    }
                    self.pos += i + 1;
                    return Ok(Value::Str(out));
                }
                out.push(ch);
            }
            return Err(self.err("unterminated string"));
        }
        let tok = self.token()?;
        match tok {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if let Ok(f) = tok.parse::<f64>() {
            return Value::float(f).ok_or_else(|| self.err("NaN is not a valid value"));
        }
        Err(self.err(format!("invalid value `{tok}`")))
    }
}

fn parse_op(tok: &str) -> Option<Op> {
    Some(match tok {
        "eq" | "=" | "==" => Op::Eq,
        "neq" | "!=" | "<>" => Op::Neq,
        "<" | "lt" => Op::Lt,
        "<=" | "le" => Op::Le,
        ">" | "gt" => Op::Gt,
        ">=" | "ge" => Op::Ge,
        "any" | "*" => Op::Any,
        "prefix" => Op::StrPrefix,
        "suffix" => Op::StrSuffix,
        "contains" => Op::StrContains,
        _ => return None,
    })
}

fn op_name(op: Op) -> &'static str {
    match op {
        Op::Eq => "eq",
        Op::Neq => "neq",
        Op::Lt => "<",
        Op::Le => "<=",
        Op::Gt => ">",
        Op::Ge => ">=",
        Op::Any => "any",
        Op::StrPrefix => "prefix",
        Op::StrSuffix => "suffix",
        Op::StrContains => "contains",
    }
}

fn quote_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        // Keep integral floats distinguishable from integers so the
        // round trip preserves the value kind.
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => format!("{f:.1}"),
        other => other.to_string(),
    }
}

/// Parses a filter from the PADRES-style triple syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending byte.
///
/// # Examples
///
/// ```
/// use transmob_pubsub::parser::parse_filter;
/// use transmob_pubsub::Publication;
///
/// let f = parse_filter("[class,eq,'STOCK'],[price,<,100]")?;
/// assert!(f.matches(&Publication::new().with("class", "STOCK").with("price", 42)));
/// # Ok::<(), transmob_pubsub::parser::ParseError>(())
/// ```
pub fn parse_filter(src: &str) -> Result<Filter, ParseError> {
    let mut cur = Cursor::new(src);
    let mut preds = Vec::new();
    loop {
        cur.eat('[')?;
        let attr = cur.token()?.to_owned();
        cur.eat(',')?;
        let op_tok = cur.token()?;
        let op = parse_op(op_tok).ok_or_else(|| cur.err(format!("unknown operator `{op_tok}`")))?;
        let pred = if op == Op::Any {
            // Value is optional for `any`.
            if cur.try_eat(',') {
                let _ = cur.value()?;
            }
            Predicate::any(attr)
        } else {
            cur.eat(',')?;
            let value = cur.value()?;
            Predicate::new(attr, op, value)
        };
        cur.eat(']')?;
        preds.push(pred);
        if !cur.try_eat(',') {
            break;
        }
    }
    if !cur.at_end() {
        return Err(cur.err("trailing input"));
    }
    Ok(Filter::new(preds))
}

/// Parses a publication from the PADRES-style pair syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending byte.
///
/// # Examples
///
/// ```
/// use transmob_pubsub::parser::parse_publication;
///
/// let p = parse_publication("[class,'STOCK'],[price,95]")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), transmob_pubsub::parser::ParseError>(())
/// ```
pub fn parse_publication(src: &str) -> Result<Publication, ParseError> {
    let mut cur = Cursor::new(src);
    let mut p = Publication::new();
    loop {
        cur.eat('[')?;
        let attr = cur.token()?.to_owned();
        cur.eat(',')?;
        let value = cur.value()?;
        cur.eat(']')?;
        p.set(attr, value);
        if !cur.try_eat(',') {
            break;
        }
    }
    if !cur.at_end() {
        return Err(cur.err("trailing input"));
    }
    Ok(p)
}

/// Writes a filter in the parseable triple syntax (inverse of
/// [`parse_filter`]).
pub fn format_filter(f: &Filter) -> String {
    f.predicates()
        .iter()
        .map(|p| {
            if p.op() == Op::Any {
                format!("[{},any]", p.attr())
            } else {
                format!(
                    "[{},{},{}]",
                    p.attr(),
                    op_name(p.op()),
                    quote_value(p.value())
                )
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Writes a publication in the parseable pair syntax (inverse of
/// [`parse_publication`]).
pub fn format_publication(p: &Publication) -> String {
    p.iter()
        .map(|(a, v)| format!("[{a},{}]", quote_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_filter() {
        let f = parse_filter("[class,eq,'STOCK'],[price,<,100]").unwrap();
        assert_eq!(f.arity(), 2);
        assert!(f.matches(&Publication::new().with("class", "STOCK").with("price", 50)));
        assert!(!f.matches(&Publication::new().with("class", "STOCK").with("price", 150)));
    }

    #[test]
    fn parse_all_operators() {
        let f = parse_filter(
            "[a,eq,1],[b,neq,2],[c,<,3],[d,<=,4],[e,>,5],[f,>=,6],[g,any],[h,prefix,'x'],[i,suffix,'y'],[j,contains,'z']",
        )
        .unwrap();
        assert_eq!(f.predicates().len(), 10);
    }

    #[test]
    fn parse_value_kinds() {
        let p = parse_publication("[i,42],[f,3.5],[s,'hi'],[b,true],[n,-7]").unwrap();
        assert_eq!(p.get("i"), Some(&Value::Int(42)));
        assert_eq!(p.get("f"), Some(&Value::Float(3.5)));
        assert_eq!(p.get("s"), Some(&Value::from("hi")));
        assert_eq!(p.get("b"), Some(&Value::Bool(true)));
        assert_eq!(p.get("n"), Some(&Value::Int(-7)));
    }

    #[test]
    fn quoted_string_escaping() {
        let p = parse_publication("[s,'it''s']").unwrap();
        assert_eq!(p.get("s"), Some(&Value::from("it's")));
        let round = format_publication(&p);
        assert_eq!(parse_publication(&round).unwrap(), p);
    }

    #[test]
    fn whitespace_tolerated() {
        let f = parse_filter("  [ price , >= , 10 ] , [ sym , eq , 'A' ]  ").unwrap();
        assert!(f.matches(&Publication::new().with("price", 10).with("sym", "A")));
    }

    #[test]
    fn any_with_and_without_value() {
        let a = parse_filter("[x,any]").unwrap();
        let b = parse_filter("[x,any,0]").unwrap();
        assert_eq!(a, b);
        let c = parse_filter("[x,*]").unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn errors_are_located() {
        let e = parse_filter("[x,zz,1]").unwrap_err();
        assert!(e.reason.contains("unknown operator"));
        assert!(parse_filter("[x,eq,1").is_err());
        assert!(parse_filter("[x,eq,1] junk")
            .unwrap_err()
            .reason
            .contains("trailing"));
        assert!(parse_publication("[x,'open").is_err());
        assert!(parse_filter("").is_err());
        assert!(parse_publication("[x,nan]").is_err());
    }

    #[test]
    fn filter_round_trip() {
        let cases = [
            "[class,eq,'STOCK'],[price,<,100]",
            "[a,any],[b,>=,2.5]",
            "[t,prefix,'game/'],[t,contains,'zone']",
            "[ok,eq,true]",
        ];
        for src in cases {
            let f = parse_filter(src).unwrap();
            let printed = format_filter(&f);
            let re = parse_filter(&printed).unwrap();
            assert_eq!(f, re, "round trip failed for {src} (printed: {printed})");
        }
    }

    #[test]
    fn publication_round_trip() {
        let p = Publication::new()
            .with("class", "STOCK")
            .with("price", 95)
            .with("weight", 1.25)
            .with("halted", false);
        let printed = format_publication(&p);
        assert_eq!(parse_publication(&printed).unwrap(), p);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::predicate::{Op, Predicate};
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            (-1000i64..1000).prop_map(Value::Int),
            (-100.0f64..100.0).prop_map(|f| Value::Float((f * 4.0).round() / 4.0)),
            "[a-z '_/]{0,12}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    fn arb_predicate() -> impl Strategy<Value = Predicate> {
        ("[a-z][a-z0-9_]{0,8}", 0..10usize, arb_value()).prop_map(|(attr, op_idx, v)| {
            let op = Op::ALL[op_idx];
            if op == Op::Any {
                Predicate::any(attr)
            } else if op.is_string_op() {
                // String operators need a string operand.
                let s = match &v {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                Predicate::new(attr, op, s)
            } else {
                Predicate::new(attr, op, v)
            }
        })
    }

    proptest! {
        /// format → parse round-trips every well-formed filter.
        #[test]
        fn filter_format_parse_round_trip(
            preds in proptest::collection::vec(arb_predicate(), 1..6)
        ) {
            let f = Filter::new(preds);
            let printed = format_filter(&f);
            let parsed = parse_filter(&printed)
                .unwrap_or_else(|e| panic!("failed to re-parse `{printed}`: {e}"));
            prop_assert_eq!(f, parsed);
        }

        /// format → parse round-trips every publication.
        #[test]
        fn publication_format_parse_round_trip(
            pairs in proptest::collection::vec(("[a-z][a-z0-9]{0,6}", arb_value()), 1..6)
        ) {
            let p: Publication = pairs
                .into_iter()
                .fold(Publication::new(), |acc, (a, v)| acc.with(a, v));
            let printed = format_publication(&p);
            let parsed = parse_publication(&printed)
                .unwrap_or_else(|e| panic!("failed to re-parse `{printed}`: {e}"));
            prop_assert_eq!(p, parsed);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_total_on_garbage(s in ".{0,60}") {
            let _ = parse_filter(&s);
            let _ = parse_publication(&s);
        }
    }
}
