//! Filters: conjunctions of predicates, used for both subscriptions and
//! advertisements.
//!
//! A filter normalizes its predicates into one [`Constraint`] per
//! attribute (see [`crate::constraint`]) and exposes the three relations
//! content-based routing needs:
//!
//! - [`Filter::matches`] — does a publication satisfy the filter?
//! - [`Filter::covers`] — subsumption (`f1` covers `f2` when every
//!   publication matching `f2` also matches `f1`), the basis of the
//!   covering optimization the paper analyzes.
//! - [`Filter::overlaps`] — could some publication match both? This is
//!   the advertisement/subscription *intersection* test that routes
//!   subscriptions toward advertisements.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::predicate::{Op, Predicate};
use crate::publication::Publication;

/// A conjunction of predicates with per-attribute normalized
/// constraints.
///
/// # Examples
///
/// ```
/// use transmob_pubsub::{Filter, Publication};
///
/// let sub = Filter::builder()
///     .ge("price", 10)
///     .le("price", 100)
///     .eq("symbol", "IBM")
///     .build();
/// let p = Publication::new()
///     .with("price", 42)
///     .with("symbol", "IBM");
/// assert!(sub.matches(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    predicates: Vec<Predicate>,
    constraints: BTreeMap<String, Constraint>,
}

impl Filter {
    /// Builds a filter from a list of predicates (conjunction).
    ///
    /// Conflicting predicates (e.g. `x > 5 AND x < 3`) are allowed and
    /// produce an unsatisfiable filter ([`Filter::is_satisfiable`]
    /// returns `false`, and it matches no publication).
    pub fn new(predicates: Vec<Predicate>) -> Self {
        let mut by_attr: BTreeMap<String, Vec<&Predicate>> = BTreeMap::new();
        for p in &predicates {
            by_attr.entry(p.attr().to_owned()).or_default().push(p);
        }
        let constraints = by_attr
            .into_iter()
            .map(|(attr, preds)| (attr, Constraint::from_predicates(preds)))
            .collect();
        Filter {
            predicates,
            constraints,
        }
    }

    /// Starts a [`FilterBuilder`].
    pub fn builder() -> FilterBuilder {
        FilterBuilder::default()
    }

    /// The predicates the filter was built from.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The normalized constraint on `attr`, if the filter constrains it.
    pub fn constraint(&self, attr: &str) -> Option<&Constraint> {
        self.constraints.get(attr)
    }

    /// Iterates over `(attribute, constraint)` pairs in attribute order.
    pub fn constraints(&self) -> impl Iterator<Item = (&str, &Constraint)> {
        self.constraints.iter().map(|(a, c)| (a.as_str(), c))
    }

    /// Number of constrained attributes.
    pub fn arity(&self) -> usize {
        self.constraints.len()
    }

    /// Whether some publication could match (no provably-empty
    /// constraint).
    pub fn is_satisfiable(&self) -> bool {
        !self.constraints.values().any(Constraint::is_empty)
    }

    /// Whether `publication` satisfies every constraint.
    ///
    /// The publication must carry *every* constrained attribute (content
    /// based matching treats a missing attribute as unsatisfied).
    pub fn matches(&self, publication: &Publication) -> bool {
        self.constraints
            .iter()
            .all(|(attr, c)| publication.get(attr).is_some_and(|v| c.satisfied_by(v)))
    }

    /// Subsumption: `self` covers `other` when every publication
    /// matching `other` also matches `self`.
    ///
    /// Sound but not complete: `true` is always correct; `false` may be
    /// returned for combinations the normalized form cannot prove (see
    /// [`crate::constraint`] module docs).
    pub fn covers(&self, other: &Filter) -> bool {
        if !other.is_satisfiable() {
            return true; // the empty set is covered by anything
        }
        self.constraints
            .iter()
            .all(|(attr, c1)| other.constraints.get(attr).is_some_and(|c2| c1.covers(c2)))
    }

    /// Intersection test: could some publication match both filters?
    ///
    /// Complete but not exact: `false` is always correct; `true` may be
    /// an over-approximation (extra forwarding, never lost messages).
    pub fn overlaps(&self, other: &Filter) -> bool {
        if !self.is_satisfiable() || !other.is_satisfiable() {
            return false;
        }
        self.constraints.iter().all(|(attr, c1)| {
            match other.constraints.get(attr) {
                Some(c2) => c1.overlaps(c2),
                // The other filter does not constrain this attribute; a
                // publication can carry any value here.
                None => true,
            }
        })
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("{true}");
        }
        f.write_str("{")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("}")
    }
}

impl FromIterator<Predicate> for Filter {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Filter::new(iter.into_iter().collect())
    }
}

/// Incremental builder for [`Filter`].
///
/// # Examples
///
/// ```
/// use transmob_pubsub::Filter;
///
/// let f = Filter::builder().any("class").gt("volume", 1000).build();
/// assert_eq!(f.arity(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FilterBuilder {
    predicates: Vec<Predicate>,
}

impl FilterBuilder {
    /// Adds an arbitrary predicate.
    pub fn pred(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Adds `attr = value`.
    pub fn eq(self, attr: &str, value: impl Into<crate::Value>) -> Self {
        self.pred(Predicate::new(attr, Op::Eq, value))
    }

    /// Adds `attr != value`.
    pub fn ne(self, attr: &str, value: impl Into<crate::Value>) -> Self {
        self.pred(Predicate::new(attr, Op::Neq, value))
    }

    /// Adds `attr < value`.
    pub fn lt(self, attr: &str, value: impl Into<crate::Value>) -> Self {
        self.pred(Predicate::new(attr, Op::Lt, value))
    }

    /// Adds `attr <= value`.
    pub fn le(self, attr: &str, value: impl Into<crate::Value>) -> Self {
        self.pred(Predicate::new(attr, Op::Le, value))
    }

    /// Adds `attr > value`.
    pub fn gt(self, attr: &str, value: impl Into<crate::Value>) -> Self {
        self.pred(Predicate::new(attr, Op::Gt, value))
    }

    /// Adds `attr >= value`.
    pub fn ge(self, attr: &str, value: impl Into<crate::Value>) -> Self {
        self.pred(Predicate::new(attr, Op::Ge, value))
    }

    /// Adds the presence predicate `attr *`.
    pub fn any(self, attr: &str) -> Self {
        self.pred(Predicate::any(attr))
    }

    /// Adds a string-prefix predicate.
    pub fn prefix(self, attr: &str, value: &str) -> Self {
        self.pred(Predicate::new(attr, Op::StrPrefix, value))
    }

    /// Adds a string-suffix predicate.
    pub fn suffix(self, attr: &str, value: &str) -> Self {
        self.pred(Predicate::new(attr, Op::StrSuffix, value))
    }

    /// Adds a substring predicate.
    pub fn contains(self, attr: &str, value: &str) -> Self {
        self.pred(Predicate::new(attr, Op::StrContains, value))
    }

    /// Finishes the filter.
    pub fn build(self) -> Filter {
        Filter::new(self.predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pub1(pairs: &[(&str, i64)]) -> Publication {
        let mut p = Publication::new();
        for (a, v) in pairs {
            p = p.with(*a, *v);
        }
        p
    }

    #[test]
    fn matching_requires_all_attributes_present() {
        let f = Filter::builder().ge("x", 0).le("y", 10).build();
        assert!(f.matches(&pub1(&[("x", 5), ("y", 5)])));
        assert!(!f.matches(&pub1(&[("x", 5)]))); // y missing
        assert!(!f.matches(&pub1(&[("x", 5), ("y", 11)])));
    }

    #[test]
    fn extra_publication_attributes_are_ignored() {
        let f = Filter::builder().eq("x", 1).build();
        assert!(f.matches(&pub1(&[("x", 1), ("z", 99)])));
    }

    #[test]
    fn empty_filter_matches_everything() {
        let f = Filter::new(vec![]);
        assert!(f.matches(&pub1(&[])));
        assert!(f.matches(&pub1(&[("a", 1)])));
    }

    #[test]
    fn covering_requires_attribute_subset_direction() {
        // f1 constrains only x; f2 constrains x (tighter) and y.
        let f1 = Filter::builder().ge("x", 0).build();
        let f2 = Filter::builder().ge("x", 5).eq("y", 1).build();
        assert!(f1.covers(&f2));
        assert!(!f2.covers(&f1)); // f1 matches pubs without y
    }

    #[test]
    fn covering_fails_when_extra_attr_constrained_by_coverer() {
        let f1 = Filter::builder().ge("x", 0).eq("y", 1).build();
        let f2 = Filter::builder().ge("x", 5).build();
        // f2 matches pubs without y, which f1 does not match.
        assert!(!f1.covers(&f2));
    }

    #[test]
    fn covers_reflexive_and_antisymmetric_on_distinct_ranges() {
        let a = Filter::builder().ge("x", 0).le("x", 10).build();
        let b = Filter::builder().ge("x", 2).le("x", 8).build();
        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
    }

    #[test]
    fn unsatisfiable_filter_is_covered_by_all_and_covers_nothing_satisfiable() {
        let bad = Filter::builder().gt("x", 10).lt("x", 0).build();
        assert!(!bad.is_satisfiable());
        let any = Filter::builder().any("x").build();
        assert!(any.covers(&bad));
        assert!(!bad.covers(&any));
        assert!(!bad.matches(&pub1(&[("x", 5)])));
        assert!(!bad.overlaps(&any));
    }

    #[test]
    fn overlap_on_shared_attributes_only() {
        let adv = Filter::builder().ge("price", 0).le("price", 50).build();
        let sub = Filter::builder().ge("price", 40).eq("sym", "A").build();
        // Price ranges overlap; `sym` unconstrained by adv — a
        // publication with sym=A and price=45 matches both.
        assert!(adv.overlaps(&sub));
        let sub2 = Filter::builder().gt("price", 60).build();
        assert!(!adv.overlaps(&sub2));
    }

    #[test]
    fn overlap_symmetry() {
        let a = Filter::builder().ge("x", 0).le("x", 10).build();
        let b = Filter::builder().ge("x", 5).eq("y", 2).build();
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn builder_and_from_iterator_agree() {
        let a = Filter::builder().ge("x", 1).lt("x", 9).build();
        let b: Filter = vec![
            Predicate::new("x", Op::Ge, 1),
            Predicate::new("x", Op::Lt, 9),
        ]
        .into_iter()
        .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_compact() {
        let f = Filter::builder().eq("x", 1).build();
        assert_eq!(f.to_string(), "{[x = 1]}");
        assert_eq!(Filter::new(vec![]).to_string(), "{true}");
    }

    #[test]
    fn mixed_value_kinds_match() {
        let f = Filter::builder()
            .eq("name", "alpha")
            .ge("load", 0.5)
            .eq("active", true)
            .build();
        let p = Publication::new()
            .with("name", "alpha")
            .with("load", 0.75)
            .with("active", true);
        assert!(f.matches(&p));
        let p2 = Publication::new()
            .with("name", "alpha")
            .with("load", 0.25)
            .with("active", true);
        assert!(!f.matches(&p2));
    }

    #[test]
    fn string_covering_chain() {
        let root = Filter::builder().prefix("topic", "game/").build();
        let mid = Filter::builder().prefix("topic", "game/zone1/").build();
        let leaf = Filter::builder().eq("topic", "game/zone1/cell42").build();
        assert!(root.covers(&mid));
        assert!(mid.covers(&leaf));
        assert!(root.covers(&leaf)); // transitivity in practice
        assert!(!leaf.covers(&mid));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::value::Value as PubValue;
    use proptest::prelude::*;

    const ATTRS: [&str; 3] = ["x", "y", "z"];

    fn arb_filter() -> impl Strategy<Value = Filter> {
        proptest::collection::vec((0..3usize, 0..6u8, -20i64..20), 1..4).prop_map(|specs| {
            let preds = specs
                .into_iter()
                .map(|(ai, op, v)| {
                    let op = match op {
                        0 => Op::Eq,
                        1 => Op::Neq,
                        2 => Op::Lt,
                        3 => Op::Le,
                        4 => Op::Gt,
                        _ => Op::Ge,
                    };
                    Predicate::new(ATTRS[ai], op, v)
                })
                .collect();
            Filter::new(preds)
        })
    }

    fn arb_publication() -> impl Strategy<Value = Publication> {
        proptest::collection::vec(-25i64..25, 3).prop_map(|vs| {
            let mut p = Publication::new();
            for (a, v) in ATTRS.iter().zip(vs) {
                p = p.with(*a, v);
            }
            p
        })
    }

    proptest! {
        /// Filter covering soundness against sampled publications.
        #[test]
        fn filter_covers_sound(f1 in arb_filter(), f2 in arb_filter(),
                               pubs in proptest::collection::vec(arb_publication(), 25)) {
            if f1.covers(&f2) {
                for p in &pubs {
                    if f2.matches(p) {
                        prop_assert!(f1.matches(p), "f1={f1} f2={f2} pub misses");
                    }
                }
            }
        }

        /// Overlap completeness against sampled publications.
        #[test]
        fn filter_overlap_complete(f1 in arb_filter(), f2 in arb_filter(),
                                   pubs in proptest::collection::vec(arb_publication(), 25)) {
            if pubs.iter().any(|p| f1.matches(p) && f2.matches(p)) {
                prop_assert!(f1.overlaps(&f2));
            }
        }

        /// A filter always covers itself.
        #[test]
        fn filter_covers_reflexive(f in arb_filter()) {
            prop_assert!(f.covers(&f));
        }

        /// Matching is deterministic w.r.t. semantically-equal values.
        #[test]
        fn match_int_float_promotion(v in -20i64..20) {
            let f = Filter::builder().eq("x", v).build();
            let p = Publication::new().with("x", PubValue::Float(v as f64));
            prop_assert!(f.matches(&p));
        }
    }
}
