//! Attribute values of the content-based data model.
//!
//! PADRES publications are sets of `(attribute, value)` pairs and
//! subscriptions/advertisements are conjunctions of
//! `(attribute, operator, value)` predicates. [`Value`] is the value in
//! both, supporting 64-bit integers, floats, strings and booleans.
//!
//! `Value` implements a *total* order (needed for use in `BTreeMap`s and
//! for deterministic test output): values of different kinds are ordered
//! by kind tag, numeric values of the same kind by numeric order, and
//! floats by IEEE-754 `total_cmp`. The *semantic* comparison used by
//! predicate evaluation is [`Value::compare`], which promotes integers to
//! floats when comparing mixed numerics and returns `None` for
//! incomparable kinds (e.g. a string against an integer).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single attribute value in a publication or predicate.
///
/// # Examples
///
/// ```
/// use transmob_pubsub::Value;
///
/// let a = Value::from(10);
/// let b = Value::from(10.0);
/// // Mixed-kind numeric comparison is semantic:
/// assert_eq!(a.compare(&b), Some(std::cmp::Ordering::Equal));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float. `NaN` is rejected at construction via
    /// [`Value::float`]; a `NaN` smuggled in through `From<f64>` compares
    /// with `total_cmp` semantics.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Creates a float value, rejecting `NaN`.
    ///
    /// # Errors
    ///
    /// Returns `None` if `f` is `NaN`; `NaN` has no place in a content
    /// space with interval semantics.
    pub fn float(f: f64) -> Option<Self> {
        if f.is_nan() {
            None
        } else {
            Some(Value::Float(f))
        }
    }

    /// Returns the kind tag of this value (used for ordering across
    /// kinds and for diagnostics).
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    /// Returns `true` if the value is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric view of the value, promoting integers to `f64`.
    ///
    /// Returns `None` for non-numeric values. Promotion of `i64` to
    /// `f64` can lose precision above 2^53; the workloads in this
    /// repository stay far below that, and the loss is at worst a
    /// conservative wobble at interval endpoints.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Semantic comparison used by predicate evaluation.
    ///
    /// Numeric values compare to each other (with int→float promotion),
    /// strings compare lexicographically, booleans compare as
    /// `false < true`. Values of incomparable kinds return `None`, which
    /// predicate evaluation treats as "predicate not satisfied".
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                // unwrap: both sides are numeric by the guard
                Some(a.as_f64().unwrap().total_cmp(&b.as_f64().unwrap()))
            }
            _ => None,
        }
    }

    /// Semantic equality: `Int(3)` equals `Float(3.0)`.
    pub fn sem_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

/// Kind tag of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Integer kind.
    Int,
    /// Float kind.
    Float,
    /// String kind.
    Str,
    /// Boolean kind.
    Bool,
}

impl ValueKind {
    /// Whether this kind participates in numeric comparisons.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueKind::Int | ValueKind::Float)
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "string",
            ValueKind::Bool => "bool",
        };
        f.write_str(s)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total *structural* order: by kind tag first, then within kind.
    /// Use [`Value::compare`] for the semantic order used by predicates.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => self.kind().cmp(&other.kind()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind().hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_numeric_comparison_promotes() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(7.5).compare(&Value::Int(7)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incomparable_kinds_return_none() {
        assert_eq!(Value::from("x").compare(&Value::Int(1)), None);
        assert_eq!(Value::from(true).compare(&Value::Float(1.0)), None);
        assert_eq!(Value::from("a").compare(&Value::Bool(false)), None);
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::from("abc").compare(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from("b").compare(&Value::from("ab")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn structural_order_is_total() {
        let mut values = vec![
            Value::from("z"),
            Value::from(1),
            Value::from(2.5),
            Value::from(false),
            Value::from(-7),
        ];
        values.sort();
        // ints first, then floats, then strings, then bools
        assert_eq!(
            values,
            vec![
                Value::from(-7),
                Value::from(1),
                Value::from(2.5),
                Value::from("z"),
                Value::from(false),
            ]
        );
    }

    #[test]
    fn nan_rejected_by_checked_constructor() {
        assert!(Value::float(f64::NAN).is_none());
        assert!(Value::float(1.25).is_some());
    }

    #[test]
    fn sem_eq_crosses_numeric_kinds() {
        assert!(Value::Int(4).sem_eq(&Value::Float(4.0)));
        assert!(!Value::Int(4).sem_eq(&Value::Float(4.1)));
        assert!(!Value::from("4").sem_eq(&Value::Int(4)));
    }

    #[test]
    fn hash_consistent_with_structural_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(5)), h(&Value::Int(5)));
        assert_eq!(h(&Value::from("abc")), h(&Value::from("abc")));
        // Structurally distinct even though semantically equal:
        assert_ne!(Value::Int(4), Value::Float(4.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::from(true).to_string(), "true");
    }
}
