//! Predicates: the `(attribute, operator, value)` triples of the PADRES
//! subscription language.
//!
//! A subscription or advertisement is a conjunction of predicates (see
//! [`crate::Filter`]). A predicate is satisfied by a publication when the
//! publication carries the attribute and the attribute's value passes the
//! operator test.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Equal (semantic equality; `Int(3)` equals `Float(3.0)`).
    Eq,
    /// Not equal.
    Neq,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Attribute present, any value (the PADRES `*` operator). The
    /// predicate's value operand is ignored.
    Any,
    /// String starts with the operand (operand must be a string).
    StrPrefix,
    /// String ends with the operand.
    StrSuffix,
    /// String contains the operand.
    StrContains,
}

impl Op {
    /// All operators, for exhaustive iteration in tests and fuzzing.
    pub const ALL: [Op; 10] = [
        Op::Eq,
        Op::Neq,
        Op::Lt,
        Op::Le,
        Op::Gt,
        Op::Ge,
        Op::Any,
        Op::StrPrefix,
        Op::StrSuffix,
        Op::StrContains,
    ];

    /// Whether the operator is one of the string-only operators.
    pub fn is_string_op(self) -> bool {
        matches!(self, Op::StrPrefix | Op::StrSuffix | Op::StrContains)
    }

    /// Whether the operator is an ordering comparison.
    pub fn is_ordering(self) -> bool {
        matches!(self, Op::Lt | Op::Le | Op::Gt | Op::Ge)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Neq => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Any => "*",
            Op::StrPrefix => "prefix",
            Op::StrSuffix => "suffix",
            Op::StrContains => "contains",
        };
        f.write_str(s)
    }
}

/// One `(attribute, operator, value)` predicate.
///
/// # Examples
///
/// ```
/// use transmob_pubsub::{Predicate, Op, Value};
///
/// let p = Predicate::new("price", Op::Le, 100);
/// assert!(p.satisfied_by(&Value::from(99)));
/// assert!(!p.satisfied_by(&Value::from(101)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    attr: String,
    op: Op,
    value: Value,
}

impl Predicate {
    /// Creates a predicate over `attr`.
    pub fn new(attr: impl Into<String>, op: Op, value: impl Into<Value>) -> Self {
        Predicate {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Creates the presence predicate `attr *` (any value).
    pub fn any(attr: impl Into<String>) -> Self {
        Predicate::new(attr, Op::Any, 0)
    }

    /// The attribute this predicate constrains.
    pub fn attr(&self) -> &str {
        &self.attr
    }

    /// The operator.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The operand value.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Evaluates the predicate against the value a publication carries
    /// for this attribute.
    ///
    /// Comparisons between incomparable kinds (e.g. `price < 10` against
    /// a string-valued `price`) are unsatisfied rather than an error, in
    /// keeping with content-based matching semantics.
    pub fn satisfied_by(&self, v: &Value) -> bool {
        match self.op {
            Op::Any => true,
            Op::Eq => v.sem_eq(&self.value),
            Op::Neq => {
                // Only values of a comparable kind can be "not equal";
                // an incomparable kind does not satisfy any constraint.
                matches!(
                    v.compare(&self.value),
                    Some(Ordering::Less) | Some(Ordering::Greater)
                )
            }
            Op::Lt => v.compare(&self.value) == Some(Ordering::Less),
            Op::Le => matches!(
                v.compare(&self.value),
                Some(Ordering::Less) | Some(Ordering::Equal)
            ),
            Op::Gt => v.compare(&self.value) == Some(Ordering::Greater),
            Op::Ge => matches!(
                v.compare(&self.value),
                Some(Ordering::Greater) | Some(Ordering::Equal)
            ),
            Op::StrPrefix => match (v.as_str(), self.value.as_str()) {
                (Some(s), Some(p)) => s.starts_with(p),
                _ => false,
            },
            Op::StrSuffix => match (v.as_str(), self.value.as_str()) {
                (Some(s), Some(p)) => s.ends_with(p),
                _ => false,
            },
            Op::StrContains => match (v.as_str(), self.value.as_str()) {
                (Some(s), Some(p)) => s.contains(p),
                _ => false,
            },
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == Op::Any {
            write!(f, "[{} *]", self.attr)
        } else {
            write!(f, "[{} {} {}]", self.attr, self.op, self.value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_ops_on_ints() {
        let lt = Predicate::new("x", Op::Lt, 10);
        assert!(lt.satisfied_by(&Value::Int(9)));
        assert!(!lt.satisfied_by(&Value::Int(10)));
        let le = Predicate::new("x", Op::Le, 10);
        assert!(le.satisfied_by(&Value::Int(10)));
        let gt = Predicate::new("x", Op::Gt, 10);
        assert!(gt.satisfied_by(&Value::Int(11)));
        assert!(!gt.satisfied_by(&Value::Int(10)));
        let ge = Predicate::new("x", Op::Ge, 10);
        assert!(ge.satisfied_by(&Value::Int(10)));
        assert!(!ge.satisfied_by(&Value::Int(9)));
    }

    #[test]
    fn ordering_ops_across_numeric_kinds() {
        let p = Predicate::new("x", Op::Lt, 10.5);
        assert!(p.satisfied_by(&Value::Int(10)));
        assert!(!p.satisfied_by(&Value::Int(11)));
    }

    #[test]
    fn eq_and_neq() {
        let eq = Predicate::new("c", Op::Eq, "red");
        assert!(eq.satisfied_by(&Value::from("red")));
        assert!(!eq.satisfied_by(&Value::from("blue")));
        let neq = Predicate::new("c", Op::Neq, "red");
        assert!(neq.satisfied_by(&Value::from("blue")));
        assert!(!neq.satisfied_by(&Value::from("red")));
        // incomparable kind does not satisfy Neq either
        assert!(!neq.satisfied_by(&Value::Int(3)));
    }

    #[test]
    fn any_matches_everything() {
        let p = Predicate::any("x");
        assert!(p.satisfied_by(&Value::Int(0)));
        assert!(p.satisfied_by(&Value::from("s")));
        assert!(p.satisfied_by(&Value::from(false)));
    }

    #[test]
    fn string_ops() {
        let pre = Predicate::new("topic", Op::StrPrefix, "stock/");
        assert!(pre.satisfied_by(&Value::from("stock/ibm")));
        assert!(!pre.satisfied_by(&Value::from("news/ibm")));
        let suf = Predicate::new("topic", Op::StrSuffix, "ibm");
        assert!(suf.satisfied_by(&Value::from("stock/ibm")));
        let con = Predicate::new("topic", Op::StrContains, "ock");
        assert!(con.satisfied_by(&Value::from("stock/ibm")));
        assert!(!con.satisfied_by(&Value::from("bond/ibm")));
    }

    #[test]
    fn string_ops_unsatisfied_by_non_strings() {
        let pre = Predicate::new("topic", Op::StrPrefix, "a");
        assert!(!pre.satisfied_by(&Value::Int(1)));
    }

    #[test]
    fn incomparable_ordering_is_unsatisfied() {
        let p = Predicate::new("x", Op::Lt, 10);
        assert!(!p.satisfied_by(&Value::from("5")));
    }

    #[test]
    fn display_round_trip_is_readable() {
        let p = Predicate::new("price", Op::Le, 100);
        assert_eq!(p.to_string(), "[price <= 100]");
        assert_eq!(Predicate::any("x").to_string(), "[x *]");
    }
}
