//! Identifiers and named pub/sub entities shared by every layer of the
//! system: brokers, clients, subscriptions, advertisements, movement
//! transactions, and publications.
//!
//! All ids are plain newtypes (cheap to copy, totally ordered,
//! hashable) so they can key routing tables and appear in wire
//! messages.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::filter::Filter;
use crate::publication::Publication;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw id value.
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a broker in the overlay.
    BrokerId, u32, "B"
);
id_newtype!(
    /// Identifier of a pub/sub client (stationary or mobile).
    ClientId, u64, "C"
);
id_newtype!(
    /// Identifier of a movement transaction.
    MoveId, u64, "M"
);
id_newtype!(
    /// Identifier of a publication instance (for exactly-once
    /// accounting in the notification-property checkers).
    PubId, u64, "P"
);

/// Identifier of a subscription: the issuing client plus a
/// client-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubId {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: u32,
}

impl SubId {
    /// Creates a subscription id.
    pub fn new(client: ClientId, seq: u32) -> Self {
        SubId { client, seq }
    }
}

impl fmt::Display for SubId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}.{}", self.client.0, self.seq)
    }
}

/// Identifier of an advertisement: the issuing client plus a
/// client-local sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AdvId {
    /// Issuing client.
    pub client: ClientId,
    /// Client-local sequence number.
    pub seq: u32,
}

impl AdvId {
    /// Creates an advertisement id.
    pub fn new(client: ClientId, seq: u32) -> Self {
        AdvId { client, seq }
    }
}

impl fmt::Display for AdvId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}.{}", self.client.0, self.seq)
    }
}

/// A named subscription: id plus filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subscription {
    /// Unique id.
    pub id: SubId,
    /// The content filter.
    pub filter: Filter,
}

impl Subscription {
    /// Creates a subscription.
    pub fn new(id: SubId, filter: Filter) -> Self {
        Subscription { id, filter }
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.id, self.filter)
    }
}

/// A named advertisement: id plus filter describing the publications
/// the advertiser will produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advertisement {
    /// Unique id.
    pub id: AdvId,
    /// The content filter.
    pub filter: Filter,
    /// Residual flood budget on cyclic overlays: decremented per
    /// broker hop, the flood stops at zero. `None` (the default, and
    /// the only value on acyclic overlays) leaves termination to the
    /// per-broker visited set alone.
    #[serde(default)]
    pub ttl: Option<u32>,
}

impl Advertisement {
    /// Creates an advertisement with no flood budget.
    pub fn new(id: AdvId, filter: Filter) -> Self {
        Advertisement {
            id,
            filter,
            ttl: None,
        }
    }

    /// The same advertisement with a bounded flood budget.
    pub fn with_ttl(mut self, ttl: u32) -> Self {
        self.ttl = Some(ttl);
        self
    }
}

impl fmt::Display for Advertisement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.id, self.filter)
    }
}

/// A publication stamped with its id and publisher, as it travels the
/// broker network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublicationMsg {
    /// Unique id of this publication instance.
    pub id: PubId,
    /// Publishing client.
    pub publisher: ClientId,
    /// The content.
    pub content: Publication,
    /// Broker-to-broker hops travelled so far. Incremented only by
    /// multi-path forwarders on cyclic overlays, where it hard-bounds
    /// a publication's lifetime should the dedup window ever fail to;
    /// stays zero on acyclic overlays.
    #[serde(default)]
    pub hops: u32,
}

impl PublicationMsg {
    /// Creates a stamped publication.
    pub fn new(id: PubId, publisher: ClientId, content: Publication) -> Self {
        PublicationMsg {
            id,
            publisher,
            content,
            hops: 0,
        }
    }
}

impl fmt::Display for PublicationMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}{}", self.id, self.publisher, self.content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Filter;

    #[test]
    fn id_display_prefixes() {
        assert_eq!(BrokerId(3).to_string(), "B3");
        assert_eq!(ClientId(7).to_string(), "C7");
        assert_eq!(MoveId(1).to_string(), "M1");
        assert_eq!(SubId::new(ClientId(2), 4).to_string(), "S2.4");
        assert_eq!(AdvId::new(ClientId(2), 0).to_string(), "A2.0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::{BTreeSet, HashSet};
        let mut b = BTreeSet::new();
        b.insert(BrokerId(2));
        b.insert(BrokerId(1));
        assert_eq!(b.iter().next(), Some(&BrokerId(1)));
        let mut h = HashSet::new();
        h.insert(SubId::new(ClientId(1), 1));
        assert!(h.contains(&SubId::new(ClientId(1), 1)));
    }

    #[test]
    fn raw_and_from_round_trip() {
        let b: BrokerId = 5u32.into();
        assert_eq!(b.raw(), 5);
    }

    #[test]
    fn named_entities_display() {
        let s = Subscription::new(
            SubId::new(ClientId(1), 0),
            Filter::builder().eq("x", 1).build(),
        );
        assert_eq!(s.to_string(), "S1.0{[x = 1]}");
    }
}
