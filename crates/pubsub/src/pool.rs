//! Persistent worker pool and per-worker scratch for the parallel
//! matching stage.
//!
//! The first parallel matching stage spawned (and joined) a fresh set
//! of scoped OS threads on *every* batch, and re-allocated every
//! per-batch buffer — the probe regrouping maps and, worst of all, a
//! dense slot-countdown array re-seeded per publication. Profiles of
//! the wide-attribute workload showed those serial per-batch costs
//! swamping the probe work the threads were supposed to split, which
//! is exactly the shards1 ≈ shards4 ≈ shards8 plateau recorded in
//! `BENCH_routing.json` before this module existed.
//!
//! [`WorkerPool`] fixes the first half: workers are OS threads started
//! *lazily* on first multi-worker batch, parked on a [`crossbeam`]
//! channel job queue, and reused for every subsequent batch (clones of
//! a `MatchIndex` share one pool through an `Arc`, so a broker's SRT
//! and PRT snapshots do not multiply threads). [`MatchScratch`] fixes
//! the second half: each pool slot owns reusable buffers — the packed
//! sweep rows and a publication-major satisfied-constraint count grid
//! the sweep bumps *directly*, replacing both the per-shard hit lists
//! and the dense per-publication countdown re-seed of the inline
//! stage — that keep their capacity across batches.
//!
//! # Scoped semantics on a persistent pool
//!
//! [`WorkerPool::run`] hands workers a *lifetime-erased* pointer to
//! the caller's closure, which borrows batch-local state. Soundness
//! follows the same argument as `std::thread::scope`: `run` does not
//! return until every dispatched invocation has finished (a latch the
//! caller waits on even when unwinding), so the borrow outlives every
//! use. Worker panics are caught, recorded, and re-raised on the
//! caller once the batch is quiescent.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Reusable per-worker buffers for the pooled matching stage. One
/// instance per pool slot, retained across batches so the stage does
/// no steady-state allocation beyond its result rows.
#[derive(Debug, Default)]
pub(crate) struct MatchScratch {
    /// Publication-major constraint countdowns of the current
    /// sub-chunk: `grid[pi * nslots + slot]`, seeded from the arity
    /// `template` and counted *down* by the probes, which emit a match
    /// the moment a cell reaches zero — no separate merge pass, no
    /// per-hit arity lookup (the emission check is against the
    /// constant zero). The publication-major layout keeps all of one
    /// publication's bumps inside its own `nslots`-cell block, so the
    /// hot block stays cached however large the whole grid is. `u16`
    /// counts are safe because a cell is decremented at most once per
    /// constraint of one filter (the pooled stage falls back when any
    /// filter's arity exceeds `u16::MAX`).
    pub grid: Vec<u16>,
    /// Per-slot arity seed row, `u16`-narrowed once per chunk.
    pub template: Vec<u16>,
    /// Slots completed by the publication currently being probed, in
    /// bump order.
    pub matches: Vec<u32>,
    /// Rank-space staging of the current publication's result row
    /// (sorted as plain `u32`s, then mapped back to keys).
    pub ranks: Vec<u32>,
}

impl MatchScratch {
    /// Narrows the slot arities into the seed row (once per chunk).
    pub fn set_template(&mut self, arity: &[u32]) {
        self.template.clear();
        self.template.extend(arity.iter().map(|&a| a as u16));
    }

    /// Seeds the grid for an `n`-publication sub-chunk: one template
    /// copy per publication row, retaining capacity across batches.
    pub fn seed_grid(&mut self, n: usize) {
        self.grid.clear();
        for _ in 0..n {
            self.grid.extend_from_slice(&self.template);
        }
        self.matches.clear();
    }
}

/// A dispatched unit of [`WorkerPool::run`]: a lifetime-erased call of
/// the caller's closure with this job's scratch-slot index.
struct Job {
    call: unsafe fn(*const (), usize),
    ctx: *const (),
    slot: usize,
    latch: Arc<Latch>,
}

// SAFETY: `ctx` points into the stack frame of the `run` caller, which
// blocks on the job latch until the job has finished (including on
// unwind); the pointee is `Sync` (bounded in `run`), so sharing the
// pointer with a worker thread is sound.
unsafe impl Send for Job {}

/// Completion latch for one `run` fan-out.
struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            left: Mutex::new(n),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn done(&self, panicked: bool) {
        if panicked {
            self.panicked.store(true, Ordering::Relaxed);
        }
        let mut left = self.left.lock().unwrap_or_else(|p| p.into_inner());
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.left.lock().unwrap_or_else(|p| p.into_inner());
        while *left > 0 {
            left = self.cv.wait(left).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Observable pool counters (regression tests pin the lifecycle
/// contract — lazy start, no per-batch spawning — against these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned over the pool's lifetime.
    pub workers_spawned: usize,
    /// `run` fan-outs dispatched over the pool's lifetime.
    pub runs: usize,
}

/// The persistent, lazily-started worker pool (module docs).
pub(crate) struct WorkerPool {
    queue: OnceLock<(Sender<Job>, Receiver<Job>)>,
    spawned: AtomicUsize,
    runs: AtomicUsize,
    /// Serializes worker spawning (the queue itself is lock-free for
    /// job dispatch).
    grow: Mutex<()>,
    /// Per-slot scratch, created on demand; `Arc` so a slot's buffers
    /// can be checked out without holding the registry lock.
    scratch: Mutex<Vec<Arc<Mutex<MatchScratch>>>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers_spawned", &self.spawned.load(Ordering::Relaxed))
            .field("runs", &self.runs.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// An empty pool; no threads run until the first multi-worker
    /// batch.
    pub fn new() -> Self {
        WorkerPool {
            queue: OnceLock::new(),
            spawned: AtomicUsize::new(0),
            runs: AtomicUsize::new(0),
            grow: Mutex::new(()),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Lifecycle counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers_spawned: self.spawned.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
        }
    }

    /// The reusable scratch of pool slot `slot`.
    pub fn scratch(&self, slot: usize) -> Arc<Mutex<MatchScratch>> {
        let mut reg = self.scratch.lock().unwrap_or_else(|p| p.into_inner());
        while reg.len() <= slot {
            reg.push(Arc::new(Mutex::new(MatchScratch::default())));
        }
        Arc::clone(&reg[slot])
    }

    /// Runs `task(slot)` for every slot in `0..fanout`, slot 0 on the
    /// calling thread and the rest on pool workers, returning once all
    /// invocations have finished. `fanout <= 1` runs entirely inline
    /// and touches no thread machinery.
    ///
    /// Workers are spawned on first need and reused afterwards; a
    /// worker panic is re-raised here after the fan-out is quiescent.
    pub fn run<F>(&self, fanout: usize, task: &F)
    where
        F: Fn(usize) + Sync,
    {
        self.runs.fetch_add(1, Ordering::Relaxed);
        if fanout <= 1 {
            task(0);
            return;
        }
        let helpers = fanout - 1;
        self.ensure_workers(helpers);
        // unwrap: ensure_workers initialized the queue
        let (tx, _) = self.queue.get().unwrap();
        let latch = Arc::new(Latch::new(helpers));

        unsafe fn call<F: Fn(usize)>(ctx: *const (), slot: usize) {
            // SAFETY: see the `Job` Send rationale — the `run` caller
            // keeps `task` alive until the latch opens.
            unsafe { (*(ctx as *const F))(slot) }
        }
        /// Blocks on the latch even if `task(0)` unwinds below, so no
        /// worker can observe a dead `ctx`.
        struct WaitGuard<'a>(&'a Latch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }

        let guard = WaitGuard(&latch);
        for slot in 1..=helpers {
            let job = Job {
                call: call::<F>,
                ctx: task as *const F as *const (),
                slot,
                latch: Arc::clone(&latch),
            };
            // Workers never drop the receiver while the pool (and
            // thus the sender) is alive.
            if tx.send(job).is_err() {
                unreachable!("matching pool queue disconnected while the pool is alive");
            }
        }
        task(0);
        drop(guard);
        if latch.panicked.load(Ordering::Relaxed) {
            panic!("parallel matching worker panicked");
        }
    }

    /// Makes at least `n` workers exist, starting the queue on first
    /// use.
    fn ensure_workers(&self, n: usize) {
        if self.spawned.load(Ordering::Acquire) >= n {
            return;
        }
        let _g = self.grow.lock().unwrap_or_else(|p| p.into_inner());
        let have = self.spawned.load(Ordering::Relaxed);
        if have >= n {
            return;
        }
        let (_, rx) = self.queue.get_or_init(unbounded);
        for i in have..n {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("transmob-match-{i}"))
                .spawn(move || worker_loop(rx))
                .expect("spawn matching pool worker");
        }
        self.spawned.store(n, Ordering::Release);
    }
}

/// Worker body: park on the queue, run jobs, report completion. Exits
/// when the pool (the last sender) is dropped.
fn worker_loop(rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let ok = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the dispatching `run` call blocks until this job
            // reports done, keeping the pointee alive.
            unsafe { (job.call)(job.ctx, job.slot) }
        }))
        .is_ok();
        job.latch.done(!ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_fanout_spawns_nothing() {
        let pool = WorkerPool::new();
        let hits = AtomicUsize::new(0);
        pool.run(1, &|slot| {
            assert_eq!(slot, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.stats().workers_spawned, 0);
        assert_eq!(pool.stats().runs, 1);
    }

    #[test]
    fn workers_are_reused_across_runs() {
        let pool = WorkerPool::new();
        for _ in 0..10 {
            let mask = AtomicUsize::new(0);
            pool.run(4, &|slot| {
                mask.fetch_or(1 << slot, Ordering::Relaxed);
            });
            assert_eq!(mask.load(Ordering::Relaxed), 0b1111, "all slots ran");
        }
        let stats = pool.stats();
        assert_eq!(stats.workers_spawned, 3, "workers spawned once, reused");
        assert_eq!(stats.runs, 10);
    }

    #[test]
    fn pool_grows_to_the_largest_fanout() {
        let pool = WorkerPool::new();
        pool.run(2, &|_| {});
        assert_eq!(pool.stats().workers_spawned, 1);
        pool.run(5, &|_| {});
        assert_eq!(pool.stats().workers_spawned, 4);
        pool.run(3, &|_| {});
        assert_eq!(
            pool.stats().workers_spawned,
            4,
            "never shrinks, never respawns"
        );
    }

    #[test]
    fn run_borrows_caller_state_mutably_through_sync_cells() {
        let pool = WorkerPool::new();
        let data: Vec<Mutex<usize>> = (0..8).map(Mutex::new).collect();
        pool.run(4, &|slot| {
            for cell in &data {
                let mut g = cell.lock().unwrap();
                *g += slot; // every slot touches every cell
            }
        });
        let total: usize = data.into_iter().map(|c| c.into_inner().unwrap()).sum();
        // initial 0+..+7 = 28, plus (0+1+2+3) added to each of 8 cells.
        assert_eq!(total, 28 + 6 * 8);
    }

    #[test]
    fn worker_panic_is_reraised_on_the_caller() {
        let pool = WorkerPool::new();
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|slot| {
                if slot == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "panic must cross back to the caller");
        // The pool must remain usable after a worker panic.
        let ok = AtomicUsize::new(0);
        pool.run(3, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn scratch_slots_are_stable_and_reused() {
        let pool = WorkerPool::new();
        {
            let s = pool.scratch(2);
            let mut g = s.lock().unwrap();
            g.set_template(&[2; 10]);
            g.seed_grid(4);
            g.grid[3] = 7;
        }
        let s = pool.scratch(2);
        let g = s.lock().unwrap();
        assert_eq!(g.grid.len(), 40, "scratch persists across checkouts");
        assert_eq!(g.grid[3], 7);
    }

    #[test]
    fn seed_grid_reseeds_every_cell_from_the_template() {
        let mut sc = MatchScratch::default();
        sc.set_template(&[1, 2, 3, 4, 5]);
        sc.seed_grid(3);
        sc.grid.iter_mut().for_each(|c| *c = 9);
        sc.matches.push(7);
        sc.seed_grid(2);
        assert_eq!(sc.grid, vec![1, 2, 3, 4, 5, 1, 2, 3, 4, 5]);
        assert!(sc.matches.is_empty(), "stale matches must not leak");
    }
}
