//! A fast, non-cryptographic hasher for the matching hot paths.
//!
//! The counting match index bumps a per-key counter for every
//! satisfied constraint row — hundreds of hash-map operations per
//! publication — and the default SipHash dominates that loop. Keys
//! here are small fixed-size ids (or short attribute names) coming
//! from trusted broker state, not attacker-controlled input, so a
//! multiply–rotate word hasher is appropriate: one rotate, one xor
//! and one multiply per written word.
//!
//! The mixing step is the widely used `FxHash` construction
//! (rotate-xor-multiply by a golden-ratio-derived odd constant).
//!
//! # Determinism across shards (audit note)
//!
//! The sharded match index partitions attributes with a bare
//! [`FastHasher`] (`shard_of_in`), and each shard owns its own
//! [`FastMap`]s keyed by the same attribute strings. This is sound
//! because the hasher carries **no per-instance state**:
//! [`BuildHasherDefault`] zero-initializes every hasher, so equal key
//! bytes hash identically in every map, every shard, every process and
//! every run. The shard an attribute maps to is a pure function of its
//! bytes and the shard count — re-partitioning on a layout change and
//! the scatter step of the parallel matching stage can therefore never
//! disagree about ownership, and a key is never "reused" across shards:
//! it lives in exactly the one shard its hash names.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio multiplier (odd, high entropy in the top bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply–rotate word hasher; see the module docs for the contract.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ≠ "ab\0".
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i.into());
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i.into());
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// [`HashMap`] keyed through [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// [`HashSet`] keyed through [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_mixed_keys() {
        let mut m: FastMap<String, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hashing_is_stateless_and_reproducible() {
        // The sharding partition function relies on every
        // freshly-built hasher (bare or via `BuildHasherDefault`)
        // agreeing on equal bytes; a per-instance seed would silently
        // split one attribute across shards.
        use std::hash::BuildHasher;
        let build = BuildHasherDefault::<FastHasher>::default();
        for key in ["", "x", "attr-name", "k00", "a-rather-longer-attribute"] {
            let mut a = FastHasher::default();
            a.write(key.as_bytes());
            let mut b = build.build_hasher();
            b.write(key.as_bytes());
            let mut c = FastHasher::default();
            c.write(key.as_bytes());
            assert_eq!(a.finish(), b.finish(), "builder disagreed on {key:?}");
            assert_eq!(a.finish(), c.finish(), "fresh hasher disagreed on {key:?}");
        }
    }

    #[test]
    fn string_prefixes_do_not_collide_trivially() {
        // The length fold keeps zero-padded tails of different lengths
        // apart; spot-check the shapes the prefix buckets rely on.
        let hash = |s: &str| {
            let mut h = FastHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        let keys = [
            "",
            "g",
            "g1",
            "g1\0",
            "g12",
            "g123456",
            "g1234567",
            "g12345678",
        ];
        let mut seen = std::collections::BTreeSet::new();
        for k in keys {
            assert!(seen.insert(hash(k)), "collision on {k:?}");
        }
    }
}
