//! The paper's notification **consistency** property (Sec. 3.4),
//! checked literally: the notifications `N_T(t0→∞)` a client receives
//! when its movement *succeeds* must equal the notifications
//! `N_S(t0→∞)` it receives when the identical movement is *rejected*
//! and it stays at the source. Two runs with identical schedules,
//! differing only in the target's admission decision, must deliver the
//! same set.
//!
//! Also: the **isolation** property — other clients' notification
//! streams are identical whether the movement commits or aborts.

use std::collections::BTreeSet;

use transmob_core::{ClientOp, InstantNet, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, PubId, Publication};
use transmob_workloads::default_14;

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// Runs the reference schedule; `target_accepts` flips the admission
/// decision at the target broker. Returns the delivered sets of the
/// mover and of a stationary observer.
fn run(
    protocol: ProtocolKind,
    target_accepts: bool,
) -> (BTreeSet<PubId>, Vec<PubId>, Option<BrokerId>) {
    let config = match protocol {
        ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
        ProtocolKind::Covering => MobileBrokerConfig::covering(),
    };
    let mut net = InstantNet::builder()
        .overlay(default_14())
        .options(config)
        .start();
    let publisher = c(1);
    let mover = c(2);
    let observer = c(3);
    net.create_client(b(6), publisher);
    net.create_client(b(13), mover);
    net.create_client(b(14), observer);
    net.broker_mut(b(2)).set_accept_moves(target_accepts);
    net.client_op(publisher, ClientOp::Advertise(range(0, 1000)));
    net.client_op(mover, ClientOp::Subscribe(range(0, 500)));
    net.client_op(observer, ClientOp::Subscribe(range(200, 800)));
    // t0: the movement starts; publications continue either way.
    for x in [100, 300] {
        net.client_op(
            publisher,
            ClientOp::Publish(Publication::new().with("x", x)),
        );
    }
    net.client_op(mover, ClientOp::MoveTo(b(2), protocol));
    for x in [150, 350, 450] {
        net.client_op(
            publisher,
            ClientOp::Publish(Publication::new().with("x", x)),
        );
    }
    let mover_set: BTreeSet<PubId> = net.deliveries_to(mover).iter().map(|p| p.id).collect();
    let observer_stream: Vec<PubId> = net.deliveries_to(observer).iter().map(|p| p.id).collect();
    (mover_set, observer_stream, net.find_client(mover))
}

#[test]
fn consistency_moved_equals_stayed_reconfig() {
    let (moved, observer_moved, where_moved) = run(ProtocolKind::Reconfig, true);
    let (stayed, observer_stayed, where_stayed) = run(ProtocolKind::Reconfig, false);
    assert_eq!(where_moved, Some(b(2)), "accepting run must commit");
    assert_eq!(where_stayed, Some(b(13)), "rejecting run must abort");
    // N_T(t0→∞) == N_S(t0→∞): the mover receives the same
    // notifications whether the movement succeeded or failed.
    assert_eq!(moved, stayed, "consistency property violated");
    assert_eq!(moved.len(), 5); // all of x ∈ {100, 300, 150, 350, 450} match [0,500]
                                // Isolation: the observer's stream is unaffected by the outcome.
    assert_eq!(
        observer_moved, observer_stayed,
        "isolation property violated"
    );
    assert_eq!(observer_moved.len(), 3); // x ∈ {300, 350, 450} match [200,800]
}

#[test]
fn consistency_moved_equals_stayed_covering_quiescent() {
    // On the instantaneous network (no in-flight window) the covering
    // baseline also satisfies consistency; the timing-faithful
    // simulator demonstrates where it does not
    // (sim/tests/notification_properties.rs).
    let (moved, observer_moved, where_moved) = run(ProtocolKind::Covering, true);
    let (stayed, observer_stayed, where_stayed) = run(ProtocolKind::Covering, false);
    assert_eq!(where_moved, Some(b(2)));
    assert_eq!(where_stayed, Some(b(13)));
    assert_eq!(moved, stayed);
    assert_eq!(observer_moved, observer_stayed);
}

#[test]
fn rejected_move_emits_reject_not_timeout() {
    // The admission rejection travels the explicit Reject path (paper
    // message (3)); no timers are involved and no pendings linger.
    let mut net = InstantNet::builder()
        .overlay(default_14())
        .options(MobileBrokerConfig::reconfig())
        .start();
    net.create_client(b(13), c(2));
    net.client_op(c(2), ClientOp::Subscribe(range(0, 500)));
    net.broker_mut(b(2)).set_accept_moves(false);
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    assert_eq!(net.find_client(c(2)), Some(b(13)));
    assert!(net.armed_timers().is_empty());
    for (id, broker) in net.brokers() {
        assert!(
            broker.core().prt().iter().all(|(_, e)| e.pending.is_none()),
            "pending left at {id} after rejection"
        );
    }
    assert_eq!(net.total_anomalies(), 0);
}

#[test]
fn isolation_mover_publications_reach_others_exactly_once() {
    // The Sec. 3.4 isolation proof: the mover publishes the same
    // stream whether it moves or not, and every other client receives
    // each publication exactly once. Here the mover publishes around a
    // movement; the observer's stream must be loss- and dup-free.
    let mut net = InstantNet::builder()
        .overlay(default_14())
        .options(MobileBrokerConfig::reconfig())
        .start();
    let mover = c(2);
    let observer = c(3);
    net.create_client(b(13), mover);
    net.create_client(b(14), observer);
    net.client_op(mover, ClientOp::Advertise(range(0, 1000)));
    net.client_op(observer, ClientOp::Subscribe(range(0, 1000)));
    net.client_op(mover, ClientOp::Publish(Publication::new().with("x", 1)));
    net.client_op(mover, ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    net.client_op(mover, ClientOp::Publish(Publication::new().with("x", 2)));
    net.client_op(mover, ClientOp::MoveTo(b(7), ProtocolKind::Reconfig));
    net.client_op(mover, ClientOp::Publish(Publication::new().with("x", 3)));
    let stream: Vec<PubId> = net.deliveries_to(observer).iter().map(|p| p.id).collect();
    let unique: BTreeSet<PubId> = stream.iter().copied().collect();
    assert_eq!(stream.len(), 3, "observer missed a mover publication");
    assert_eq!(unique.len(), 3, "observer saw duplicates");
    assert_eq!(net.total_anomalies(), 0);
}
