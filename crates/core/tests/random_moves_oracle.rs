//! Property-based end-to-end oracle for the reconfiguration protocol:
//! after an *arbitrary* sequence of client movements, the set of
//! clients receiving a probe publication must equal the set of clients
//! whose subscription filter matches it — membership is position-
//! independent, so any divergence means the movement machinery
//! corrupted routing state somewhere.

use std::collections::BTreeSet;

use proptest::prelude::*;
use transmob_core::{properties, ClientOp, InstantNet, MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_workloads::{default_14, full_space_adv, SubWorkload, ATTR};

const N_CLIENTS: u64 = 12;
const BROKERS: [u32; 6] = [1, 2, 7, 11, 13, 14];

#[derive(Debug, Clone)]
struct Move {
    client: u64,
    dest: u32,
}

fn arb_moves() -> impl Strategy<Value = Vec<Move>> {
    proptest::collection::vec(
        (0..N_CLIENTS, 0..BROKERS.len()).prop_map(|(client, d)| Move {
            client,
            dest: BROKERS[d],
        }),
        1..15,
    )
}

fn filters() -> Vec<Filter> {
    (0..N_CLIENTS as usize)
        .map(|i| SubWorkload::Covered.assign(i))
        .collect()
}

fn run_and_probe(moves: &[Move], protocol: ProtocolKind) -> Result<(), TestCaseError> {
    let config = match protocol {
        ProtocolKind::Reconfig => MobileBrokerConfig::reconfig(),
        ProtocolKind::Covering => MobileBrokerConfig::covering(),
    };
    let mut net = InstantNet::builder()
        .overlay(default_14())
        .options(config)
        .start();
    let publisher = ClientId(500);
    net.create_client(BrokerId(6), publisher);
    net.client_op(publisher, ClientOp::Advertise(full_space_adv()));
    let fs = filters();
    for (i, f) in fs.iter().enumerate() {
        let id = ClientId(1000 + i as u64);
        net.create_client(BrokerId(BROKERS[i % BROKERS.len()]), id);
        net.client_op(id, ClientOp::Subscribe(f.clone()));
    }
    for mv in moves {
        net.client_op(
            ClientId(1000 + mv.client),
            ClientOp::MoveTo(BrokerId(mv.dest), protocol),
        );
    }
    // Probe several attribute values; receivers must be exactly the
    // filter-matching clients, regardless of where everyone ended up.
    for (k, x) in [55i64, 555, 1555, 5050, 9999].iter().enumerate() {
        let probe = Publication::new().with(ATTR, *x);
        let expected: BTreeSet<ClientId> = fs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches(&probe))
            .map(|(i, _)| ClientId(1000 + i as u64))
            .collect();
        net.take_events();
        net.client_op(publisher, ClientOp::Publish(probe.clone()));
        let got: BTreeSet<ClientId> = net
            .deliveries_to_all()
            .into_iter()
            .filter(|c| c.0 >= 1000)
            .collect();
        prop_assert_eq!(
            &got,
            &expected,
            "probe {} ({}th) diverged after {:?}",
            x,
            k,
            moves
        );
    }
    prop_assert_eq!(net.total_anomalies(), 0, "anomalies after {:?}", moves);
    properties::assert_single_instance(&net).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reconfig_random_moves_preserve_membership_semantics(moves in arb_moves()) {
        run_and_probe(&moves, ProtocolKind::Reconfig)?;
    }

    #[test]
    fn covering_random_moves_preserve_membership_semantics(moves in arb_moves()) {
        run_and_probe(&moves, ProtocolKind::Covering)?;
    }
}

/// Publisher-movement variant: random publisher moves over both the
/// Fig. 6 overlay and a random tree; after every quiescent state the
/// structural SRT invariant (paper Sec. 3.5 clause (ii)) must hold and
/// publications must reach all matching subscribers.
fn run_publisher_moves(
    topology: transmob_broker::Topology,
    moves: &[Move],
) -> Result<(), TestCaseError> {
    let brokers: Vec<BrokerId> = topology.brokers().collect();
    let mut net = InstantNet::builder()
        .overlay(topology)
        .options(MobileBrokerConfig::reconfig())
        .start();
    // Three moving publishers, four stationary subscribers.
    let fs = filters();
    for i in 0..3u64 {
        let id = ClientId(500 + i);
        net.create_client(brokers[i as usize % brokers.len()], id);
        net.client_op(id, ClientOp::Advertise(full_space_adv()));
    }
    for i in 0..4usize {
        let id = ClientId(1000 + i as u64);
        net.create_client(brokers[(2 * i + 1) % brokers.len()], id);
        net.client_op(id, ClientOp::Subscribe(fs[i].clone()));
    }
    properties::check_srt_paths(&net).map_err(|e| TestCaseError::fail(format!("{e}")))?;
    for mv in moves {
        let publisher = ClientId(500 + mv.client % 3);
        let dest = brokers[mv.dest as usize % brokers.len()];
        net.client_op(publisher, ClientOp::MoveTo(dest, ProtocolKind::Reconfig));
        properties::check_srt_paths(&net)
            .map_err(|e| TestCaseError::fail(format!("after {mv:?}: {e}")))?;
    }
    // Functional check from each publisher's final position.
    for (k, x) in [55i64, 1555, 5050].iter().enumerate() {
        let probe = Publication::new().with(ATTR, *x);
        let expected: BTreeSet<ClientId> = fs
            .iter()
            .take(4)
            .enumerate()
            .filter(|(_, f)| f.matches(&probe))
            .map(|(i, _)| ClientId(1000 + i as u64))
            .collect();
        net.take_events();
        net.client_op(ClientId(500 + k as u64 % 3), ClientOp::Publish(probe));
        let got: BTreeSet<ClientId> = net
            .deliveries_to_all()
            .into_iter()
            .filter(|c| c.0 >= 1000)
            .collect();
        prop_assert_eq!(&got, &expected, "probe {} diverged after {:?}", x, moves);
    }
    prop_assert_eq!(net.total_anomalies(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn publisher_moves_keep_srt_on_shortest_paths_fig6(moves in arb_moves()) {
        run_publisher_moves(default_14(), &moves)?;
    }

    #[test]
    fn publisher_moves_keep_srt_on_shortest_paths_random_tree(
        moves in arb_moves(),
        seed in 0u64..50,
    ) {
        run_publisher_moves(transmob_workloads::random_tree(9, seed), &moves)?;
    }
}
