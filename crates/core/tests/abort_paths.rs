//! Failure injection on the movement transaction: negotiate timeouts
//! fired mid-flight, abort passes crossing in-flight reconfiguration
//! messages, target-side state timeouts, and rollback of shadow
//! routing configurations — the non-blocking 3PC behaviour of
//! Sec. 4.1/4.2.

use transmob_broker::Topology;
use transmob_core::{
    properties, ClientOp, InstantNet, MobileBrokerConfig, NetEvent, ProtocolKind, TimerKind,
};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

fn timed_config() -> MobileBrokerConfig {
    MobileBrokerConfig {
        negotiate_timeout_ns: Some(1_000_000_000),
        state_timeout_ns: Some(2_000_000_000),
        ..MobileBrokerConfig::reconfig()
    }
}

fn setup(n: u32, config: MobileBrokerConfig) -> InstantNet {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(n))
        .options(config)
        .start();
    net.create_client(b(1), c(1));
    net.create_client(b(n), c(2));
    net.client_op(c(1), ClientOp::Advertise(range(0, 100)));
    net.client_op(c(2), ClientOp::Subscribe(range(0, 100)));
    net
}

fn publish(net: &mut InstantNet, x: i64) {
    net.client_op(c(1), ClientOp::Publish(Publication::new().with("x", x)));
}

#[test]
fn negotiate_timeout_before_any_delivery_aborts_cleanly() {
    let mut net = setup(5, timed_config());
    // Start the move but do not let the negotiate travel at all.
    net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    let timer = net
        .armed_timers()
        .iter()
        .find(|t| t.token.kind == TimerKind::Negotiate)
        .copied()
        .expect("negotiate timer armed");
    assert!(net.fire_timer(timer.broker, timer.token));
    // The movement aborted; the client resumed at the source.
    let events = net.take_events();
    assert!(events.iter().any(|e| matches!(
        e,
        NetEvent::MoveFinished {
            committed: false,
            ..
        }
    )));
    assert_eq!(net.find_client(c(2)), Some(b(5)));
    // The network is fully clean: a publication arrives exactly once,
    // and the late negotiate (still queued when the timer fired) plus
    // the abort sweep left no pendings behind.
    publish(&mut net, 10);
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 1);
    properties::assert_exactly_once(&stream).unwrap();
    properties::assert_single_instance(&net).unwrap();
    for i in 1..=5 {
        let core = net.broker(b(i)).core();
        assert!(
            core.prt().iter().all(|(_, e)| e.pending.is_none()),
            "stale pending at B{i}"
        );
    }
}

#[test]
fn negotiate_timeout_crossing_reconfigure_in_flight() {
    // Let the protocol progress partway: the negotiate reaches the
    // target and the reconfiguration message starts walking back, THEN
    // the source times out. The abort pass and the reconfigure cross;
    // the source re-issues the abort when the late reconfigure
    // arrives, and everything converges clean.
    for steps in 1..12usize {
        let mut net = setup(5, timed_config());
        net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
        net.step_n(steps);
        let Some(timer) = net
            .armed_timers()
            .iter()
            .find(|t| t.token.kind == TimerKind::Negotiate)
            .copied()
        else {
            // The protocol already passed the wait state: nothing to
            // inject at this depth.
            net.run();
            continue;
        };
        net.fire_timer(timer.broker, timer.token);
        net.run();
        // Whatever the interleaving, the invariants hold:
        properties::assert_single_instance(&net).unwrap();
        publish(&mut net, 10 + steps as i64);
        let stream = net.deliveries_to(c(2));
        assert_eq!(
            stream.len(),
            1,
            "delivery broken at injection depth {steps}"
        );
        for i in 1..=5 {
            let core = net.broker(b(i)).core();
            assert!(
                core.prt().iter().all(|(_, e)| e.pending.is_none()),
                "stale pending at B{i} (depth {steps})"
            );
        }
    }
}

#[test]
fn state_timeout_after_source_crash_equivalent() {
    // Drive the protocol until the target prepared (client copy
    // created, state timer armed), then pretend the source died by
    // firing the target's state timeout. The target destroys its copy
    // and sweeps the path back.
    let mut net = setup(5, timed_config());
    net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    // Walk the negotiate to the target (3 hops) and let it prepare,
    // but stop before the reconfigure reaches the source.
    net.step_n(4);
    let state_timer = net
        .armed_timers()
        .iter()
        .find(|t| t.token.kind == TimerKind::State)
        .copied()
        .expect("target prepared and armed the state timer");
    // Drop everything still in flight (simulates a source crash whose
    // messages never materialize).
    let dropped = net.drain_queue();
    assert!(dropped > 0);
    net.fire_timer(state_timer.broker, state_timer.token);
    net.run();
    // Target copy destroyed; only the (crashed, here: silent) source
    // copy remains.
    assert_eq!(net.find_client(c(2)), Some(b(5)));
    properties::assert_single_instance(&net).unwrap();
    let target_core = net.broker(b(2)).core();
    assert!(
        target_core.prt().iter().all(|(_, e)| e.pending.is_none()),
        "target kept a pending after state timeout"
    );
}

#[test]
fn blocking_variant_never_times_out() {
    // The blocking variant is an explicit opt-in now that finite
    // timeouts are the default: no timers are ever armed and the
    // transaction simply completes.
    let mut net = setup(4, MobileBrokerConfig::reconfig().blocking());
    net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    assert!(net.armed_timers().is_empty(), "blocking mode armed a timer");
    net.run();
    assert!(net.armed_timers().is_empty());
    assert_eq!(net.find_client(c(2)), Some(b(2)));
}

#[test]
fn default_config_arms_finite_timeouts() {
    // The non-blocking variant is the default: starting a movement
    // arms the source's negotiate timer without any explicit timeout
    // configuration (a partitioned target must not wedge the source).
    let mut net = setup(4, MobileBrokerConfig::reconfig());
    net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    assert!(
        net.armed_timers()
            .iter()
            .any(|t| t.token.kind == TimerKind::Negotiate),
        "default config must arm the negotiate timer"
    );
    net.run();
    // A completed move leaves no timer behind.
    assert!(net.armed_timers().is_empty());
    assert_eq!(net.find_client(c(2)), Some(b(2)));
}

#[test]
fn covering_timeout_on_request_aborts() {
    let mut net = setup(5, timed_config());
    net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Covering));
    let timer = net
        .armed_timers()
        .iter()
        .find(|t| t.token.kind == TimerKind::Negotiate)
        .copied()
        .expect("request timer armed");
    net.fire_timer(timer.broker, timer.token);
    net.run();
    assert_eq!(net.find_client(c(2)), Some(b(5)));
    publish(&mut net, 42);
    assert_eq!(net.deliveries_to(c(2)).len(), 1);
}

#[test]
fn aborted_then_retried_move_succeeds() {
    let mut net = setup(5, timed_config());
    // Abort the first attempt immediately.
    net.client_op_deferred(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    let timer = net.armed_timers()[0];
    net.fire_timer(timer.broker, timer.token);
    net.run();
    assert_eq!(net.find_client(c(2)), Some(b(5)));
    // Retry: must commit normally.
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    assert_eq!(net.find_client(c(2)), Some(b(2)));
    publish(&mut net, 10);
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 1);
    properties::assert_exactly_once(&stream).unwrap();
}
