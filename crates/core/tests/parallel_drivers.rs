//! The parallel matching stage must be invisible to the drivers: a
//! broker configured with sharded tables and a worker pool produces
//! the *same* transport call sequence and the same observable network
//! events as the sequential default, on identical inputs.
//!
//! Two layers are pinned here:
//!
//! - [`flush_outputs`] coalescing — the exact `send_batch` /
//!   `deliver_batch` / `control` call sequence out of a
//!   [`MobileBroker`] step is compared call-by-call between the two
//!   configs (a stable merge: shard fan-in must never reorder effects,
//!   or frames would split differently on the wire);
//! - the instantaneous driver — a full movement scenario replayed
//!   under both configs must log identical [`NetEvent`] streams.

use std::sync::Arc;

use transmob_broker::{Hop, Parallelism, PubSubMsg, Topology};
use transmob_core::{
    flush_outputs, ClientOp, InstantNet, Message, MobileBroker, MobileBrokerConfig, Output,
    ProtocolKind, Transport,
};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// Records the exact [`Transport`] call sequence.
#[derive(Debug, Default, PartialEq)]
struct Recorder {
    calls: Vec<String>,
}

impl Transport for Recorder {
    fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>) {
        self.calls.push(format!("send {to:?} {msgs:?}"));
    }
    fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>) {
        self.calls
            .push(format!("deliver {client:?} {publications:?}"));
    }
    fn control(&mut self, output: Output) {
        self.calls.push(format!("control {output:?}"));
    }
}

/// One middle-of-the-chain broker, subscriptions on both flanks and a
/// hosted local client, hit with a mixed batch; returns the flushed
/// transport call log.
fn transport_log(config: MobileBrokerConfig) -> Vec<String> {
    let topo = Arc::new(Topology::chain(3));
    let mut broker = MobileBroker::new(b(2), topo, config);
    // Advertisement from B1 so subscription forwarding is live.
    broker.handle(
        Hop::Broker(b(1)),
        Message::PubSub(PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(c(1), 0),
            range(0, 1000),
        ))),
    );
    // Remote subscribers behind B3, a local hosted client, overlapping
    // bands so single publications match several directions at once.
    for i in 0..8u64 {
        broker.handle(
            Hop::Broker(b(3)),
            Message::PubSub(PubSubMsg::Subscribe(Subscription::new(
                SubId::new(c(100 + i), 0),
                range(i as i64 * 10, i as i64 * 10 + 35),
            ))),
        );
    }
    broker.create_client(c(7));
    broker.client_op(c(7), ClientOp::Subscribe(range(20, 60)));
    // One mixed batch: publications interleaved with control-affecting
    // subscription churn, so the flush has runs to coalesce and break.
    let batch: Vec<Message> = (0..12u64)
        .map(|k| {
            Message::PubSub(PubSubMsg::Publish(PublicationMsg::new(
                PubId(k),
                c(1),
                Publication::new().with("x", (k as i64 * 7) % 80),
            )))
        })
        .chain(std::iter::once(Message::PubSub(PubSubMsg::Subscribe(
            Subscription::new(SubId::new(c(200), 0), range(0, 5)),
        ))))
        .chain((12..20u64).map(|k| {
            Message::PubSub(PubSubMsg::Publish(PublicationMsg::new(
                PubId(k),
                c(1),
                Publication::new().with("x", (k as i64 * 7) % 80),
            )))
        }))
        .collect();
    let outs = broker.handle_batch(Hop::Broker(b(1)), batch);
    let mut rec = Recorder::default();
    flush_outputs(&mut rec, outs);
    rec.calls
}

/// The coalesced transport call sequence is bit-identical between the
/// sequential default and the sharded/parallel config.
#[test]
fn flush_sequence_is_identical_under_parallel_config() {
    let seq = transport_log(MobileBrokerConfig::reconfig());
    let par =
        transport_log(MobileBrokerConfig::reconfig().with_parallelism(Parallelism::sharded(4, 2)));
    assert!(!seq.is_empty(), "scenario must produce transport calls");
    assert!(
        seq.iter().any(|l| l.starts_with("deliver")),
        "scenario must exercise local delivery"
    );
    assert_eq!(seq, par);
}

/// A full instantaneous-driver scenario — advertise, subscribe,
/// publish stream, mid-stream movement, more publications — logs the
/// same `NetEvent` stream under both configs.
fn instant_events(config: MobileBrokerConfig) -> Vec<transmob_core::NetEvent> {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(5))
        .options(config)
        .start();
    net.create_client(b(1), c(1));
    net.create_client(b(5), c(2));
    net.create_client(b(3), c(3));
    net.client_op(c(1), ClientOp::Advertise(range(0, 1000)));
    net.client_op(c(2), ClientOp::Subscribe(range(0, 500)));
    net.client_op(c(3), ClientOp::Subscribe(range(200, 800)));
    for x in [10i64, 250, 499, 600] {
        net.client_op(c(1), ClientOp::Publish(Publication::new().with("x", x)));
    }
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    for x in [30i64, 333, 777] {
        net.client_op(c(1), ClientOp::Publish(Publication::new().with("x", x)));
    }
    net.take_events()
}

#[test]
fn instant_driver_events_are_identical_under_parallel_config() {
    let seq = instant_events(MobileBrokerConfig::reconfig());
    let par =
        instant_events(MobileBrokerConfig::reconfig().with_parallelism(Parallelism::sharded(4, 2)));
    assert!(!seq.is_empty());
    assert_eq!(seq, par);
}
