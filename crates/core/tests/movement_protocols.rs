//! End-to-end tests of both movement protocols over the deterministic
//! instant network: commit and abort paths, subscriber and publisher
//! movement, notification exactly-once/no-loss oracles, routing
//! consistency after movement, covering-cascade behaviour, and
//! timeout-driven failure injection.

use std::collections::BTreeSet;

use transmob_broker::Topology;
use transmob_core::{properties, ClientOp, InstantNet, MobileBrokerConfig, NetEvent, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, PubId, Publication};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

fn c(i: u64) -> ClientId {
    ClientId(i)
}

fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// A publisher at B1 and a subscriber that will move, on a chain.
fn chain_setup(n: u32, config: MobileBrokerConfig) -> InstantNet {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(n))
        .options(config)
        .start();
    net.create_client(b(1), c(1)); // publisher
    net.create_client(b(n), c(2)); // subscriber
    net.client_op(c(1), ClientOp::Advertise(range(0, 100)));
    net.client_op(c(2), ClientOp::Subscribe(range(0, 100)));
    net
}

fn publish_x(net: &mut InstantNet, client: ClientId, x: i64) {
    net.client_op(client, ClientOp::Publish(Publication::new().with("x", x)));
}

#[test]
fn reconfig_subscriber_move_commits_and_keeps_delivering() {
    let mut net = chain_setup(5, MobileBrokerConfig::reconfig());
    publish_x(&mut net, c(1), 1);
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    let events = net.take_events();
    assert!(events.iter().any(|e| matches!(
        e,
        NetEvent::MoveFinished {
            committed: true,
            client,
            ..
        } if *client == c(2)
    )));
    assert!(events.iter().any(|e| matches!(
        e,
        NetEvent::ClientArrived { client, broker, .. } if *client == c(2) && *broker == b(2)
    )));
    assert_eq!(net.find_client(c(2)), Some(b(2)));
    // Deliveries continue at the new location.
    publish_x(&mut net, c(1), 2);
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 1);
    properties::assert_exactly_once(&stream).unwrap();
    assert_eq!(net.total_anomalies(), 0);
}

#[test]
fn reconfig_move_loses_nothing_published_during_any_phase() {
    // Publications before, (logically) during, and after the movement
    // must all reach the subscriber exactly once. The instant network
    // serializes phases, so "during" is modelled by the buffered
    // windows the protocol itself creates.
    let mut net = chain_setup(6, MobileBrokerConfig::reconfig());
    let mut expected = BTreeSet::new();
    for x in 0..5 {
        publish_x(&mut net, c(1), x);
    }
    net.client_op(c(2), ClientOp::MoveTo(b(3), ProtocolKind::Reconfig));
    for x in 5..10 {
        publish_x(&mut net, c(1), x);
    }
    net.client_op(c(2), ClientOp::MoveTo(b(6), ProtocolKind::Reconfig));
    for x in 10..15 {
        publish_x(&mut net, c(1), x);
    }
    for seq in 0..15u64 {
        expected.insert(PubId((1u64 << 32) | seq));
    }
    let stream = net.deliveries_to(c(2));
    properties::assert_exactly_once(&stream).unwrap();
    properties::assert_all_delivered(&stream, &expected).unwrap();
    assert_eq!(net.total_anomalies(), 0);
}

#[test]
fn reconfig_publisher_move_keeps_routing_consistent() {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(5))
        .options(MobileBrokerConfig::reconfig())
        .start();
    net.create_client(b(1), c(1)); // moving publisher
    net.create_client(b(3), c(2)); // stationary subscriber
    net.client_op(c(1), ClientOp::Advertise(range(0, 100)));
    net.client_op(c(2), ClientOp::Subscribe(range(0, 100)));
    publish_x(&mut net, c(1), 1);
    net.client_op(c(1), ClientOp::MoveTo(b(5), ProtocolKind::Reconfig));
    assert_eq!(net.find_client(c(1)), Some(b(5)));
    publish_x(&mut net, c(1), 2);
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 2, "subscriber missed a publication");
    properties::assert_exactly_once(&stream).unwrap();
    // Static routing-consistency check from the new publisher location.
    properties::check_routing_consistency(
        &net,
        &[properties::ConsistencyCase {
            publisher_broker: b(5),
            probe: Publication::new().with("x", 50),
            expected: [c(2)].into_iter().collect(),
        }],
    )
    .unwrap();
    assert_eq!(net.total_anomalies(), 0);
}

#[test]
fn reconfig_move_back_and_forth_is_stable() {
    let mut net = chain_setup(4, MobileBrokerConfig::reconfig());
    for round in 0..4 {
        let dest = if round % 2 == 0 { b(1) } else { b(4) };
        net.client_op(c(2), ClientOp::MoveTo(dest, ProtocolKind::Reconfig));
        publish_x(&mut net, c(1), round);
        assert_eq!(net.find_client(c(2)), Some(dest));
    }
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 4);
    properties::assert_exactly_once(&stream).unwrap();
    assert_eq!(net.total_anomalies(), 0);
}

#[test]
fn reconfig_rejected_move_leaves_client_at_source() {
    let mut net = chain_setup(4, MobileBrokerConfig::reconfig());
    // Make B2 refuse clients: rebuild its config.
    // (InstantNet clones one config for all brokers; flip acceptance on
    // the target directly.)
    net.broker_mut(b(2)); // ensure exists
                          // There is no public setter; emulate rejection by moving to a
                          // broker outside the topology instead.
    net.client_op(c(2), ClientOp::MoveTo(BrokerId(99), ProtocolKind::Reconfig));
    let events = net.take_events();
    assert!(events.iter().any(|e| matches!(
        e,
        NetEvent::MoveFinished {
            committed: false,
            ..
        }
    )));
    assert_eq!(net.find_client(c(2)), Some(b(4)));
    // Still delivering at the source.
    publish_x(&mut net, c(1), 7);
    assert_eq!(net.deliveries_to(c(2)).len(), 1);
}

#[test]
fn reconfig_move_to_same_broker_is_a_committed_noop() {
    let mut net = chain_setup(3, MobileBrokerConfig::reconfig());
    net.client_op(c(2), ClientOp::MoveTo(b(3), ProtocolKind::Reconfig));
    let events = net.take_events();
    assert!(events.iter().any(|e| matches!(
        e,
        NetEvent::MoveFinished {
            committed: true,
            ..
        }
    )));
    assert_eq!(net.find_client(c(2)), Some(b(3)));
    publish_x(&mut net, c(1), 7);
    assert_eq!(net.deliveries_to(c(2)).len(), 1);
}

#[test]
fn reconfig_message_cost_scales_with_path_not_workload() {
    // The reconfiguration protocol's per-movement message count must
    // track the path length, independent of how many other clients
    // exist.
    for extra_clients in [0u64, 20] {
        let mut net = chain_setup(6, MobileBrokerConfig::reconfig());
        for i in 0..extra_clients {
            let id = c(100 + i);
            net.create_client(b(2), id);
            net.client_op(id, ClientOp::Subscribe(range(0, 100)));
        }
        net.reset_traffic();
        net.client_op(c(2), ClientOp::MoveTo(b(1), ProtocolKind::Reconfig));
        let m = *net.per_move_traffic().keys().next().expect("one move");
        let cost = net.traffic_for_move(m);
        // negotiate + reconfigure + state + ack, 5 hops each = 20,
        // plus a handful of fix-ups; must stay well under the cost of
        // re-propagating subscriptions.
        assert!(
            (20..30).contains(&cost),
            "unexpected reconfig cost {cost} with {extra_clients} bystanders"
        );
    }
}

// ----- covering (traditional) protocol --------------------------------

fn covering_config() -> MobileBrokerConfig {
    MobileBrokerConfig::covering()
}

#[test]
fn covering_subscriber_move_commits_and_delivers_after() {
    let mut net = chain_setup(5, covering_config());
    publish_x(&mut net, c(1), 1);
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Covering));
    assert_eq!(net.find_client(c(2)), Some(b(2)));
    publish_x(&mut net, c(1), 2);
    let stream = net.deliveries_to(c(2));
    properties::assert_exactly_once(&stream).unwrap();
    assert_eq!(stream.len(), 2);
}

#[test]
fn covering_move_cost_grows_with_quenched_subscriptions() {
    // The paper's pathological case: moving the client whose (root)
    // subscription covers many others forces their re-propagation.
    let mk = |covered: u64| {
        let mut net = InstantNet::builder()
            .overlay(Topology::chain(6))
            .options(covering_config())
            .start();
        net.create_client(b(1), c(1));
        net.client_op(c(1), ClientOp::Advertise(range(0, 1000)));
        // Root subscription (the mover).
        net.create_client(b(6), c(2));
        net.client_op(c(2), ClientOp::Subscribe(range(0, 1000)));
        // Covered subscriptions, quenched by the root.
        for i in 0..covered {
            let id = c(10 + i);
            net.create_client(b(6), id);
            net.client_op(
                id,
                ClientOp::Subscribe(range(i as i64 * 10, i as i64 * 10 + 5)),
            );
        }
        net.reset_traffic();
        net.client_op(c(2), ClientOp::MoveTo(b(5), ProtocolKind::Covering));
        let m = *net.per_move_traffic().keys().next().expect("one move");
        net.traffic_for_move(m)
    };
    let cost0 = mk(0);
    let cost9 = mk(9);
    assert!(
        cost9 > cost0 + 9,
        "covering release cascade not reflected: {cost0} vs {cost9}"
    );
}

#[test]
fn covering_protocol_loses_no_messages_published_when_idle() {
    // With no in-flight publications, the covering protocol also moves
    // cleanly (the loss window only involves in-flight messages, which
    // the timing-faithful simulator exercises).
    let mut net = chain_setup(5, covering_config());
    for x in 0..3 {
        publish_x(&mut net, c(1), x);
    }
    net.client_op(c(2), ClientOp::MoveTo(b(1), ProtocolKind::Covering));
    for x in 3..6 {
        publish_x(&mut net, c(1), x);
    }
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 6);
    properties::assert_exactly_once(&stream).unwrap();
}

#[test]
fn covering_stationary_bystanders_keep_receiving_during_moves() {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(5))
        .options(covering_config())
        .start();
    net.create_client(b(1), c(1));
    net.client_op(c(1), ClientOp::Advertise(range(0, 100)));
    net.create_client(b(5), c(2)); // mover (root sub)
    net.client_op(c(2), ClientOp::Subscribe(range(0, 100)));
    net.create_client(b(5), c(3)); // bystander (covered sub)
    net.client_op(c(3), ClientOp::Subscribe(range(10, 20)));
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Covering));
    publish_x(&mut net, c(1), 15);
    assert_eq!(net.deliveries_to(c(3)).len(), 1, "bystander starved");
    assert_eq!(net.deliveries_to(c(2)).len(), 1);
}

#[test]
fn make_before_break_variant_also_moves_cleanly() {
    let mut config = covering_config();
    config.make_before_break = true;
    let mut net = chain_setup(5, config);
    publish_x(&mut net, c(1), 1);
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Covering));
    publish_x(&mut net, c(1), 2);
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 2);
    properties::assert_exactly_once(&stream).unwrap();
    assert_eq!(net.find_client(c(2)), Some(b(2)));
}

// ----- queued commands and single-instance ----------------------------

#[test]
fn operations_issued_while_moving_execute_at_target() {
    let mut net = chain_setup(5, MobileBrokerConfig::reconfig());
    // Subscribe from the publisher to the mover's future publications.
    net.client_op(
        c(1),
        ClientOp::Subscribe(Filter::builder().ge("y", 0).build()),
    );
    net.client_op(
        c(2),
        ClientOp::Advertise(Filter::builder().ge("y", 0).build()),
    );
    // The mover is paused during the move; a publish queued mid-move
    // must be issued exactly once after arrival.
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    net.client_op(c(2), ClientOp::Publish(Publication::new().with("y", 1)));
    let stream = net.deliveries_to(c(1));
    assert_eq!(stream.len(), 1);
    properties::assert_exactly_once(&stream).unwrap();
}

#[test]
fn single_running_instance_throughout() {
    let mut net = chain_setup(6, MobileBrokerConfig::reconfig());
    properties::assert_single_instance(&net).unwrap();
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    properties::assert_single_instance(&net).unwrap();
    net.client_op(c(2), ClientOp::MoveTo(b(6), ProtocolKind::Covering));
    properties::assert_single_instance(&net).unwrap();
}

// ----- timeout failure injection ---------------------------------------

#[test]
fn negotiate_timeout_aborts_and_resumes_at_source() {
    let mut config = MobileBrokerConfig::reconfig();
    config.negotiate_timeout_ns = Some(1_000_000);
    let mut net = chain_setup(5, config);
    // Start the move but fire the timer before the network would have
    // answered: InstantNet never fires timers automatically, and we
    // drop the armed timer's effect by firing it right after the
    // movement completed — so instead, test the timer path on a fresh
    // move toward a black-holed target by firing it first.
    // Simpler: issue the move, then fire the leftover timer; the
    // handler must ignore it because the move already finished.
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    let timers: Vec<_> = net.armed_timers().to_vec();
    for t in timers {
        net.fire_timer(t.broker, t.token);
    }
    // The committed move must not be undone by the late timer.
    assert_eq!(net.find_client(c(2)), Some(b(2)));
    publish_x(&mut net, c(1), 1);
    assert_eq!(net.deliveries_to(c(2)).len(), 1);
    assert_eq!(net.total_anomalies(), 0);
}

#[test]
fn per_move_traffic_attribution_covers_cascades() {
    let mut net = InstantNet::builder()
        .overlay(Topology::chain(4))
        .options(covering_config())
        .start();
    net.create_client(b(1), c(1));
    net.client_op(c(1), ClientOp::Advertise(range(0, 100)));
    net.create_client(b(4), c(2));
    net.client_op(c(2), ClientOp::Subscribe(range(0, 100)));
    net.reset_traffic();
    net.client_op(c(2), ClientOp::MoveTo(b(3), ProtocolKind::Covering));
    let m = *net.per_move_traffic().keys().next().unwrap();
    // Control messages + unsubscribe cascade + resubscription all
    // attribute to the move.
    let total: u64 = net.traffic().values().sum();
    assert_eq!(net.traffic_for_move(m), total);
}

#[test]
fn application_pause_buffers_and_resume_replays() {
    let mut net = chain_setup(4, MobileBrokerConfig::reconfig());
    net.client_op(c(2), ClientOp::Pause);
    publish_x(&mut net, c(1), 1);
    publish_x(&mut net, c(1), 2);
    // Nothing surfaced while paused.
    assert!(net.deliveries_to(c(2)).is_empty());
    // A command issued while paused queues...
    net.client_op(c(2), ClientOp::Subscribe(range(200, 300)));
    assert_eq!(net.broker(b(4)).client(c(2)).unwrap().queued_len(), 1);
    // ...and everything flushes on resume.
    net.client_op(c(2), ClientOp::Resume);
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 2);
    properties::assert_exactly_once(&stream).unwrap();
    assert_eq!(net.broker(b(4)).client(c(2)).unwrap().queued_len(), 0);
}

#[test]
fn move_from_application_pause_commits_and_resumes_at_target() {
    // Fig. 4: pause_oper --[move]--> pause_move; after the commit the
    // client starts at the target (the transferred buffer included).
    let mut net = chain_setup(4, MobileBrokerConfig::reconfig());
    net.client_op(c(2), ClientOp::Pause);
    publish_x(&mut net, c(1), 1);
    net.client_op(c(2), ClientOp::MoveTo(b(2), ProtocolKind::Reconfig));
    assert_eq!(net.find_client(c(2)), Some(b(2)));
    let stream = net.deliveries_to(c(2));
    assert_eq!(stream.len(), 1, "buffered notification lost across move");
    publish_x(&mut net, c(1), 2);
    assert_eq!(net.deliveries_to(c(2)).len(), 2);
}
