//! The driver-side transport abstraction: how a batch of broker
//! effects reaches the wire.
//!
//! Every driver (the instantaneous [`crate::InstantNet`], the
//! discrete-event simulator, the TCP runtime) ends each broker step
//! with the same chore: walk the [`Output`] list, group consecutive
//! sends sharing a destination into one frame, surface client
//! deliveries, and apply the control effects (timers, movement
//! events). [`Transport`] is the three-verb interface a driver
//! implements; [`flush_outputs`] is the one shared coalescing walk, so
//! the grouping policy — and its ordering guarantees — live in exactly
//! one place.
//!
//! # Ordering contract
//!
//! Coalescing is *conservative*: only **consecutive** effects sharing
//! a destination merge into one batch. The sequence of
//! [`Transport`] calls therefore preserves the exact total order of
//! the effect list — per-link FIFO (which the paper's movement
//! consistency argument relies on) and the relative order of sends,
//! deliveries and control effects all survive verbatim. A transport
//! may ship one batch as one frame, but must hand its contents to the
//! receiver in order.

use transmob_pubsub::{BrokerId, ClientId, PublicationMsg};

use crate::messages::{Message, Output};

/// A driver's shipping layer for one broker's effects.
///
/// Implementations typically wrap the driver plus the per-step context
/// (source broker, movement-cause attribution) in a short-lived struct
/// and pass it to [`flush_outputs`].
pub trait Transport {
    /// Ships a coalesced run of messages to one neighbouring broker —
    /// one frame / one queue entry, contents in order.
    fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>);

    /// Surfaces a coalesced run of notifications to one client's
    /// application layer, in order.
    fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>);

    /// Applies a control effect (timers, movement lifecycle events).
    /// Never receives [`Output::Send`] or [`Output::DeliverToApp`] —
    /// [`flush_outputs`] routes those through the batch verbs.
    fn control(&mut self, output: Output);
}

/// An in-progress coalescing run.
enum Run {
    Send(BrokerId, Vec<Message>),
    Deliver(ClientId, Vec<PublicationMsg>),
}

fn flush_run<T: Transport + ?Sized>(transport: &mut T, run: &mut Option<Run>) {
    match run.take() {
        Some(Run::Send(to, msgs)) => transport.send_batch(to, msgs),
        Some(Run::Deliver(client, pubs)) => transport.deliver_batch(client, pubs),
        None => {}
    }
}

/// Walks one effect list, merging maximal runs of consecutive
/// same-destination sends (and consecutive same-client deliveries)
/// into single [`Transport::send_batch`] / [`Transport::deliver_batch`]
/// calls. Everything else flushes the current run and goes through
/// [`Transport::control`], so the call sequence replays the effect
/// list's total order exactly.
pub fn flush_outputs<T: Transport + ?Sized>(transport: &mut T, outputs: Vec<Output>) {
    let mut run: Option<Run> = None;
    for o in outputs {
        match o {
            Output::Send { to, msg } => match &mut run {
                Some(Run::Send(dest, msgs)) if *dest == to => msgs.push(msg),
                _ => {
                    flush_run(transport, &mut run);
                    run = Some(Run::Send(to, vec![msg]));
                }
            },
            Output::DeliverToApp {
                client,
                publication,
            } => match &mut run {
                Some(Run::Deliver(c, pubs)) if *c == client => pubs.push(publication),
                _ => {
                    flush_run(transport, &mut run);
                    run = Some(Run::Deliver(client, vec![publication]));
                }
            },
            other => {
                flush_run(transport, &mut run);
                transport.control(other);
            }
        }
    }
    flush_run(transport, &mut run);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::TimerKind;
    use transmob_broker::PubSubMsg;
    use transmob_pubsub::{MoveId, PubId, Publication};

    #[derive(Debug, PartialEq)]
    enum Call {
        Send(BrokerId, usize),
        Deliver(ClientId, usize),
        Control(Output),
    }

    #[derive(Default)]
    struct Recorder {
        calls: Vec<Call>,
        shipped: Vec<Message>,
    }

    impl Transport for Recorder {
        fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>) {
            self.calls.push(Call::Send(to, msgs.len()));
            self.shipped.extend(msgs);
        }
        fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>) {
            self.calls.push(Call::Deliver(client, publications.len()));
        }
        fn control(&mut self, output: Output) {
            self.calls.push(Call::Control(output));
        }
    }

    fn publish(i: u64) -> Message {
        Message::PubSub(PubSubMsg::Publish(PublicationMsg::new(
            PubId(i),
            ClientId(1),
            Publication::new().with("x", i as i64),
        )))
    }

    fn pmsg(i: u64) -> PublicationMsg {
        PublicationMsg::new(
            PubId(i),
            ClientId(1),
            Publication::new().with("x", i as i64),
        )
    }

    #[test]
    fn consecutive_runs_coalesce_and_order_is_preserved() {
        let outs = vec![
            Output::Send {
                to: BrokerId(2),
                msg: publish(1),
            },
            Output::Send {
                to: BrokerId(2),
                msg: publish(2),
            },
            Output::Send {
                to: BrokerId(3),
                msg: publish(3),
            },
            Output::DeliverToApp {
                client: ClientId(9),
                publication: pmsg(1),
            },
            Output::DeliverToApp {
                client: ClientId(9),
                publication: pmsg(2),
            },
            // Interleaved destination: must NOT merge with the earlier
            // BrokerId(2) run (that would reorder across destinations).
            Output::Send {
                to: BrokerId(2),
                msg: publish(4),
            },
            Output::CancelTimer {
                token: crate::messages::TimerToken {
                    m: MoveId(0),
                    kind: TimerKind::Negotiate,
                },
            },
            Output::Send {
                to: BrokerId(2),
                msg: publish(5),
            },
        ];
        let mut rec = Recorder::default();
        flush_outputs(&mut rec, outs);
        assert_eq!(
            rec.calls,
            vec![
                Call::Send(BrokerId(2), 2),
                Call::Send(BrokerId(3), 1),
                Call::Deliver(ClientId(9), 2),
                Call::Send(BrokerId(2), 1),
                Call::Control(Output::CancelTimer {
                    token: crate::messages::TimerToken {
                        m: MoveId(0),
                        kind: TimerKind::Negotiate,
                    },
                }),
                Call::Send(BrokerId(2), 1),
            ]
        );
        // Flattening the shipped batches recovers the send order.
        assert_eq!(
            rec.shipped,
            vec![publish(1), publish(2), publish(3), publish(4), publish(5)]
        );
    }

    #[test]
    fn empty_output_list_makes_no_calls() {
        let mut rec = Recorder::default();
        flush_outputs(&mut rec, Vec::new());
        assert!(rec.calls.is_empty());
    }
}
