//! # transmob-core
//!
//! The paper's contribution: **transactional client mobility** for
//! distributed content-based publish/subscribe, from *"Transactional
//! Mobility in Distributed Content-Based Publish/Subscribe Systems"*
//! (ICDCS 2009).
//!
//! This crate implements, on top of the `transmob-broker` routing
//! substrate:
//!
//! - the client/coordinator **state machines** of the movement
//!   transaction ([`states`], the paper's Fig. 4);
//! - the **reconfiguration movement protocol**: the 3PC-style
//!   conversation of Fig. 3 whose approval message walks the
//!   source–target path hop-by-hop installing shadow routing
//!   configurations, and whose state transfer doubles as the
//!   hop-by-hop commit pass (Sec. 4.2/4.4) — see [`MobileBroker`];
//! - the **traditional covering protocol** baseline (end-to-end
//!   unsubscribe/resubscribe);
//! - an exhaustive **model checker** regenerating the paper's Fig. 5
//!   global state graph and verifying its two safety claims
//!   ([`modelcheck`]);
//! - executable **transaction properties** used as test oracles
//!   ([`properties`], the paper's Sec. 3);
//! - a deterministic instant-network driver ([`InstantNet`]) for
//!   protocol tests and failure injection.
//!
//! # Examples
//!
//! Move a subscriber across a 5-broker chain without losing or
//! duplicating notifications:
//!
//! ```
//! use transmob_core::{ClientOp, InstantNet, MobileBrokerConfig, NetEvent, ProtocolKind};
//! use transmob_broker::Topology;
//! use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
//!
//! let mut net = InstantNet::builder().overlay(Topology::chain(5)).options(MobileBrokerConfig::reconfig()).start();
//! let publisher = ClientId(1);
//! let subscriber = ClientId(2);
//! net.create_client(BrokerId(1), publisher);
//! net.create_client(BrokerId(5), subscriber);
//! net.client_op(publisher, ClientOp::Advertise(Filter::builder().ge("x", 0).build()));
//! net.client_op(subscriber, ClientOp::Subscribe(Filter::builder().ge("x", 0).build()));
//! net.client_op(publisher, ClientOp::Publish(Publication::new().with("x", 1)));
//! net.client_op(subscriber, ClientOp::MoveTo(BrokerId(2), ProtocolKind::Reconfig));
//! net.client_op(publisher, ClientOp::Publish(Publication::new().with("x", 2)));
//! assert_eq!(net.find_client(subscriber), Some(BrokerId(2)));
//! assert_eq!(net.deliveries_to(subscriber).len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client_stub;
pub mod durability;
pub mod instant_net;
pub mod messages;
pub mod mobile_broker;
pub mod modelcheck;
pub mod options;
pub mod persistence;
pub mod properties;
pub mod states;
pub mod transport;
pub mod wire;

pub use client_stub::{DeliverOutcome, HostedClient};
pub use durability::{
    DurabilityLog, DurabilityRecord, LoggedInput, MemoryLog, DURABILITY_FORMAT_VERSION,
};
pub use instant_net::{ArmedTimer, InstantNet, InstantNetBuilder, NetEvent};
pub use messages::{
    ClientOp, ClientProfile, ClientSnapshot, Message, MoveMsg, Output, ProtocolKind, TimerKind,
    TimerToken,
};
pub use mobile_broker::{MobileBroker, MobileBrokerConfig};
pub use options::NetworkOptions;
pub use persistence::BrokerSnapshot;
pub use properties::NetworkView;
pub use states::{ClientState, SourceCoordState, TargetCoordState};
pub use transport::{flush_outputs, Transport};
