//! Write-ahead durability for [`MobileBroker`]: the log contract the
//! broker drives and the recovery constructor that replays it.
//!
//! The paper's fault-tolerance sketch (Sec. 3.5) requires a broker's
//! **algorithmic state** — routing tables, coordinator records, hosted
//! client stubs — to survive a crash. Because a [`MobileBroker`] is a
//! pure state machine (one input maps deterministically to a list of
//! [`Output`] effects), the cheapest faithful durability scheme is
//! *command logging*: append every external input to a
//! [`DurabilityLog`] **before** applying it, checkpoint a
//! [`BrokerSnapshot`] every [`MobileBrokerConfig::checkpoint_every`]
//! records (truncating the log tail the snapshot supersedes), and on
//! recovery replay `snapshot + records` with the regenerated outputs
//! discarded. Every movement-protocol state transition and every
//! SRT/PRT mutation is a deterministic function of the input sequence,
//! so replaying the inputs reproduces them exactly.
//!
//! What command logging does *not* recover is the effects the crashed
//! broker emitted but the crash destroyed (messages still in an
//! outbound buffer, timers, undelivered application callbacks). Those
//! are compensated at the protocol layer: movement timers are re-armed
//! by [`MobileBroker::recover`] from the rebuilt coordinator records,
//! and a movement whose messages died with the crash aborts cleanly
//! when they fire. See DESIGN.md §9 for the full contract.
//!
//! Only *external* inputs are logged. Handlers re-issue client
//! commands internally (draining a resumed stub's queued commands, for
//! example); those nested calls happen again during replay of the
//! outer input, so logging them too would double-execute them. The
//! broker tracks its input nesting depth and appends at depth zero
//! only.

use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use transmob_broker::Hop;
use transmob_pubsub::{BrokerId, ClientId};

use crate::messages::{ClientOp, Message, TimerToken};
use crate::persistence::BrokerSnapshot;

/// Version tag carried by every [`DurabilityRecord`] (the versioned
/// envelope the ROADMAP persistence item asked for): recovery refuses
/// records written by an incompatible build instead of misreplaying
/// them.
pub const DURABILITY_FORMAT_VERSION: u32 = 1;

/// One external broker input, as logged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoggedInput {
    /// A message from a neighbouring broker ([`MobileBroker::handle`]).
    Message {
        /// The sending hop.
        from: Hop,
        /// The message.
        msg: Message,
    },
    /// An application command ([`MobileBroker::client_op`]).
    ClientOp {
        /// The client issuing the command.
        client: ClientId,
        /// The command.
        op: ClientOp,
    },
    /// A fired protocol timer ([`MobileBroker::handle_timer`]).
    Timer {
        /// The timer token.
        token: TimerToken,
    },
    /// A fresh client attached ([`MobileBroker::create_client`]).
    CreateClient {
        /// The client.
        client: ClientId,
    },
    /// A broker-death declaration from the local failure detector
    /// ([`MobileBroker::handle_broker_death`]). Replay re-derives the
    /// overlay repair deterministically from `(topology, dead)`, so
    /// the post-repair topology does not need to be logged.
    BrokerDeath {
        /// The broker declared dead.
        dead: BrokerId,
    },
}

/// A versioned log record: one external input under the
/// [`DURABILITY_FORMAT_VERSION`] envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurabilityRecord {
    /// Format version ([`DURABILITY_FORMAT_VERSION`]).
    pub v: u32,
    /// The logged input.
    pub input: LoggedInput,
}

impl DurabilityRecord {
    /// Wraps an input under the current format version.
    pub fn new(input: LoggedInput) -> Self {
        DurabilityRecord {
            v: DURABILITY_FORMAT_VERSION,
            input,
        }
    }
}

/// The durability contract a [`MobileBroker`] drives.
///
/// `append` is called *before* the corresponding input is applied
/// (write-ahead discipline); `checkpoint` atomically replaces the
/// stored snapshot and discards the record tail it supersedes. An
/// implementation must not return `Ok` before the data is as durable
/// as it claims to be — the broker treats append failure as fail-stop.
pub trait DurabilityLog: fmt::Debug + Send {
    /// Durably appends one record.
    ///
    /// # Errors
    ///
    /// Propagates storage errors; the broker panics (fail-stop) rather
    /// than continue past a lost record.
    fn append(&mut self, record: &DurabilityRecord) -> io::Result<()>;

    /// Durably appends a batch of records, atomically with respect to
    /// crash recovery: after a crash, the log replays either a prefix
    /// of the batch or all of it, never a subsequence with holes.
    ///
    /// The records stay *individual* — recovery replays them one by
    /// one — so the default implementation is a plain append loop.
    /// Implementations with per-append sync cost (a file WAL) override
    /// this to pay one flush for the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates storage errors, as [`DurabilityLog::append`].
    fn append_batch(&mut self, records: &[DurabilityRecord]) -> io::Result<()> {
        for r in records {
            self.append(r)?;
        }
        Ok(())
    }

    /// Atomically replaces the checkpoint with `snapshot` and
    /// truncates the records it supersedes.
    ///
    /// # Errors
    ///
    /// Propagates storage errors. On error the previous checkpoint and
    /// records must remain intact (a failed checkpoint is a no-op).
    fn checkpoint(&mut self, snapshot: &BrokerSnapshot) -> io::Result<()>;
}

/// An in-memory [`DurabilityLog`] (the simulator's stand-in for a
/// disk-backed log; `transmob-sim`'s `WalDurability` is the real one).
///
/// Holds the latest checkpoint and the records appended since.
#[derive(Debug, Default)]
pub struct MemoryLog {
    checkpoint: Option<BrokerSnapshot>,
    records: VecDeque<DurabilityRecord>,
}

impl MemoryLog {
    /// An empty log.
    pub fn new() -> Self {
        MemoryLog::default()
    }

    /// A shareable handle to an empty log, ready for
    /// [`MobileBroker::attach_durability`].
    pub fn shared() -> Arc<Mutex<MemoryLog>> {
        Arc::new(Mutex::new(MemoryLog::new()))
    }

    /// The stored checkpoint and the records appended since, cloned
    /// for [`MobileBroker::recover`].
    pub fn contents(&self) -> (Option<BrokerSnapshot>, Vec<DurabilityRecord>) {
        (
            self.checkpoint.clone(),
            self.records.iter().cloned().collect(),
        )
    }

    /// Number of records since the last checkpoint.
    pub fn records_len(&self) -> usize {
        self.records.len()
    }

    /// Whether a checkpoint has been stored.
    pub fn has_checkpoint(&self) -> bool {
        self.checkpoint.is_some()
    }
}

impl DurabilityLog for MemoryLog {
    fn append(&mut self, record: &DurabilityRecord) -> io::Result<()> {
        self.records.push_back(record.clone());
        Ok(())
    }

    fn checkpoint(&mut self, snapshot: &BrokerSnapshot) -> io::Result<()> {
        self.checkpoint = Some(snapshot.clone());
        self.records.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{ClientOp, Output, ProtocolKind};
    use crate::mobile_broker::{MobileBroker, MobileBrokerConfig};
    use crate::states::ClientState;
    use std::sync::Arc;
    use transmob_broker::Topology;
    use transmob_pubsub::{BrokerId, Filter, Publication};

    fn c(i: u64) -> ClientId {
        ClientId(i)
    }

    #[test]
    fn record_envelope_round_trips_with_version() {
        let rec = DurabilityRecord::new(LoggedInput::CreateClient { client: c(7) });
        assert_eq!(rec.v, DURABILITY_FORMAT_VERSION);
        let json = serde_json::to_string(&rec).unwrap();
        let back: DurabilityRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn broker_logs_external_inputs_but_not_internal_replays() {
        let topo = Arc::new(Topology::chain(3));
        let mut b = MobileBroker::new(
            BrokerId(1),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        let log = MemoryLog::shared();
        b.attach_durability(log.clone()).unwrap();
        b.create_client(c(1));
        let _ = b.client_op(
            c(1),
            ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
        );
        // Queue a command behind a pause, then resume: the resume
        // drains the queue through an *internal* client_op call which
        // must not be logged separately.
        let _ = b.client_op(c(1), ClientOp::Pause);
        let _ = b.client_op(c(1), ClientOp::Publish(Publication::new().with("x", 1)));
        let _ = b.client_op(c(1), ClientOp::Resume);
        let (_, records) = log.lock().unwrap().contents();
        assert_eq!(records.len(), 5, "one record per external input");
        assert!(records.iter().all(|r| r.v == DURABILITY_FORMAT_VERSION));
    }

    #[test]
    fn recovery_replays_to_identical_state() {
        let topo = Arc::new(Topology::chain(3));
        let mut b = MobileBroker::new(
            BrokerId(1),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        let log = MemoryLog::shared();
        b.attach_durability(log.clone()).unwrap();
        b.create_client(c(1));
        let _ = b.client_op(
            c(1),
            ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
        );
        let _ = b.client_op(
            c(1),
            ClientOp::Advertise(Filter::builder().le("x", 9).build()),
        );

        let (snap, records) = log.lock().unwrap().contents();
        let (recovered, timers) = MobileBroker::recover(
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
            snap.expect("attach writes a checkpoint"),
            &records,
        );
        assert!(timers.is_empty(), "no movement in flight");
        assert_eq!(recovered.id(), b.id());
        assert_eq!(recovered.core().prt().len(), b.core().prt().len());
        assert_eq!(recovered.core().srt().len(), b.core().srt().len());
        assert_eq!(
            recovered.client(c(1)).unwrap().profile(),
            b.client(c(1)).unwrap().profile()
        );
    }

    #[test]
    fn recovery_rearms_the_negotiate_timer_of_an_inflight_move() {
        let topo = Arc::new(Topology::chain(3));
        let mut b = MobileBroker::new(
            BrokerId(1),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        let log = MemoryLog::shared();
        b.attach_durability(log.clone()).unwrap();
        b.create_client(c(1));
        // Start a movement; the source coordinator parks in Wait.
        let _ = b.client_op(c(1), ClientOp::MoveTo(BrokerId(3), ProtocolKind::Reconfig));

        let (snap, records) = log.lock().unwrap().contents();
        let (recovered, timers) = MobileBroker::recover(
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
            snap.unwrap(),
            &records,
        );
        assert_eq!(
            recovered.client(c(1)).unwrap().state(),
            ClientState::PauseMove,
            "mid-move client state survives recovery"
        );
        assert_eq!(timers.len(), 1, "negotiate timer re-armed: {timers:?}");
        assert!(matches!(
            timers[0],
            Output::SetTimer {
                token: TimerToken {
                    kind: crate::messages::TimerKind::Negotiate,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn periodic_checkpoint_truncates_the_log() {
        let topo = Arc::new(Topology::chain(3));
        let config = MobileBrokerConfig {
            checkpoint_every: 4,
            ..MobileBrokerConfig::reconfig()
        };
        let mut b = MobileBroker::new(BrokerId(1), Arc::clone(&topo), config.clone());
        let log = MemoryLog::shared();
        b.attach_durability(log.clone()).unwrap();
        b.create_client(c(1));
        for k in 0..9 {
            let _ = b.client_op(c(1), ClientOp::Publish(Publication::new().with("x", k)));
        }
        // 10 inputs with a checkpoint every 4: the tail is short.
        let guard = log.lock().unwrap();
        assert!(guard.has_checkpoint());
        assert!(
            guard.records_len() < 4,
            "log not truncated: {} records",
            guard.records_len()
        );
        drop(guard);
        // And the checkpoint+tail still recovers the full state.
        let (snap, records) = log.lock().unwrap().contents();
        let (recovered, _) =
            MobileBroker::recover(Arc::clone(&topo), config, snap.unwrap(), &records);
        assert_eq!(recovered.core().srt().len(), b.core().srt().len());
    }

    #[test]
    #[should_panic(expected = "version")]
    fn recovery_rejects_foreign_record_version() {
        let topo = Arc::new(Topology::chain(3));
        let b = MobileBroker::new(
            BrokerId(1),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        let snap = b.snapshot();
        let bad = DurabilityRecord {
            v: DURABILITY_FORMAT_VERSION + 1,
            input: LoggedInput::CreateClient { client: c(1) },
        };
        let _ = MobileBroker::recover(topo, MobileBrokerConfig::reconfig(), snap, &[bad]);
    }
}
