//! The mobile container: a broker plus movement coordinator.
//!
//! [`MobileBroker`] wraps a [`BrokerCore`] with the paper's *mobile
//! container* (Sec. 4.1): it hosts client stubs, runs the movement
//! coordinator state machines of Fig. 4, and implements both movement
//! protocols:
//!
//! - **Reconfiguration protocol** (the paper's contribution, Sec. 4.2
//!   and 4.4). The conversation of Fig. 3: `negotiate` →
//!   `approve`/`reject` → `state` → `ack`, where the approval doubles
//!   as the hop-by-hop *reconfiguration message* that installs shadow
//!   routing configurations along `RouteS2T`, and the state transfer
//!   doubles as the hop-by-hop *commit pass* that deletes the old
//!   configuration. An `AbortMove` pass rolls everything back.
//!
//! - **Covering protocol** (the traditional end-to-end baseline,
//!   Sec. 2). The source unadvertises/unsubscribes the client's whole
//!   profile (letting the covering optimization quench or cascade as it
//!   may), transfers the profile and execution state to the target,
//!   which reissues everything.
//!
//! Like [`BrokerCore`], a `MobileBroker` is a pure state machine: one
//! input (message, timer, or client command) maps to a list of
//! [`Output`] effects; the simulator and the threaded runtime interpret
//! them.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use transmob_broker::{
    BrokerConfig, BrokerCore, BrokerOutput, Hop, PrematchedRoutes, PubSubMsg, Topology,
};
use transmob_pubsub::{BrokerId, ClientId, MoveId, Publication, PublicationMsg, SubId};

use crate::client_stub::{DeliverOutcome, HostedClient};
use crate::durability::{DurabilityLog, DurabilityRecord, LoggedInput, DURABILITY_FORMAT_VERSION};
use crate::messages::{
    ClientOp, ClientProfile, ClientSnapshot, Message, MoveMsg, Output, ProtocolKind, TimerKind,
    TimerToken,
};
use crate::persistence::BrokerSnapshot;
use crate::states::{ClientState, SourceCoordState, TargetCoordState};

/// Configuration of a [`MobileBroker`].
#[derive(Debug, Clone)]
pub struct MobileBrokerConfig {
    /// Routing-layer configuration (covering modes).
    pub broker: BrokerConfig,
    /// Whether this broker accepts incoming clients (the paper allows
    /// a target to reject a moving client, e.g. when overloaded).
    pub accept_moves: bool,
    /// Source-side timeout waiting for `approve`/`reject`
    /// (non-blocking 3PC under bounded delay). `None` = blocking
    /// variant: a partitioned or crashed target wedges the source
    /// coordinator (and its paused client) indefinitely, so blocking
    /// is an explicit opt-in via [`MobileBrokerConfig::blocking`].
    pub negotiate_timeout_ns: Option<u64>,
    /// Target-side timeout waiting for `state`. `None` = blocking
    /// variant (opt-in, see [`MobileBrokerConfig::blocking`]). Must
    /// exceed the network's delay bound; see DESIGN.md.
    pub state_timeout_ns: Option<u64>,
    /// Covering-protocol ablation: reissue at the target *before*
    /// retracting at the source (make-before-break), trading duplicate
    /// suppression work for no message loss.
    pub make_before_break: bool,
    /// With a [`DurabilityLog`] attached, checkpoint (snapshot +
    /// truncate) after this many logged inputs. `0` disables periodic
    /// checkpoints (explicit [`MobileBroker::checkpoint_now`] only).
    pub checkpoint_every: u32,
}

/// Default movement-protocol timeout: far above any simulated or
/// loopback delay bound, far below "wedged forever".
const DEFAULT_MOVE_TIMEOUT_NS: u64 = 30_000_000_000; // 30 s

impl Default for MobileBrokerConfig {
    fn default() -> Self {
        MobileBrokerConfig {
            broker: BrokerConfig::plain(),
            accept_moves: true,
            negotiate_timeout_ns: Some(DEFAULT_MOVE_TIMEOUT_NS),
            state_timeout_ns: Some(DEFAULT_MOVE_TIMEOUT_NS),
            make_before_break: false,
            checkpoint_every: 64,
        }
    }
}

impl MobileBrokerConfig {
    /// Plain routing, reconfiguration-protocol deployment.
    pub fn reconfig() -> Self {
        MobileBrokerConfig::default()
    }

    /// Active covering, covering-protocol deployment.
    pub fn covering() -> Self {
        MobileBrokerConfig {
            broker: BrokerConfig::covering(),
            ..MobileBrokerConfig::default()
        }
    }

    /// Applies a [`Parallelism`](transmob_broker::Parallelism) layout
    /// to the embedded routing-core config: every driver that builds
    /// brokers from this config (instant, simulated, sync-net, TCP)
    /// gets sharded match tables and the parallel matching stage,
    /// with routing decisions identical to the sequential default.
    pub fn with_parallelism(mut self, par: transmob_broker::Parallelism) -> Self {
        self.broker = self.broker.with_parallelism(par);
        self
    }

    /// The blocking 3PC variant: no protocol timeouts at all. The
    /// paper's base protocol — movements never spuriously abort, but a
    /// crashed or partitioned peer wedges the coordinator until the
    /// peer returns. Opt-in; the default is the non-blocking variant
    /// with 30-second timeouts on both sides.
    pub fn blocking(mut self) -> Self {
        self.negotiate_timeout_ns = None;
        self.state_timeout_ns = None;
        self
    }
}

/// Source-side bookkeeping for one movement transaction
/// (serializable for [`crate::persistence`]; opaque otherwise).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceMoveRecord {
    client: ClientId,
    target: BrokerId,
    state: SourceCoordState,
    #[allow(dead_code)] // kept for diagnostics in Debug output
    protocol: ProtocolKind,
    /// Reconfiguration fix-ups performed here (for rollback).
    fixups: Vec<(SubId, BrokerId)>,
}

/// Target-side bookkeeping for one movement transaction
/// (serializable for [`crate::persistence`]; opaque otherwise).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetMoveRecord {
    client: ClientId,
    source: BrokerId,
    state: TargetCoordState,
    #[allow(dead_code)]
    protocol: ProtocolKind,
}

/// Bookkeeping at an intermediate broker on the reconfiguration path
/// (serializable for [`crate::persistence`]; opaque otherwise).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathMoveRecord {
    fixups: Vec<(SubId, BrokerId)>,
}

// Internal aliases (the protocol code predates the public names).
type SourceMove = SourceMoveRecord;
type TargetMove = TargetMoveRecord;
type PathMove = PathMoveRecord;

/// A broker with its mobile container (coordinator + hosted clients).
///
/// See the module docs for the protocol walk-throughs.
///
/// Cloning a broker with a [`DurabilityLog`] attached shares the log
/// handle (a clone is a replica of the state machine, not of its
/// storage); detach-by-default drivers that clone for benchmarking
/// never attach one.
#[derive(Debug, Clone)]
pub struct MobileBroker {
    core: BrokerCore,
    topology: Arc<Topology>,
    config: MobileBrokerConfig,
    clients: BTreeMap<ClientId, HostedClient>,
    src_moves: BTreeMap<MoveId, SourceMove>,
    tgt_moves: BTreeMap<MoveId, TargetMove>,
    path_moves: BTreeMap<MoveId, PathMove>,
    next_move_seq: u32,
    anomalies: u64,
    /// Write-ahead durability, if attached (never serialized).
    log: Option<Arc<Mutex<dyn DurabilityLog>>>,
    /// Input nesting depth: only depth-0 (external) inputs are logged.
    input_depth: u32,
    records_since_checkpoint: u32,
}

impl MobileBroker {
    /// Creates a mobile broker for overlay node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `topology`.
    pub fn new(id: BrokerId, topology: Arc<Topology>, mut config: MobileBrokerConfig) -> Self {
        assert!(topology.contains(id), "broker {id} not in topology");
        // A cyclic overlay *requires* multi-path forwarding (routing
        // entries hold redundant routes, publications need dedup);
        // turn it on here so every driver constructing through this
        // point gets it without opting in. Trees keep the bit as
        // configured (default off: single-path, zero dedup cost).
        config.broker.multipath |= !topology.is_tree();
        let neighbors = topology.neighbors(id).iter().copied();
        MobileBroker {
            core: BrokerCore::new(id, neighbors, config.broker),
            topology,
            config,
            clients: BTreeMap::new(),
            src_moves: BTreeMap::new(),
            tgt_moves: BTreeMap::new(),
            path_moves: BTreeMap::new(),
            next_move_seq: 0,
            anomalies: 0,
            log: None,
            input_depth: 0,
            records_since_checkpoint: 0,
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.core.id()
    }

    /// The wrapped routing core (tests and property checkers).
    pub fn core(&self) -> &BrokerCore {
        &self.core
    }

    /// The overlay topology as this broker currently sees it. Brokers
    /// start from a shared handle; an overlay repair
    /// ([`MobileBroker::handle_broker_death`]) mutates the local copy.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// A hosted client stub, if present.
    pub fn client(&self, id: ClientId) -> Option<&HostedClient> {
        self.clients.get(&id)
    }

    /// Mutable access to a hosted client stub (driver use: draining the
    /// application inbox).
    pub fn client_mut(&mut self, id: ClientId) -> Option<&mut HostedClient> {
        self.clients.get_mut(&id)
    }

    /// Iterates the hosted clients.
    pub fn clients(&self) -> impl Iterator<Item = (&ClientId, &HostedClient)> {
        self.clients.iter()
    }

    /// Count of tolerated protocol anomalies (tests assert zero on
    /// healthy runs).
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// Creates (attaches and starts) a fresh client at this broker.
    pub fn create_client(&mut self, id: ClientId) {
        let outer = self.begin_input(|| LoggedInput::CreateClient { client: id });
        self.clients.insert(id, HostedClient::started(id));
        self.core.attach_client(id);
        self.end_input(outer);
    }

    // ================= durability =====================================

    /// Attaches a write-ahead [`DurabilityLog`]: the broker immediately
    /// checkpoints its current state into it (the recovery base), then
    /// appends every external input before applying it and checkpoints
    /// again every [`MobileBrokerConfig::checkpoint_every`] inputs.
    ///
    /// # Errors
    ///
    /// Propagates the initial checkpoint's storage error; on error the
    /// log is not attached.
    pub fn attach_durability(&mut self, log: Arc<Mutex<dyn DurabilityLog>>) -> std::io::Result<()> {
        {
            let snapshot = self.snapshot();
            let mut guard = log.lock().expect("durability log poisoned");
            guard.checkpoint(&snapshot)?;
        }
        self.records_since_checkpoint = 0;
        self.log = Some(log);
        Ok(())
    }

    /// Whether a [`DurabilityLog`] is attached.
    pub fn has_durability(&self) -> bool {
        self.log.is_some()
    }

    /// Forces a checkpoint (snapshot + log truncation) now. No-op
    /// without an attached log.
    ///
    /// # Errors
    ///
    /// Propagates storage errors; the previous checkpoint stays valid.
    pub fn checkpoint_now(&mut self) -> std::io::Result<()> {
        let Some(log) = self.log.clone() else {
            return Ok(());
        };
        let snapshot = self.snapshot();
        log.lock()
            .expect("durability log poisoned")
            .checkpoint(&snapshot)?;
        self.records_since_checkpoint = 0;
        Ok(())
    }

    /// Rebuilds a broker from its last checkpoint plus the inputs
    /// logged since, then re-arms the timers any in-flight movement
    /// needs: a source coordinator recovered in `Wait` gets its
    /// negotiate timer back, a target coordinator recovered in
    /// `Prepare` its state timer — without them a movement whose
    /// messages died with the crash would wedge instead of aborting.
    ///
    /// Replay applies each input through the normal handlers and
    /// discards the regenerated outputs (the pre-crash execution
    /// already emitted them; at-least-once redelivery of the ones the
    /// crash destroyed is the driver's concern). The recovered broker
    /// has no log attached — call [`MobileBroker::attach_durability`]
    /// again to resume logging (which re-checkpoints, establishing the
    /// new base).
    ///
    /// Returns the broker and the `SetTimer` outputs to arm.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's broker id is not in `topology` or a
    /// record's version tag is not [`DURABILITY_FORMAT_VERSION`].
    pub fn recover(
        topology: Arc<Topology>,
        config: MobileBrokerConfig,
        checkpoint: BrokerSnapshot,
        records: &[DurabilityRecord],
    ) -> (MobileBroker, Vec<Output>) {
        let mut broker = MobileBroker::restore(topology, config, checkpoint);
        for rec in records {
            assert_eq!(
                rec.v, DURABILITY_FORMAT_VERSION,
                "unknown durability record version {}",
                rec.v
            );
            match rec.input.clone() {
                LoggedInput::Message { from, msg } => {
                    let _ = broker.handle(from, msg);
                }
                LoggedInput::ClientOp { client, op } => {
                    let _ = broker.client_op(client, op);
                }
                LoggedInput::Timer { token } => {
                    let _ = broker.handle_timer(token);
                }
                LoggedInput::CreateClient { client } => broker.create_client(client),
                LoggedInput::BrokerDeath { dead } => {
                    let _ = broker.handle_broker_death(dead);
                }
            }
        }
        let timers = broker.rearm_timers();
        (broker, timers)
    }

    /// The `SetTimer` outputs an in-flight movement needs after
    /// recovery (timers are volatile — they die with the process).
    fn rearm_timers(&self) -> Vec<Output> {
        let mut out = Vec::new();
        if let Some(delay_ns) = self.config.negotiate_timeout_ns {
            for (m, rec) in &self.src_moves {
                if rec.state == SourceCoordState::Wait {
                    out.push(Output::SetTimer {
                        token: TimerToken {
                            m: *m,
                            kind: TimerKind::Negotiate,
                        },
                        delay_ns,
                    });
                }
            }
        }
        if let Some(delay_ns) = self.config.state_timeout_ns {
            for (m, rec) in &self.tgt_moves {
                if rec.state == TargetCoordState::Prepare {
                    out.push(Output::SetTimer {
                        token: TimerToken {
                            m: *m,
                            kind: TimerKind::State,
                        },
                        delay_ns,
                    });
                }
            }
        }
        out
    }

    /// Enters one input frame. At depth 0 (an *external* input — not a
    /// handler re-issuing a command internally) the input is appended
    /// to the attached log before anything is applied (write-ahead).
    fn begin_input(&mut self, make: impl FnOnce() -> LoggedInput) -> bool {
        let outer = self.input_depth == 0;
        self.input_depth += 1;
        if outer {
            if let Some(log) = &self.log {
                let rec = DurabilityRecord::new(make());
                log.lock()
                    .expect("durability log poisoned")
                    .append(&rec)
                    .expect("durability append failed: refusing to run ahead of the log");
                self.records_since_checkpoint += 1;
            }
        }
        outer
    }

    /// Enters one input frame covering a whole message batch: at depth
    /// 0 every message is appended write-ahead through one
    /// [`DurabilityLog::append_batch`] call before anything is applied.
    fn begin_input_batch(&mut self, from: Hop, msgs: &[Message]) -> bool {
        let outer = self.input_depth == 0;
        self.input_depth += 1;
        if outer {
            if let Some(log) = &self.log {
                let records: Vec<DurabilityRecord> = msgs
                    .iter()
                    .map(|msg| {
                        DurabilityRecord::new(LoggedInput::Message {
                            from,
                            msg: msg.clone(),
                        })
                    })
                    .collect();
                log.lock()
                    .expect("durability log poisoned")
                    .append_batch(&records)
                    .expect("durability append failed: refusing to run ahead of the log");
                self.records_since_checkpoint += records.len() as u32;
            }
        }
        outer
    }

    /// Leaves an input frame; at depth 0 runs the periodic checkpoint.
    fn end_input(&mut self, outer: bool) {
        self.input_depth -= 1;
        if outer
            && self.config.checkpoint_every > 0
            && self.records_since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint_now()
                .expect("durability checkpoint failed: refusing to run ahead of the log");
        }
    }

    /// Sets whether this broker accepts incoming clients (the paper's
    /// target-side admission decision — e.g. an overloaded broker
    /// rejects movers). Used by tests and experiments to exercise the
    /// reject path.
    pub fn set_accept_moves(&mut self, accept: bool) {
        self.config.accept_moves = accept;
    }

    /// Movement bookkeeping snapshot (persistence support).
    pub(crate) fn moves_snapshot(&self) -> crate::persistence::MovesSnapshot {
        crate::persistence::MovesSnapshot {
            src: self
                .src_moves
                .iter()
                .map(|(m, r)| (*m, r.clone()))
                .collect(),
            tgt: self
                .tgt_moves
                .iter()
                .map(|(m, r)| (*m, r.clone()))
                .collect(),
            path: self
                .path_moves
                .iter()
                .map(|(m, r)| (*m, r.clone()))
                .collect(),
        }
    }

    /// Movement-id counter (persistence support).
    pub(crate) fn next_move_seq_value(&self) -> u32 {
        self.next_move_seq
    }

    /// Reconstructs a broker from persisted parts (persistence
    /// support; see [`crate::persistence::BrokerSnapshot`]).
    pub(crate) fn from_parts(
        core: BrokerCore,
        topology: Arc<Topology>,
        config: MobileBrokerConfig,
        clients: BTreeMap<ClientId, HostedClient>,
        moves: crate::persistence::MovesSnapshot,
        next_move_seq: u32,
    ) -> Self {
        MobileBroker {
            core,
            topology,
            config,
            clients,
            src_moves: moves.src.into_iter().collect(),
            tgt_moves: moves.tgt.into_iter().collect(),
            path_moves: moves.path.into_iter().collect(),
            next_move_seq,
            anomalies: 0,
            log: None,
            input_depth: 0,
            records_since_checkpoint: 0,
        }
    }

    fn route_next(&self, to: BrokerId) -> BrokerId {
        self.try_route_next(to)
            .expect("destination must be another broker in the topology")
    }

    /// Next hop toward `to`, or `None` when `to` is this broker or has
    /// fallen out of the (possibly repaired) overlay. Movement
    /// forwarding uses this so a broker death mid-protocol drops the
    /// message instead of panicking; the endpoints' own death handling
    /// resolves the transaction.
    fn try_route_next(&self, to: BrokerId) -> Option<BrokerId> {
        self.topology.next_hop(self.id(), to)
    }

    /// Converts routing-core effects into driver effects, routing
    /// client deliveries through the hosted stubs (with buffering and
    /// exactly-once dedup).
    fn absorb(&mut self, outputs: Vec<BrokerOutput>) -> Vec<Output> {
        let mut out = Vec::new();
        for o in outputs {
            match o {
                BrokerOutput::ToBroker(n, msg) => out.push(Output::Send {
                    to: n,
                    msg: Message::PubSub(msg),
                }),
                BrokerOutput::Deliver(cid, publication) => {
                    if let Some(stub) = self.clients.get_mut(&cid) {
                        if stub.deliver(publication.clone()) == DeliverOutcome::Surfaced {
                            out.push(Output::DeliverToApp {
                                client: cid,
                                publication,
                            });
                        }
                    }
                    // A delivery for a client we no longer host can
                    // only be a leftover of a committed movement whose
                    // duplicate the target-side dedup will suppress.
                }
            }
        }
        out
    }

    // ================= client commands ================================

    /// Executes (or queues) an application command on a hosted client.
    ///
    /// # Panics
    ///
    /// Panics if the client is not hosted here (drivers address
    /// commands to the client's current broker).
    pub fn client_op(&mut self, client: ClientId, op: ClientOp) -> Vec<Output> {
        let outer = self.begin_input(|| LoggedInput::ClientOp {
            client,
            op: op.clone(),
        });
        let out = self.client_op_apply(client, op);
        self.end_input(outer);
        out
    }

    fn client_op_apply(&mut self, client: ClientId, op: ClientOp) -> Vec<Output> {
        let stub = self
            .clients
            .get_mut(&client)
            .expect("client not hosted at this broker");
        if stub.state().queues_commands()
            || (stub.state() == ClientState::PauseOper
                && !matches!(
                    op,
                    ClientOp::Resume | ClientOp::MoveTo(..) | ClientOp::Pause
                ))
        {
            stub.queue_op(op);
            return Vec::new();
        }
        match op {
            ClientOp::Subscribe(filter) => {
                let s = stub.new_subscription(filter);
                let outs = self
                    .core
                    .handle(Hop::Client(client), PubSubMsg::Subscribe(s));
                self.absorb(outs)
            }
            ClientOp::Unsubscribe(seq) => match stub.remove_subscription(seq) {
                Some(s) => {
                    let outs = self
                        .core
                        .handle(Hop::Client(client), PubSubMsg::Unsubscribe(s.id));
                    self.absorb(outs)
                }
                None => {
                    self.anomalies += 1;
                    Vec::new()
                }
            },
            ClientOp::Advertise(filter) => {
                let a = stub.new_advertisement(filter);
                let outs = self
                    .core
                    .handle(Hop::Client(client), PubSubMsg::Advertise(a));
                self.absorb(outs)
            }
            ClientOp::Unadvertise(seq) => match stub.remove_advertisement(seq) {
                Some(a) => {
                    let outs = self
                        .core
                        .handle(Hop::Client(client), PubSubMsg::Unadvertise(a.id));
                    self.absorb(outs)
                }
                None => {
                    self.anomalies += 1;
                    Vec::new()
                }
            },
            ClientOp::Publish(content) => {
                let p = PublicationMsg::new(stub.next_pub_id(), client, content);
                let outs = self.core.handle(Hop::Client(client), PubSubMsg::Publish(p));
                self.absorb(outs)
            }
            ClientOp::Pause => {
                // started | pause_oper → pause_oper (idempotent).
                stub.set_state(ClientState::PauseOper);
                Vec::new()
            }
            ClientOp::Resume => {
                if stub.state() == ClientState::PauseOper {
                    self.resume_client(client)
                } else {
                    Vec::new()
                }
            }
            ClientOp::MoveTo(to, protocol) => self.start_move(client, to, protocol),
        }
    }

    fn fresh_move_id(&mut self) -> MoveId {
        let m = MoveId((u64::from(self.id().0) << 32) | u64::from(self.next_move_seq));
        self.next_move_seq += 1;
        m
    }

    fn start_move(
        &mut self,
        client: ClientId,
        to: BrokerId,
        protocol: ProtocolKind,
    ) -> Vec<Output> {
        if to == self.id() || !self.topology.contains(to) {
            // Degenerate movement: nothing to do (or unknown target).
            let m = self.fresh_move_id();
            return vec![Output::MoveFinished {
                m,
                client,
                committed: to == self.id(),
            }];
        }
        let m = self.fresh_move_id();
        // unwrap: caller contract of client_op — the stub exists
        let stub = self.clients.get_mut(&client).unwrap();
        stub.set_state(ClientState::PauseMove);
        let profile = stub.profile();
        self.src_moves.insert(
            m,
            SourceMove {
                client,
                target: to,
                state: SourceCoordState::Wait,
                protocol,
                fixups: Vec::new(),
            },
        );
        let mut out = Vec::new();
        let msg = match protocol {
            ProtocolKind::Reconfig => MoveMsg::Negotiate {
                m,
                client,
                source: self.id(),
                target: to,
                profile,
                protocol,
            },
            ProtocolKind::Covering => MoveMsg::CovRequest {
                m,
                client,
                source: self.id(),
                target: to,
            },
        };
        out.push(Output::Send {
            to: self.route_next(to),
            msg: Message::Move(msg),
        });
        if let Some(delay_ns) = self.config.negotiate_timeout_ns {
            out.push(Output::SetTimer {
                token: TimerToken {
                    m,
                    kind: TimerKind::Negotiate,
                },
                delay_ns,
            });
        }
        out
    }

    // ================= message handling ===============================

    /// Handles one incoming message from a neighbouring broker.
    pub fn handle(&mut self, from: Hop, msg: Message) -> Vec<Output> {
        let outer = self.begin_input(|| LoggedInput::Message {
            from,
            msg: msg.clone(),
        });
        let out = self.handle_apply(from, msg);
        self.end_input(outer);
        out
    }

    /// Handles a batch of incoming messages that arrived together from
    /// one hop, in order.
    ///
    /// Defined as the sequential fold of [`MobileBroker::handle`]: the
    /// outputs are the concatenation, in order, of what per-message
    /// handling would emit. Batching buys two amortizations: the whole
    /// batch is logged with one [`DurabilityLog::append_batch`] call
    /// (one flush on file-backed logs; the records stay individual, so
    /// crash recovery can still replay a prefix), and maximal runs of
    /// consecutive pub/sub messages go through
    /// [`BrokerCore::handle_batch`], which amortizes publication
    /// matching across the run.
    pub fn handle_batch(&mut self, from: Hop, msgs: Vec<Message>) -> Vec<Output> {
        self.handle_batch_apply(from, msgs, None)
    }

    /// The read-locked *match* stage of a pipelined broker loop:
    /// matches the batch's publications against the current routing
    /// state without mutating anything, stamped with the routing
    /// version (see [`BrokerCore::prematch`]). Hand the result to
    /// [`MobileBroker::handle_batch_prematched`]; a concurrent
    /// mutation (movement commit, subscription churn) between the two
    /// calls merely invalidates the stamp and the apply stage
    /// re-matches — results are identical either way.
    pub fn prematch(&self, msgs: &[Message]) -> PrematchedRoutes {
        let contents: Vec<Publication> = msgs
            .iter()
            .filter_map(|m| match m {
                Message::PubSub(PubSubMsg::Publish(p)) => Some(p.content.clone()),
                _ => None,
            })
            .collect();
        self.core.prematch(&contents)
    }

    /// [`MobileBroker::handle_batch`] consuming the routes
    /// pre-computed by [`MobileBroker::prematch`] over the same
    /// message sequence (the write-locked *apply* stage of a pipelined
    /// broker loop).
    pub fn handle_batch_prematched(
        &mut self,
        from: Hop,
        msgs: Vec<Message>,
        mut pre: PrematchedRoutes,
    ) -> Vec<Output> {
        self.handle_batch_apply(from, msgs, Some(&mut pre))
    }

    fn handle_batch_apply(
        &mut self,
        from: Hop,
        mut msgs: Vec<Message>,
        mut pre: Option<&mut PrematchedRoutes>,
    ) -> Vec<Output> {
        match msgs.len() {
            // The single-message shortcut keeps the durability log's
            // record shape; any pre-computed route for it is simply
            // unused (it dies with `pre`).
            0 => return Vec::new(),
            1 => return self.handle(from, msgs.pop().expect("len checked")),
            _ => {}
        }
        let outer = self.begin_input_batch(from, &msgs);
        let mut out = Vec::new();
        let mut run: Vec<PubSubMsg> = Vec::new();
        for msg in msgs {
            match msg {
                Message::PubSub(p) => run.push(p),
                Message::Move(mv) => {
                    self.flush_pubsub_run(from, &mut run, &mut pre, &mut out);
                    out.extend(self.handle_move(from, mv));
                }
                Message::BrokerDeath { dead } => {
                    self.flush_pubsub_run(from, &mut run, &mut pre, &mut out);
                    out.extend(self.broker_death_apply(dead));
                }
            }
        }
        self.flush_pubsub_run(from, &mut run, &mut pre, &mut out);
        self.end_input(outer);
        out
    }

    /// Applies a buffered run of consecutive pub/sub messages through
    /// the routing core's batch entry point.
    fn flush_pubsub_run(
        &mut self,
        from: Hop,
        run: &mut Vec<PubSubMsg>,
        pre: &mut Option<&mut PrematchedRoutes>,
        out: &mut Vec<Output>,
    ) {
        if run.is_empty() {
            return;
        }
        let reborrow = pre.as_mut().map(|p| &mut **p);
        let batch = self
            .core
            .handle_batch_prematched(from, std::mem::take(run), reborrow);
        out.extend(self.absorb(batch.into_flat()));
    }

    fn handle_apply(&mut self, from: Hop, msg: Message) -> Vec<Output> {
        match msg {
            Message::PubSub(p) => {
                let outs = self.core.handle(from, p);
                self.absorb(outs)
            }
            Message::Move(mv) => self.handle_move(from, mv),
            Message::BrokerDeath { dead } => self.broker_death_apply(dead),
        }
    }

    fn forward_move(&mut self, msg: MoveMsg) -> Vec<Output> {
        let dest = msg.destination();
        match self.try_route_next(dest) {
            Some(next) => vec![Output::Send {
                to: next,
                msg: Message::Move(msg),
            }],
            None => {
                // The destination fell out of the overlay (broker
                // death): drop the message; the endpoints' death
                // handling resolves the transaction.
                self.anomalies += 1;
                Vec::new()
            }
        }
    }

    fn handle_move(&mut self, from: Hop, msg: MoveMsg) -> Vec<Output> {
        // Routed messages are only acted on at their destination.
        if !msg.is_hop_by_hop() && msg.destination() != self.id() {
            return self.forward_move(msg);
        }
        match msg {
            MoveMsg::Negotiate {
                m,
                client,
                source,
                target,
                profile,
                protocol,
            } => self.on_negotiate(m, client, source, target, profile, protocol),
            MoveMsg::Reject { m, .. } => self.on_reject(m),
            MoveMsg::Reconfigure {
                m,
                client,
                source,
                target,
                profile,
            } => self.on_reconfigure(from, m, client, source, target, profile),
            MoveMsg::StateTransfer {
                m,
                client,
                source,
                target,
                snapshot,
            } => self.on_state_transfer(m, client, source, target, snapshot),
            MoveMsg::Ack { m, .. } => self.on_ack(m),
            MoveMsg::AbortMove {
                m,
                client,
                source,
                target,
                toward,
            } => self.on_abort_move(m, client, source, target, toward),
            MoveMsg::CovRequest {
                m,
                client,
                source,
                target,
            } => self.on_cov_request(m, client, source, target),
            MoveMsg::CovAccept { m, .. } => self.on_cov_accept(m),
            MoveMsg::CovTransfer {
                m,
                client,
                source,
                target,
                profile,
                snapshot,
            } => self.on_cov_transfer(m, client, source, target, profile, snapshot),
            MoveMsg::CovDone { m, .. } => self.on_cov_done(m),
        }
    }

    // ----- reconfiguration protocol, target side ----------------------

    fn on_negotiate(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        profile: ClientProfile,
        protocol: ProtocolKind,
    ) -> Vec<Output> {
        debug_assert_eq!(target, self.id());
        if !self.config.accept_moves {
            return self.forward_or_emit_toward(source, MoveMsg::Reject { m, source, target });
        }
        if self.tgt_moves.contains_key(&m) {
            // Duplicate negotiate (wire duplication, or a retransmit
            // replayed from a recovered peer's queue): the first one
            // already created the copy — recreating it here would wipe
            // whatever the copy has buffered during the prepare window.
            self.anomalies += 1;
            return Vec::new();
        }
        let Some(back) = self.try_route_next(source) else {
            // The source died while its negotiate was in flight:
            // there is no coordinator left to converse with.
            self.anomalies += 1;
            return Vec::new();
        };
        self.tgt_moves.insert(
            m,
            TargetMove {
                client,
                source,
                state: TargetCoordState::Prepare,
                protocol,
            },
        );
        // Create the client copy (state `Created`).
        let copy = HostedClient::created_from_profile(client, &profile);
        self.clients.insert(client, copy);
        self.core.attach_client(client);
        // Install the shadow routing configuration at the target
        // itself: the client's entries will point at the local client.
        for s in &profile.subs {
            self.core
                .install_pending_sub(s, m, Hop::Client(client), Some(back));
        }
        for a in &profile.advs {
            self.core
                .install_pending_adv(a, m, Hop::Client(client), Some(back));
        }
        let mut out = vec![Output::Send {
            to: back,
            msg: Message::Move(MoveMsg::Reconfigure {
                m,
                client,
                source,
                target,
                profile,
            }),
        }];
        if let Some(delay_ns) = self.config.state_timeout_ns {
            out.push(Output::SetTimer {
                token: TimerToken {
                    m,
                    kind: TimerKind::State,
                },
                delay_ns,
            });
        }
        out
    }

    fn forward_or_emit_toward(&mut self, dest: BrokerId, msg: MoveMsg) -> Vec<Output> {
        match self.try_route_next(dest) {
            Some(next) => vec![Output::Send {
                to: next,
                msg: Message::Move(msg),
            }],
            None => {
                self.anomalies += 1;
                Vec::new()
            }
        }
    }

    // ----- reconfiguration message, walked target → source ------------

    fn on_reconfigure(
        &mut self,
        from: Hop,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        profile: ClientProfile,
    ) -> Vec<Output> {
        let Hop::Broker(frm) = from else {
            self.anomalies += 1;
            return Vec::new();
        };
        if self.id() == source {
            return self.on_reconfigure_at_source(frm, m, client, target, profile);
        }
        // Intermediate broker: install shadow configuration pointing at
        // the target direction, perform the Sec. 4.4 PRT fix-ups, and
        // walk on toward the source.
        let Some(back) = self.try_route_next(source) else {
            // The source died while the reconfiguration message was
            // walking toward it; the target's state timer aborts the
            // movement.
            self.anomalies += 1;
            return Vec::new();
        };
        let mut fixups = Vec::new();
        let mut outs: Vec<BrokerOutput> = Vec::new();
        for s in &profile.subs {
            self.core
                .install_pending_sub(s, m, Hop::Broker(frm), Some(back));
        }
        for a in &profile.advs {
            self.core
                .install_pending_adv(a, m, Hop::Broker(frm), Some(back));
            let pulled = self.pull_with_record(a.id, frm, &mut outs);
            fixups.extend(pulled);
        }
        self.path_moves.insert(m, PathMove { fixups });
        let mut out = self.absorb(outs);
        out.push(Output::Send {
            to: back,
            msg: Message::Move(MoveMsg::Reconfigure {
                m,
                client,
                source,
                target,
                profile,
            }),
        });
        out
    }

    /// Runs the pull rule for advertisement `id` toward `n`, recording
    /// which subscriptions were newly forwarded (for rollback).
    fn pull_with_record(
        &mut self,
        id: transmob_pubsub::AdvId,
        n: BrokerId,
        outs: &mut Vec<BrokerOutput>,
    ) -> Vec<(SubId, BrokerId)> {
        let before: Vec<SubId> = self
            .core
            .prt()
            .iter()
            .filter(|(_, e)| !e.sent_to.contains(&n))
            .map(|(sid, _)| *sid)
            .collect();
        outs.extend(self.core.pull_subs_toward(id, n));
        before
            .into_iter()
            .filter(|sid| {
                self.core
                    .prt()
                    .get(*sid)
                    .is_some_and(|e| e.sent_to.contains(&n))
            })
            .map(|sid| (sid, n))
            .collect()
    }

    fn on_reconfigure_at_source(
        &mut self,
        frm: BrokerId,
        m: MoveId,
        client: ClientId,
        target: BrokerId,
        profile: ClientProfile,
    ) -> Vec<Output> {
        let source = self.id();
        match self.src_moves.get(&m).map(|r| r.state) {
            Some(SourceCoordState::Wait) => {}
            Some(SourceCoordState::Abort) | None => {
                // We already gave up on this movement (timeout): undo
                // the reconfiguration along the path.
                return self.forward_or_emit_toward(
                    target,
                    MoveMsg::AbortMove {
                        m,
                        client,
                        source,
                        target,
                        toward: target,
                    },
                );
            }
            _ => {
                self.anomalies += 1;
                return Vec::new();
            }
        }
        // Install the shadow configuration at the source: entries flip
        // from the local client to the path toward the target.
        let mut outs: Vec<BrokerOutput> = Vec::new();
        let mut fixups = Vec::new();
        for s in &profile.subs {
            self.core.install_pending_sub(s, m, Hop::Broker(frm), None);
        }
        for a in &profile.advs {
            self.core.install_pending_adv(a, m, Hop::Broker(frm), None);
            fixups.extend(self.pull_with_record(a.id, frm, &mut outs));
        }
        // Coordinator: wait → prepare. Client: pause_move →
        // prepare_stop, then capture its state.
        // unwrap: state checked above
        let rec = self.src_moves.get_mut(&m).unwrap();
        rec.state = SourceCoordState::Prepare;
        rec.fixups = fixups;
        // unwrap: the moving client is hosted here until cleanup
        let stub = self.clients.get_mut(&client).unwrap();
        stub.set_state(ClientState::PrepareStop);
        let snapshot = stub.take_snapshot();
        // Local hop of the commit pass, then send `state` (message (4))
        // which commits hop-by-hop on its way to the target.
        outs.extend(self.core.commit_move(m));
        let mut out = self.absorb(outs);
        out.push(Output::CancelTimer {
            token: TimerToken {
                m,
                kind: TimerKind::Negotiate,
            },
        });
        out.push(Output::Send {
            to: frm,
            msg: Message::Move(MoveMsg::StateTransfer {
                m,
                client,
                source,
                target,
                snapshot,
            }),
        });
        out
    }

    // ----- commit pass, walked source → target -------------------------

    fn on_state_transfer(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        snapshot: ClientSnapshot,
    ) -> Vec<Output> {
        if self.id() != target {
            // Intermediate broker: commit the shadow configuration and
            // walk on.
            let outs = self.core.commit_move(m);
            self.path_moves.remove(&m);
            let mut out = self.absorb(outs);
            match self.try_route_next(target) {
                Some(next) => out.push(Output::Send {
                    to: next,
                    msg: Message::Move(MoveMsg::StateTransfer {
                        m,
                        client,
                        source,
                        target,
                        snapshot,
                    }),
                }),
                None => {
                    // The target died mid-commit: the committed hops
                    // stay consistent with the ones behind us; the
                    // source's death handling resurrects the client.
                    self.anomalies += 1;
                }
            }
            return out;
        }
        // Target: commit, start the client, ack.
        match self.tgt_moves.get(&m).map(|r| r.state) {
            Some(TargetCoordState::Prepare) => {}
            Some(TargetCoordState::Commit) => {
                // Retransmitted/duplicated commit pass: the transfer
                // already applied. Answering with an abort here would
                // chase the ack down the path and tear a committed
                // movement back open at the source.
                self.anomalies += 1;
                return Vec::new();
            }
            _ => {
                // Late state after a local abort: the client copy is
                // gone. Undo the commit pass we cannot apply.
                self.anomalies += 1;
                return self.forward_or_emit_toward(
                    source,
                    MoveMsg::AbortMove {
                        m,
                        client,
                        source,
                        target,
                        toward: source,
                    },
                );
            }
        }
        let outs = self.core.commit_move(m);
        let mut out = self.absorb(outs);
        // unwrap: target-move record in Prepare implies the copy exists
        let stub = self.clients.get_mut(&client).unwrap();
        stub.merge_snapshot(snapshot);
        stub.set_state(ClientState::Started);
        for p in stub.flush_buffered() {
            out.push(Output::DeliverToApp {
                client,
                publication: p,
            });
        }
        let ops = stub.drain_ops();
        for op in ops {
            out.extend(self.client_op(client, op));
        }
        // unwrap: record presence checked above
        self.tgt_moves.get_mut(&m).unwrap().state = TargetCoordState::Commit;
        out.push(Output::CancelTimer {
            token: TimerToken {
                m,
                kind: TimerKind::State,
            },
        });
        out.push(Output::ClientArrived { m, client });
        out.extend(self.forward_or_emit_toward(source, MoveMsg::Ack { m, source, target }));
        out
    }

    fn on_ack(&mut self, m: MoveId) -> Vec<Output> {
        let Some(rec) = self.src_moves.remove(&m) else {
            self.anomalies += 1;
            return Vec::new();
        };
        debug_assert_eq!(rec.state, SourceCoordState::Prepare);
        let mut out = Vec::new();
        // Client: prepare_stop → clean; container cleanup. Anything
        // that reached the source copy *after* the snapshot was taken
        // (commands issued by a slow application, notifications still
        // in flight) is flushed to the target in a late transfer; the
        // target's dedup suppresses what it already has.
        if let Some(mut stub) = self.clients.remove(&rec.client) {
            let late = stub.take_snapshot();
            if !late.buffered.is_empty() || !late.queued_ops.is_empty() {
                out.extend(self.forward_or_emit_toward(
                    rec.target,
                    MoveMsg::CovTransfer {
                        m,
                        client: rec.client,
                        source: self.id(),
                        target: rec.target,
                        profile: ClientProfile::default(),
                        snapshot: late,
                    },
                ));
            }
            stub.set_state(ClientState::Clean);
        }
        self.core.detach_client(rec.client);
        out.push(Output::MoveFinished {
            m,
            client: rec.client,
            committed: true,
        });
        out
    }

    fn on_reject(&mut self, m: MoveId) -> Vec<Output> {
        let Some(rec) = self.src_moves.remove(&m) else {
            self.anomalies += 1;
            return Vec::new();
        };
        let mut out = vec![Output::CancelTimer {
            token: TimerToken {
                m,
                kind: TimerKind::Negotiate,
            },
        }];
        out.extend(self.resume_client(rec.client));
        out.push(Output::MoveFinished {
            m,
            client: rec.client,
            committed: false,
        });
        out
    }

    /// Resumes a client at the source after an aborted/rejected
    /// movement: buffered notifications surface, queued commands run.
    fn resume_client(&mut self, client: ClientId) -> Vec<Output> {
        let mut out = Vec::new();
        let Some(stub) = self.clients.get_mut(&client) else {
            self.anomalies += 1;
            return out;
        };
        stub.set_state(ClientState::Started);
        for p in stub.flush_buffered() {
            out.push(Output::DeliverToApp {
                client,
                publication: p,
            });
        }
        let ops = stub.drain_ops();
        for op in ops {
            out.extend(self.client_op(client, op));
        }
        out
    }

    // ----- abort pass ---------------------------------------------------

    fn on_abort_move(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        toward: BrokerId,
    ) -> Vec<Output> {
        // Roll back shadow configurations and any recorded fix-ups.
        let mut outs: Vec<BrokerOutput> = self.core.abort_move(m);
        let fixups: Vec<(SubId, BrokerId)> = if let Some(pm) = self.path_moves.remove(&m) {
            pm.fixups
        } else if let Some(sm) = self.src_moves.get(&m) {
            sm.fixups.clone()
        } else {
            Vec::new()
        };
        for (sid, n) in fixups {
            outs.extend(self.core.prune_sub_link(sid, n));
        }
        let mut out = self.absorb(outs);
        if self.id() == toward {
            if toward == source {
                if let Some(rec) = self.src_moves.remove(&m) {
                    if rec.state == SourceCoordState::Prepare {
                        // The source already flipped its routing away
                        // from the local client (commit pass sent, or
                        // the covering protocol retracted the profile):
                        // plain rollback cannot help because the
                        // pendings are gone. Re-issue the profile so
                        // the resurrected client is routable again.
                        out.extend(self.reissue_profile(rec.client));
                    }
                    out.extend(self.resume_client(rec.client));
                    out.push(Output::CancelTimer {
                        token: TimerToken {
                            m,
                            kind: TimerKind::Negotiate,
                        },
                    });
                    out.push(Output::MoveFinished {
                        m,
                        client: rec.client,
                        committed: false,
                    });
                }
            } else if let Some(rec) = self.tgt_moves.get_mut(&m) {
                if rec.state == TargetCoordState::Commit {
                    // A stale abort (e.g. triggered by a duplicated
                    // negotiate replay at the source after cleanup)
                    // must not destroy a copy that already committed
                    // and runs here.
                    self.anomalies += 1;
                } else {
                    rec.state = TargetCoordState::Abort;
                    // Destroy the client copy.
                    self.clients.remove(&client);
                    self.core.detach_client(client);
                    out.push(Output::CancelTimer {
                        token: TimerToken {
                            m,
                            kind: TimerKind::State,
                        },
                    });
                }
            }
        } else {
            out.extend(self.forward_or_emit_toward(
                toward,
                MoveMsg::AbortMove {
                    m,
                    client,
                    source,
                    target,
                    toward,
                },
            ));
        }
        out
    }

    /// Re-issues a hosted client's full profile into the routing layer
    /// (idempotent: the insert-or-adopt semantics of
    /// `handle_subscribe`/`handle_advertise` flip surviving entries
    /// back toward the client and re-propagate). Used when rolling
    /// back a movement that already committed its source-side routing
    /// flip.
    fn reissue_profile(&mut self, client: ClientId) -> Vec<Output> {
        let Some(stub) = self.clients.get(&client) else {
            self.anomalies += 1;
            return Vec::new();
        };
        let profile = stub.profile();
        let mut outs: Vec<BrokerOutput> = Vec::new();
        for s in &profile.subs {
            outs.extend(
                self.core
                    .handle(Hop::Client(client), PubSubMsg::Subscribe(s.clone())),
            );
        }
        for a in &profile.advs {
            outs.extend(
                self.core
                    .handle(Hop::Client(client), PubSubMsg::Advertise(a.clone())),
            );
        }
        self.absorb(outs)
    }

    // ----- overlay repair ------------------------------------------------

    /// Declares `dead` permanently failed: repairs the local topology
    /// copy (reconnecting the orphaned subtrees through the dead
    /// broker's smallest-id neighbour), rebuilds the affected routing
    /// state, resolves movement transactions that involved or crossed
    /// the dead broker, and floods the death notice over every
    /// surviving link — including the new repair edges, which is how
    /// the notice crosses between the formerly separated subtrees.
    ///
    /// Idempotent: a broker that already repaired (or never knew
    /// `dead`) does nothing, which terminates the flood. Logged
    /// write-ahead like any other external input; replay re-derives
    /// the repair deterministically from `(topology, dead)`.
    pub fn handle_broker_death(&mut self, dead: BrokerId) -> Vec<Output> {
        let outer = self.begin_input(|| LoggedInput::BrokerDeath { dead });
        let out = self.broker_death_apply(dead);
        self.end_input(outer);
        out
    }

    fn broker_death_apply(&mut self, dead: BrokerId) -> Vec<Output> {
        if dead == self.id() || !self.topology.contains(dead) {
            return Vec::new();
        }
        // Keep the pre-repair overlay: movement resolution below needs
        // to know which old routes crossed the dead broker.
        let pre = Arc::clone(&self.topology);
        let change = {
            let topo = Arc::make_mut(&mut self.topology);
            match topo.repair(dead) {
                Ok(c) => c,
                Err(_) => {
                    self.anomalies += 1;
                    return Vec::new();
                }
            }
        };
        let myid = self.id();
        let new_peers: Vec<BrokerId> = change
            .added_edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == myid {
                    Some(b)
                } else if b == myid {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        let (core_outs, doomed) = self.core.repair_neighbors(dead, &new_peers);
        let mut out = self.absorb(core_outs);
        // Roll back the shadow configurations of movements whose
        // reconfiguration path came through the dead broker. Endpoints
        // resolve their coordinator records below instead.
        for m in doomed {
            if self.src_moves.contains_key(&m) || self.tgt_moves.contains_key(&m) {
                continue;
            }
            let fixups = self
                .path_moves
                .remove(&m)
                .map(|p| p.fixups)
                .unwrap_or_default();
            let mut outs = self.core.abort_move(m);
            for (sid, n) in fixups {
                outs.extend(self.core.prune_sub_link(sid, n));
            }
            out.extend(self.absorb(outs));
        }
        out.extend(self.resolve_moves_after_death(dead, &pre));
        // Flood the notice over every surviving link.
        let peers: Vec<BrokerId> = self.topology.neighbors(myid).iter().copied().collect();
        for n in peers {
            out.push(Output::Send {
                to: n,
                msg: Message::BrokerDeath { dead },
            });
        }
        out
    }

    /// Resolves this broker's movement coordinator records after
    /// `dead` was removed from the overlay, using the `pre`-repair
    /// topology to decide which transactions crossed it.
    ///
    /// Source side: a movement *toward* the dead broker, or whose path
    /// crossed it, aborts as a negotiate timeout would — except that a
    /// source already in `Prepare` with the *target itself* dead
    /// resurrects the client locally (the copy died with the target,
    /// so the single-instance guarantee holds). A source in `Prepare`
    /// toward a surviving target is left alone: the target resolves it
    /// (re-sent terminal message below, or its state timer).
    ///
    /// Target side: a copy whose source died before transferring state
    /// is destroyed (the original still existed at the source when it
    /// died). For a surviving source whose route crossed the dead
    /// broker, the terminal message we may have lost with it —
    /// `Ack`/`CovDone` after commit, `AbortMove` after a local abort —
    /// is re-sent; both are idempotent at the source.
    fn resolve_moves_after_death(&mut self, dead: BrokerId, pre: &Topology) -> Vec<Output> {
        let myid = self.id();
        let crossed = |other: BrokerId| {
            other == dead || pre.route(myid, other).is_some_and(|r| r.contains(dead))
        };
        let mut out = Vec::new();
        let src_ids: Vec<MoveId> = self
            .src_moves
            .iter()
            .filter(|(_, r)| crossed(r.target))
            .map(|(m, _)| *m)
            .collect();
        for m in src_ids {
            // unwrap: ids collected from the map just above
            let rec = self.src_moves.get(&m).unwrap().clone();
            match rec.state {
                SourceCoordState::Wait => {
                    self.src_moves.remove(&m);
                    let mut outs = self.core.abort_move(m);
                    for (sid, n) in rec.fixups {
                        outs.extend(self.core.prune_sub_link(sid, n));
                    }
                    out.extend(self.absorb(outs));
                    out.push(Output::CancelTimer {
                        token: TimerToken {
                            m,
                            kind: TimerKind::Negotiate,
                        },
                    });
                    out.extend(self.resume_client(rec.client));
                    out.push(Output::MoveFinished {
                        m,
                        client: rec.client,
                        committed: false,
                    });
                    out.extend(self.sweep_abort(m, rec.client, myid, rec.target, dead, pre));
                }
                SourceCoordState::Prepare if rec.target == dead => {
                    self.src_moves.remove(&m);
                    let mut outs = self.core.abort_move(m);
                    for (sid, n) in rec.fixups {
                        outs.extend(self.core.prune_sub_link(sid, n));
                    }
                    out.extend(self.absorb(outs));
                    out.extend(self.reissue_profile(rec.client));
                    out.extend(self.resume_client(rec.client));
                    out.push(Output::MoveFinished {
                        m,
                        client: rec.client,
                        committed: false,
                    });
                    out.extend(self.sweep_abort(m, rec.client, myid, rec.target, dead, pre));
                }
                _ => {}
            }
        }
        let tgt_ids: Vec<MoveId> = self
            .tgt_moves
            .iter()
            .filter(|(_, r)| crossed(r.source))
            .map(|(m, _)| *m)
            .collect();
        for m in tgt_ids {
            // unwrap: ids collected from the map just above
            let rec = self.tgt_moves.get(&m).unwrap().clone();
            if rec.source == dead {
                if rec.state == TargetCoordState::Prepare {
                    self.tgt_moves.remove(&m);
                    self.clients.remove(&rec.client);
                    self.core.detach_client(rec.client);
                    let outs = self.core.abort_move(m);
                    out.extend(self.absorb(outs));
                    out.push(Output::CancelTimer {
                        token: TimerToken {
                            m,
                            kind: TimerKind::State,
                        },
                    });
                    out.extend(self.sweep_abort(m, rec.client, rec.source, myid, dead, pre));
                }
                // Commit: the client runs here; the source can no
                // longer clean up, which is fine — it is gone.
            } else {
                match rec.state {
                    TargetCoordState::Commit => {
                        let msg = match rec.protocol {
                            ProtocolKind::Reconfig => MoveMsg::Ack {
                                m,
                                source: rec.source,
                                target: myid,
                            },
                            ProtocolKind::Covering => MoveMsg::CovDone {
                                m,
                                source: rec.source,
                                target: myid,
                            },
                        };
                        out.extend(self.forward_or_emit_toward(rec.source, msg));
                    }
                    TargetCoordState::Abort => {
                        out.extend(self.forward_or_emit_toward(
                            rec.source,
                            MoveMsg::AbortMove {
                                m,
                                client: rec.client,
                                source: rec.source,
                                target: myid,
                                toward: rec.source,
                            },
                        ));
                    }
                    TargetCoordState::Prepare | TargetCoordState::Init => {} // state timer pending
                }
            }
        }
        out
    }

    /// Emits the abort pass for movement `m` down the surviving part
    /// of the *old* route toward `far` (the remote end of the
    /// transaction). When `far` is the dead broker itself the pass
    /// stops at the last surviving broker before it; otherwise it runs
    /// to `far` over the repaired overlay, which contains every
    /// survivor of the old path (the repair replaces the dead broker
    /// with at most its anchor neighbour).
    fn sweep_abort(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        dead: BrokerId,
        pre: &Topology,
    ) -> Vec<Output> {
        let far = if source == self.id() { target } else { source };
        let toward = if far == dead {
            match pre.route(self.id(), far).and_then(|r| r.pre(dead)) {
                Some(x) if x != self.id() => x,
                _ => return Vec::new(),
            }
        } else {
            far
        };
        if !self.topology.contains(toward) {
            return Vec::new();
        }
        self.forward_or_emit_toward(
            toward,
            MoveMsg::AbortMove {
                m,
                client,
                source,
                target,
                toward,
            },
        )
    }

    // ----- timers --------------------------------------------------------

    /// Handles a fired protocol timer (driver callback).
    pub fn handle_timer(&mut self, token: TimerToken) -> Vec<Output> {
        let outer = self.begin_input(|| LoggedInput::Timer { token });
        let out = self.handle_timer_apply(token);
        self.end_input(outer);
        out
    }

    fn handle_timer_apply(&mut self, token: TimerToken) -> Vec<Output> {
        match token.kind {
            TimerKind::Negotiate => {
                let m = token.m;
                let Some(rec) = self.src_moves.get_mut(&m) else {
                    return Vec::new(); // finished meanwhile
                };
                if rec.state != SourceCoordState::Wait {
                    return Vec::new();
                }
                rec.state = SourceCoordState::Abort;
                let client = rec.client;
                let target = rec.target;
                let source = self.id();
                self.src_moves.remove(&m);
                let mut out = self.resume_client(client);
                out.push(Output::MoveFinished {
                    m,
                    client,
                    committed: false,
                });
                // Sweep any partially installed reconfiguration.
                out.extend(self.forward_or_emit_toward(
                    target,
                    MoveMsg::AbortMove {
                        m,
                        client,
                        source,
                        target,
                        toward: target,
                    },
                ));
                out
            }
            TimerKind::State => {
                let m = token.m;
                let Some(rec) = self.tgt_moves.get_mut(&m) else {
                    return Vec::new();
                };
                if rec.state != TargetCoordState::Prepare {
                    return Vec::new();
                }
                rec.state = TargetCoordState::Abort;
                let client = rec.client;
                let source = rec.source;
                let target = self.id();
                // Destroy the copy and sweep the path back to the
                // source.
                self.clients.remove(&client);
                self.core.detach_client(client);
                let mut outs = self.core.abort_move(m);
                let mut out = Vec::new();
                out.append(&mut self.absorb(std::mem::take(&mut outs)));
                out.extend(self.forward_or_emit_toward(
                    source,
                    MoveMsg::AbortMove {
                        m,
                        client,
                        source,
                        target,
                        toward: source,
                    },
                ));
                out
            }
        }
    }

    // ----- covering (traditional) protocol -------------------------------

    fn on_cov_request(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
    ) -> Vec<Output> {
        debug_assert_eq!(target, self.id());
        if !self.config.accept_moves {
            return self.forward_or_emit_toward(source, MoveMsg::Reject { m, source, target });
        }
        if self.tgt_moves.contains_key(&m) {
            // Duplicate request: re-running the accept would re-arm the
            // state timer and re-send the accept for a transaction that
            // may have progressed past Prepare.
            self.anomalies += 1;
            return Vec::new();
        }
        self.tgt_moves.insert(
            m,
            TargetMove {
                client,
                source,
                state: TargetCoordState::Prepare,
                protocol: ProtocolKind::Covering,
            },
        );
        let mut out = self.forward_or_emit_toward(source, MoveMsg::CovAccept { m, source, target });
        if let Some(delay_ns) = self.config.state_timeout_ns {
            out.push(Output::SetTimer {
                token: TimerToken {
                    m,
                    kind: TimerKind::State,
                },
                delay_ns,
            });
        }
        out
    }

    fn on_cov_accept(&mut self, m: MoveId) -> Vec<Output> {
        let (client, target) = match self.src_moves.get_mut(&m) {
            Some(rec) if rec.state == SourceCoordState::Wait => {
                rec.state = SourceCoordState::Prepare;
                (rec.client, rec.target)
            }
            _ => {
                self.anomalies += 1;
                return Vec::new();
            }
        };
        let source = self.id();
        let mut out = vec![Output::CancelTimer {
            token: TimerToken {
                m,
                kind: TimerKind::Negotiate,
            },
        }];
        // unwrap: the moving client is hosted here until cleanup
        let stub = self.clients.get_mut(&client).unwrap();
        stub.set_state(ClientState::PrepareStop);
        let profile = stub.profile();
        let snapshot = stub.take_snapshot();
        if !self.config.make_before_break {
            // Traditional order: retract everything at the source
            // first. The covering optimization now quenches or
            // cascades as the workload dictates.
            let mut outs: Vec<BrokerOutput> = Vec::new();
            for s in &profile.subs {
                outs.extend(
                    self.core
                        .handle(Hop::Client(client), PubSubMsg::Unsubscribe(s.id)),
                );
            }
            for a in &profile.advs {
                outs.extend(
                    self.core
                        .handle(Hop::Client(client), PubSubMsg::Unadvertise(a.id)),
                );
            }
            out.extend(self.absorb(outs));
        }
        out.extend(self.forward_or_emit_toward(
            target,
            MoveMsg::CovTransfer {
                m,
                client,
                source,
                target,
                profile,
                snapshot,
            },
        ));
        out
    }

    fn on_cov_transfer(
        &mut self,
        m: MoveId,
        client: ClientId,
        source: BrokerId,
        target: BrokerId,
        profile: ClientProfile,
        snapshot: ClientSnapshot,
    ) -> Vec<Output> {
        match self.tgt_moves.get(&m).map(|r| r.state) {
            Some(TargetCoordState::Prepare) => {}
            Some(TargetCoordState::Commit) => {
                // Late flush: the client already runs here; surface the
                // remaining buffered notifications (dedup applies) and
                // execute commands that straggled in at the source.
                let mut out = Vec::new();
                if self.clients.contains_key(&client) {
                    for p in snapshot.buffered {
                        // unwrap: presence checked just above and
                        // client_op below never removes the stub
                        let stub = self.clients.get_mut(&client).unwrap();
                        if stub.deliver(p.clone()) == DeliverOutcome::Surfaced {
                            out.push(Output::DeliverToApp {
                                client,
                                publication: p,
                            });
                        }
                    }
                    for op in snapshot.queued_ops {
                        out.extend(self.client_op(client, op));
                    }
                }
                return out;
            }
            _ => {
                self.anomalies += 1;
                return Vec::new();
            }
        }
        let mut copy = HostedClient::created_from_profile(client, &profile);
        copy.merge_snapshot(snapshot);
        self.clients.insert(client, copy);
        self.core.attach_client(client);
        // Reissue the profile at the target: normal propagation, with
        // whatever covering behaviour the broker network is configured
        // for.
        let mut outs: Vec<BrokerOutput> = Vec::new();
        for s in &profile.subs {
            outs.extend(
                self.core
                    .handle(Hop::Client(client), PubSubMsg::Subscribe(s.clone())),
            );
        }
        for a in &profile.advs {
            outs.extend(
                self.core
                    .handle(Hop::Client(client), PubSubMsg::Advertise(a.clone())),
            );
        }
        let mut out = self.absorb(outs);
        // unwrap: the copy was inserted above
        let stub = self.clients.get_mut(&client).unwrap();
        stub.set_state(ClientState::Started);
        for p in stub.flush_buffered() {
            out.push(Output::DeliverToApp {
                client,
                publication: p,
            });
        }
        let ops = stub.drain_ops();
        for op in ops {
            out.extend(self.client_op(client, op));
        }
        // unwrap: record presence checked above
        self.tgt_moves.get_mut(&m).unwrap().state = TargetCoordState::Commit;
        out.push(Output::CancelTimer {
            token: TimerToken {
                m,
                kind: TimerKind::State,
            },
        });
        out.push(Output::ClientArrived { m, client });
        out.extend(self.forward_or_emit_toward(source, MoveMsg::CovDone { m, source, target }));
        out
    }

    fn on_cov_done(&mut self, m: MoveId) -> Vec<Output> {
        let Some(rec) = self.src_moves.remove(&m) else {
            self.anomalies += 1;
            return Vec::new();
        };
        let client = rec.client;
        let mut out = Vec::new();
        if self.config.make_before_break {
            // Retract the profile only now that the target runs, and
            // ship any notifications buffered here in the meantime.
            let profile = self
                .clients
                .get(&client)
                .map(HostedClient::profile)
                .unwrap_or_default();
            let mut outs: Vec<BrokerOutput> = Vec::new();
            for s in &profile.subs {
                outs.extend(
                    self.core
                        .handle(Hop::Client(client), PubSubMsg::Unsubscribe(s.id)),
                );
            }
            for a in &profile.advs {
                outs.extend(
                    self.core
                        .handle(Hop::Client(client), PubSubMsg::Unadvertise(a.id)),
                );
            }
            out.extend(self.absorb(outs));
        }
        // Flush anything that straggled in after the snapshot
        // (commands from a slow application; buffered notifications in
        // the make-before-break variant).
        if let Some(stub) = self.clients.get_mut(&client) {
            let late = stub.take_snapshot();
            if !late.buffered.is_empty() || !late.queued_ops.is_empty() {
                out.extend(self.forward_or_emit_toward(
                    rec.target,
                    MoveMsg::CovTransfer {
                        m,
                        client,
                        source: self.id(),
                        target: rec.target,
                        profile: ClientProfile::default(),
                        snapshot: late,
                    },
                ));
            }
        }
        self.clients.remove(&client);
        self.core.detach_client(client);
        out.push(Output::MoveFinished {
            m,
            client,
            committed: true,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::Filter;

    fn broker_at(id: u32) -> MobileBroker {
        let topo = Arc::new(Topology::chain(3));
        MobileBroker::new(BrokerId(id), topo, MobileBrokerConfig::reconfig())
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn new_rejects_foreign_id() {
        let topo = Arc::new(Topology::chain(3));
        let _ = MobileBroker::new(BrokerId(9), topo, MobileBrokerConfig::reconfig());
    }

    #[test]
    fn unknown_unsubscribe_counts_anomaly() {
        let mut b = broker_at(1);
        b.create_client(ClientId(1));
        let outs = b.client_op(ClientId(1), ClientOp::Unsubscribe(7));
        assert!(outs.is_empty());
        assert_eq!(b.anomalies(), 1);
        let outs = b.client_op(ClientId(1), ClientOp::Unadvertise(7));
        assert!(outs.is_empty());
        assert_eq!(b.anomalies(), 2);
    }

    #[test]
    fn move_to_self_finishes_committed_without_traffic() {
        let mut b = broker_at(2);
        b.create_client(ClientId(1));
        let outs = b.client_op(
            ClientId(1),
            ClientOp::MoveTo(BrokerId(2), ProtocolKind::Reconfig),
        );
        assert_eq!(outs.len(), 1);
        assert!(matches!(
            outs[0],
            Output::MoveFinished {
                committed: true,
                ..
            }
        ));
        assert_eq!(b.client(ClientId(1)).unwrap().state(), ClientState::Started);
    }

    #[test]
    fn move_to_unknown_broker_aborts_locally() {
        let mut b = broker_at(2);
        b.create_client(ClientId(1));
        let outs = b.client_op(
            ClientId(1),
            ClientOp::MoveTo(BrokerId(42), ProtocolKind::Covering),
        );
        assert!(matches!(
            outs[0],
            Output::MoveFinished {
                committed: false,
                ..
            }
        ));
    }

    #[test]
    fn commands_queue_while_moving() {
        let mut b = broker_at(1);
        b.create_client(ClientId(1));
        // Start a (real) move: the stub pauses, later ops must queue.
        let outs = b.client_op(
            ClientId(1),
            ClientOp::MoveTo(BrokerId(3), ProtocolKind::Reconfig),
        );
        assert!(outs.iter().any(|o| matches!(o, Output::Send { .. })));
        let outs = b.client_op(
            ClientId(1),
            ClientOp::Subscribe(Filter::builder().any("x").build()),
        );
        assert!(outs.is_empty(), "ops while moving must be queued");
        assert_eq!(b.client(ClientId(1)).unwrap().queued_len(), 1);
        assert_eq!(
            b.client(ClientId(1)).unwrap().state(),
            ClientState::PauseMove
        );
    }

    #[test]
    fn rejecting_broker_sends_reject() {
        let topo = Arc::new(Topology::chain(3));
        let mut target = MobileBroker::new(
            BrokerId(3),
            Arc::clone(&topo),
            MobileBrokerConfig {
                accept_moves: false,
                ..MobileBrokerConfig::reconfig()
            },
        );
        let nego = MoveMsg::Negotiate {
            m: MoveId(5),
            client: ClientId(1),
            source: BrokerId(1),
            target: BrokerId(3),
            profile: crate::messages::ClientProfile::default(),
            protocol: ProtocolKind::Reconfig,
        };
        let outs = target.handle(Hop::Broker(BrokerId(2)), Message::Move(nego));
        assert_eq!(outs.len(), 1);
        match &outs[0] {
            Output::Send { to, msg } => {
                assert_eq!(*to, BrokerId(2));
                assert!(matches!(msg, Message::Move(MoveMsg::Reject { .. })));
            }
            other => panic!("expected a reject send, got {other:?}"),
        }
        assert!(target.client(ClientId(1)).is_none(), "no copy on reject");
    }

    #[test]
    fn routed_move_messages_forward_through_intermediates() {
        let mut mid = broker_at(2);
        let ack = MoveMsg::Ack {
            m: MoveId(5),
            source: BrokerId(1),
            target: BrokerId(3),
        };
        let outs = mid.handle(Hop::Broker(BrokerId(3)), Message::Move(ack));
        assert_eq!(outs.len(), 1);
        match &outs[0] {
            Output::Send { to, .. } => assert_eq!(*to, BrokerId(1)),
            other => panic!("expected forward, got {other:?}"),
        }
        assert_eq!(mid.anomalies(), 0);
    }

    #[test]
    fn set_accept_moves_toggles() {
        let mut b = broker_at(1);
        b.set_accept_moves(false);
        let nego = MoveMsg::Negotiate {
            m: MoveId(5),
            client: ClientId(9),
            source: BrokerId(3),
            target: BrokerId(1),
            profile: crate::messages::ClientProfile::default(),
            protocol: ProtocolKind::Reconfig,
        };
        let outs = b.handle(Hop::Broker(BrokerId(2)), Message::Move(nego.clone()));
        assert!(matches!(
            &outs[0],
            Output::Send {
                msg: Message::Move(MoveMsg::Reject { .. }),
                ..
            }
        ));
        b.set_accept_moves(true);
        let outs = b.handle(Hop::Broker(BrokerId(2)), Message::Move(nego));
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::Move(MoveMsg::Reconfigure { .. }),
                ..
            }
        )));
    }
}
