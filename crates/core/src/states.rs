//! The client and coordinator state machines of the movement protocol,
//! exactly as the paper's Fig. 4.
//!
//! The movement protocol is a conversation between the *source
//! coordinator* (at the broker the client moves from) and the *target
//! coordinator* (at the broker it moves to), modelled on three-phase
//! commit. Each coordinator supervises a copy of the client; the
//! paper's central safety claims are stated over these local states:
//!
//! 1. in a **final** global state, exactly one client copy is
//!    `Started` and the other is `Clean`;
//! 2. in **any** reachable global state, at most one client copy is
//!    `Started`.
//!
//! [`crate::modelcheck`] verifies both claims by exhaustive search of
//! the global state graph (the paper's Fig. 5);
//! [`source_client_states`] / [`target_client_states`] encode the
//! concurrent-state table embedded in Fig. 4 and are asserted during
//! protocol execution in debug builds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// States of the coordinator at the source broker (Fig. 4, "Source
/// Coordinator").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SourceCoordState {
    /// No movement in progress.
    Init,
    /// `move` received from the client; `negotiate` sent to the
    /// target; awaiting `approve` or `reject`.
    Wait,
    /// `approve` received; client is being stopped; `state` sent;
    /// awaiting `ack`.
    Prepare,
    /// Movement aborted; client resumed at the source.
    Abort,
    /// `ack` received; source copy cleaned up.
    Commit,
}

/// States of the coordinator at the target broker (Fig. 4, "Target
/// Coordinator").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TargetCoordState {
    /// No movement in progress.
    Init,
    /// `negotiate` accepted; client copy created; routing
    /// reconfiguration issued; awaiting `state`.
    Prepare,
    /// Movement aborted (rejected, or timed out); client copy
    /// destroyed.
    Abort,
    /// `state` received; client started; `ack` sent.
    Commit,
}

/// States of a client copy (Fig. 4, "Source Client" / "Target
/// Client"). A copy at the source walks
/// `Started → PauseMove → PrepareStop → Clean` on a successful
/// movement; a copy at the target walks `Init → Created → Started`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ClientState {
    /// Not yet created.
    Init,
    /// Created but not running (target copy before commit).
    Created,
    /// Running: publishes and receives notifications.
    Started,
    /// Paused by the application (operational pause; not moving).
    PauseOper,
    /// Paused because a movement was requested; operations are queued
    /// and notifications buffered.
    PauseMove,
    /// Being stopped: state captured for transfer.
    PrepareStop,
    /// Removed after a committed movement (source copy) or an aborted
    /// one (target copy).
    Clean,
}

impl ClientState {
    /// Whether the client is visible to the rest of the system (it can
    /// publish). The isolation property of Sec. 3.3 reduces to: a
    /// moving client is never `Started` at two places at once.
    pub fn is_started(self) -> bool {
        self == ClientState::Started
    }

    /// Whether application commands must be queued rather than
    /// executed.
    pub fn queues_commands(self) -> bool {
        matches!(
            self,
            ClientState::PauseMove | ClientState::PrepareStop | ClientState::Created
        )
    }

    /// Whether notifications delivered to this copy are buffered for
    /// later (rather than surfaced to the application).
    pub fn buffers_notifications(self) -> bool {
        matches!(
            self,
            ClientState::PauseMove
                | ClientState::PrepareStop
                | ClientState::Created
                | ClientState::PauseOper
        )
    }
}

impl fmt::Display for SourceCoordState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceCoordState::Init => "init",
            SourceCoordState::Wait => "wait",
            SourceCoordState::Prepare => "prepare",
            SourceCoordState::Abort => "abort",
            SourceCoordState::Commit => "commit",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TargetCoordState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TargetCoordState::Init => "init",
            TargetCoordState::Prepare => "prepare",
            TargetCoordState::Abort => "abort",
            TargetCoordState::Commit => "commit",
        };
        f.write_str(s)
    }
}

impl fmt::Display for ClientState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClientState::Init => "init",
            ClientState::Created => "created",
            ClientState::Started => "started",
            ClientState::PauseOper => "pause_oper",
            ClientState::PauseMove => "pause_move",
            ClientState::PrepareStop => "prepare_stop",
            ClientState::Clean => "clean",
        };
        f.write_str(s)
    }
}

/// The concurrent source-side client states allowed for each source
/// coordinator state (the table embedded in Fig. 4).
pub fn source_client_states(coord: SourceCoordState) -> &'static [ClientState] {
    match coord {
        SourceCoordState::Init => &[
            ClientState::Init,
            ClientState::Created,
            ClientState::Started,
            ClientState::PauseOper,
        ],
        SourceCoordState::Wait => &[ClientState::PauseMove],
        SourceCoordState::Prepare => &[ClientState::PrepareStop],
        SourceCoordState::Abort => &[ClientState::Started],
        SourceCoordState::Commit => &[ClientState::Clean],
    }
}

/// The concurrent target-side client states allowed for each target
/// coordinator state (the table embedded in Fig. 4).
pub fn target_client_states(coord: TargetCoordState) -> &'static [ClientState] {
    match coord {
        TargetCoordState::Init => &[ClientState::Init],
        TargetCoordState::Prepare => &[ClientState::Created],
        TargetCoordState::Abort => &[ClientState::Clean],
        TargetCoordState::Commit => &[ClientState::Started],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn started_is_exclusive_flag() {
        assert!(ClientState::Started.is_started());
        for s in [
            ClientState::Init,
            ClientState::Created,
            ClientState::PauseOper,
            ClientState::PauseMove,
            ClientState::PrepareStop,
            ClientState::Clean,
        ] {
            assert!(!s.is_started());
        }
    }

    #[test]
    fn concurrent_state_table_matches_fig4() {
        assert_eq!(
            source_client_states(SourceCoordState::Wait),
            &[ClientState::PauseMove]
        );
        assert_eq!(
            source_client_states(SourceCoordState::Commit),
            &[ClientState::Clean]
        );
        assert_eq!(
            target_client_states(TargetCoordState::Commit),
            &[ClientState::Started]
        );
        assert_eq!(
            target_client_states(TargetCoordState::Abort),
            &[ClientState::Clean]
        );
    }

    #[test]
    fn fig4_table_never_allows_two_started() {
        // Over the coordinator-state pairs reachable per Fig. 5, the
        // concurrent-state table admits at most one Started client —
        // the static shadow of the model-checked invariant.
        use SourceCoordState as S;
        use TargetCoordState as T;
        let reachable = [
            (S::Init, T::Init),
            (S::Wait, T::Init),
            (S::Wait, T::Prepare),
            (S::Wait, T::Abort),
            (S::Abort, T::Abort),
            (S::Abort, T::Prepare),
            (S::Prepare, T::Prepare),
            (S::Prepare, T::Commit),
            (S::Commit, T::Commit),
        ];
        for (sc, tc) in reachable {
            let src_started = source_client_states(sc).contains(&ClientState::Started);
            let tgt_started = target_client_states(tc).contains(&ClientState::Started);
            assert!(
                !(src_started && tgt_started),
                "table admits two started copies at ({sc},{tc})"
            );
        }
    }

    #[test]
    fn queueing_and_buffering_flags() {
        assert!(ClientState::PauseMove.queues_commands());
        assert!(ClientState::Created.queues_commands());
        assert!(!ClientState::Started.queues_commands());
        assert!(ClientState::PauseOper.buffers_notifications());
        assert!(!ClientState::Started.buffers_notifications());
        assert!(!ClientState::Clean.buffers_notifications());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(SourceCoordState::Wait.to_string(), "wait");
        assert_eq!(TargetCoordState::Prepare.to_string(), "prepare");
        assert_eq!(ClientState::PauseMove.to_string(), "pause_move");
    }
}
