//! Wire messages of the movement protocols and the effect vocabulary
//! of a [`crate::MobileBroker`].
//!
//! The movement protocol adds a second message family next to the
//! routing layer's [`PubSubMsg`]: [`MoveMsg`]. Two kinds of movement
//! message exist:
//!
//! - **routed** messages (`Negotiate`, `Reject`, `Ack`, and the
//!   covering-protocol messages) travel between the source and target
//!   brokers; intermediate brokers forward them without acting;
//! - **hop-by-hop** messages (`Reconfigure`, `StateTransfer`,
//!   `AbortMove`) are *processed at every broker on the path* — they
//!   are the paper's reconfiguration message (message (2) of Fig. 3)
//!   and the hop-by-hop commit/abort passes of Sec. 4.4.

use std::fmt;

use serde::{Deserialize, Serialize};
use transmob_broker::PubSubMsg;
use transmob_pubsub::{
    Advertisement, BrokerId, ClientId, Filter, MoveId, PubId, Publication, PublicationMsg,
    Subscription,
};

/// Which movement protocol a transaction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The paper's contribution: 3PC conversation plus hop-by-hop
    /// routing reconfiguration along the source–target path.
    #[default]
    Reconfig,
    /// The traditional end-to-end protocol: unadvertise/unsubscribe at
    /// the source, reissue at the target, relying on the covering
    /// optimization for efficiency.
    Covering,
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Reconfig => f.write_str("reconfig"),
            ProtocolKind::Covering => f.write_str("covering"),
        }
    }
}

/// The pub/sub profile of a client: everything the routing layer knows
/// about it. Carried by `Negotiate`/`Reconfigure` so the target and
/// path brokers can reconstruct the client's routing configuration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Active subscriptions.
    pub subs: Vec<Subscription>,
    /// Active advertisements.
    pub advs: Vec<Advertisement>,
}

impl ClientProfile {
    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty() && self.advs.is_empty()
    }
}

/// The transferable execution state of a client: the payload of the
/// paper's message (4).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClientSnapshot {
    /// Notifications buffered at the source while the client was
    /// paused; merged (and de-duplicated by [`PubId`]) with the queue
    /// at the target.
    pub buffered: Vec<PublicationMsg>,
    /// Publication ids already surfaced to the application (exactly-
    /// once dedup state).
    pub seen: Vec<PubId>,
    /// Application commands queued while the client was moving; they
    /// are executed at the target after the client starts.
    pub queued_ops: Vec<ClientOp>,
    /// Next client-local sequence numbers (sub, adv, pub), so ids
    /// remain unique across moves.
    pub next_seq: (u32, u32, u32),
}

/// An application-level command a client can issue through its stub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientOp {
    /// Issue a subscription with this filter.
    Subscribe(Filter),
    /// Withdraw the subscription with this client-local sequence
    /// number.
    Unsubscribe(u32),
    /// Issue an advertisement with this filter.
    Advertise(Filter),
    /// Withdraw the advertisement with this client-local sequence
    /// number.
    Unadvertise(u32),
    /// Publish this content.
    Publish(Publication),
    /// Application-level pause (the paper's `pause_oper` state):
    /// notifications buffer and commands queue until [`ClientOp::Resume`].
    Pause,
    /// Resume from an application-level pause; buffered notifications
    /// surface and queued commands execute.
    Resume,
    /// Move to another broker using the given protocol.
    MoveTo(BrokerId, ProtocolKind),
}

/// A movement-protocol message.
///
/// All variants carry the movement id plus the source and target
/// broker so intermediate brokers can route or walk them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MoveMsg {
    /// (1) Source → target: request to move `client`, with its pub/sub
    /// profile. Routed.
    Negotiate {
        /// Movement transaction id.
        m: MoveId,
        /// The moving client.
        client: ClientId,
        /// Source broker.
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
        /// The client's routing profile.
        profile: ClientProfile,
        /// Which protocol drives this movement.
        protocol: ProtocolKind,
    },
    /// (3) Target → source: the target refuses the client. Routed.
    Reject {
        /// Movement transaction id.
        m: MoveId,
        /// Source broker (the destination of this message).
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
    },
    /// (2) Target → source: the approval that doubles as the
    /// reconfiguration message, **processed at every broker on the
    /// path**: each installs the pending (shadow) routing
    /// configuration for the client's subscriptions/advertisements and
    /// performs the Sec. 4.4 PRT fix-ups.
    Reconfigure {
        /// Movement transaction id.
        m: MoveId,
        /// The moving client.
        client: ClientId,
        /// Source broker.
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
        /// The client's routing profile.
        profile: ClientProfile,
    },
    /// (4) Source → target: the client state, **processed at every
    /// broker on the path** as the hop-by-hop commit pass (the old
    /// routing configuration is deleted).
    StateTransfer {
        /// Movement transaction id.
        m: MoveId,
        /// The moving client.
        client: ClientId,
        /// Source broker.
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
        /// The client execution state.
        snapshot: ClientSnapshot,
    },
    /// (5) Target → source: movement committed; the source cleans up.
    /// Routed.
    Ack {
        /// Movement transaction id.
        m: MoveId,
        /// Source broker (the destination of this message).
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
    },
    /// Abort pass, **processed at every broker on the path** in the
    /// direction `toward`: pending configurations are rolled back and
    /// reconfiguration fix-ups retracted.
    AbortMove {
        /// Movement transaction id.
        m: MoveId,
        /// The moving client.
        client: ClientId,
        /// Source broker.
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
        /// The broker this abort pass is walking toward.
        toward: BrokerId,
    },
    /// Covering protocol: source → target request. Routed.
    CovRequest {
        /// Movement transaction id.
        m: MoveId,
        /// The moving client.
        client: ClientId,
        /// Source broker.
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
    },
    /// Covering protocol: target → source acceptance. Routed.
    CovAccept {
        /// Movement transaction id.
        m: MoveId,
        /// Source broker (the destination of this message).
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
    },
    /// Covering protocol: source → target profile + state transfer
    /// (after the source unsubscribed/unadvertised everything).
    /// Routed.
    CovTransfer {
        /// Movement transaction id.
        m: MoveId,
        /// The moving client.
        client: ClientId,
        /// Source broker.
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
        /// The client's routing profile, reissued at the target.
        profile: ClientProfile,
        /// The client execution state.
        snapshot: ClientSnapshot,
    },
    /// Covering protocol: target → source completion. Routed.
    CovDone {
        /// Movement transaction id.
        m: MoveId,
        /// Source broker (the destination of this message).
        source: BrokerId,
        /// Target broker.
        target: BrokerId,
    },
}

impl MoveMsg {
    /// The movement id the message belongs to.
    pub fn move_id(&self) -> MoveId {
        match self {
            MoveMsg::Negotiate { m, .. }
            | MoveMsg::Reject { m, .. }
            | MoveMsg::Reconfigure { m, .. }
            | MoveMsg::StateTransfer { m, .. }
            | MoveMsg::Ack { m, .. }
            | MoveMsg::AbortMove { m, .. }
            | MoveMsg::CovRequest { m, .. }
            | MoveMsg::CovAccept { m, .. }
            | MoveMsg::CovTransfer { m, .. }
            | MoveMsg::CovDone { m, .. } => *m,
        }
    }

    /// The broker this message is ultimately travelling to.
    pub fn destination(&self) -> BrokerId {
        match self {
            MoveMsg::Negotiate { target, .. }
            | MoveMsg::CovRequest { target, .. }
            | MoveMsg::CovTransfer { target, .. }
            | MoveMsg::StateTransfer { target, .. } => *target,
            MoveMsg::Reject { source, .. }
            | MoveMsg::Ack { source, .. }
            | MoveMsg::CovAccept { source, .. }
            | MoveMsg::CovDone { source, .. }
            | MoveMsg::Reconfigure { source, .. } => *source,
            MoveMsg::AbortMove { toward, .. } => *toward,
        }
    }

    /// Whether the message is processed at every broker on the path
    /// (rather than only at its destination).
    pub fn is_hop_by_hop(&self) -> bool {
        matches!(
            self,
            MoveMsg::Reconfigure { .. } | MoveMsg::StateTransfer { .. } | MoveMsg::AbortMove { .. }
        )
    }
}

impl fmt::Display for MoveMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (name, m) = match self {
            MoveMsg::Negotiate { m, .. } => ("negotiate", m),
            MoveMsg::Reject { m, .. } => ("reject", m),
            MoveMsg::Reconfigure { m, .. } => ("reconfigure", m),
            MoveMsg::StateTransfer { m, .. } => ("state", m),
            MoveMsg::Ack { m, .. } => ("ack", m),
            MoveMsg::AbortMove { m, .. } => ("abort", m),
            MoveMsg::CovRequest { m, .. } => ("cov-request", m),
            MoveMsg::CovAccept { m, .. } => ("cov-accept", m),
            MoveMsg::CovTransfer { m, .. } => ("cov-transfer", m),
            MoveMsg::CovDone { m, .. } => ("cov-done", m),
        };
        write!(f, "{name}({m})")
    }
}

/// The unified message type a [`crate::MobileBroker`] exchanges with
/// its peers: routing-layer traffic plus movement control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Routing-layer message.
    PubSub(PubSubMsg),
    /// Movement-protocol message.
    Move(MoveMsg),
    /// Overlay-repair notice: `dead` has been declared permanently
    /// failed. Flooded over every surviving link; each receiver
    /// repairs its topology copy deterministically and re-floods, so
    /// processing is idempotent (a receiver that already repaired does
    /// nothing, which terminates the flood).
    BrokerDeath {
        /// The broker declared dead.
        dead: BrokerId,
    },
}

impl Message {
    /// Coarse kind for metrics.
    pub fn kind(&self) -> transmob_broker::MsgKind {
        match self {
            Message::PubSub(p) => p.kind(),
            Message::Move(_) | Message::BrokerDeath { .. } => transmob_broker::MsgKind::MoveCtl,
        }
    }
}

impl From<PubSubMsg> for Message {
    fn from(m: PubSubMsg) -> Self {
        Message::PubSub(m)
    }
}

impl From<MoveMsg> for Message {
    fn from(m: MoveMsg) -> Self {
        Message::Move(m)
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::PubSub(p) => write!(f, "{p}"),
            Message::Move(m) => write!(f, "{m}"),
            Message::BrokerDeath { dead } => write!(f, "broker-death({dead})"),
        }
    }
}

/// A timer a [`crate::MobileBroker`] asks its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerToken {
    /// The movement the timer belongs to.
    pub m: MoveId,
    /// What the timer guards.
    pub kind: TimerKind,
}

/// What a protocol timer guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// Source, `Wait`: no `approve`/`reject` arrived in time.
    Negotiate,
    /// Target, `Prepare`: no `state` arrived in time.
    State,
}

/// Effects produced by a [`crate::MobileBroker`]. The driver (the
/// discrete-event simulator or the threaded runtime) interprets them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Output {
    /// Send a message to a neighbouring broker.
    Send {
        /// Destination neighbour.
        to: BrokerId,
        /// The message.
        msg: Message,
    },
    /// Surface a notification to the application layer of a hosted
    /// client (already de-duplicated).
    DeliverToApp {
        /// The client.
        client: ClientId,
        /// The notification.
        publication: PublicationMsg,
    },
    /// Arm a timer; the driver calls
    /// [`crate::MobileBroker::handle_timer`] when it fires.
    SetTimer {
        /// The token to fire with.
        token: TimerToken,
        /// Delay in nanoseconds of driver time.
        delay_ns: u64,
    },
    /// Disarm a timer (firing it afterwards is tolerated).
    CancelTimer {
        /// The token.
        token: TimerToken,
    },
    /// A movement transaction finished from the *source* perspective.
    MoveFinished {
        /// Movement id.
        m: MoveId,
        /// The client that moved (or stayed).
        client: ClientId,
        /// `true` if the client now runs at the target; `false` if the
        /// movement aborted and the client resumed at the source.
        committed: bool,
    },
    /// The moving client started at the *target* broker.
    ClientArrived {
        /// Movement id.
        m: MoveId,
        /// The client.
        client: ClientId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_msg_destination_and_hop_kind() {
        let m = MoveId(1);
        let nego = MoveMsg::Negotiate {
            m,
            client: ClientId(1),
            source: BrokerId(1),
            target: BrokerId(5),
            profile: ClientProfile::default(),
            protocol: ProtocolKind::Reconfig,
        };
        assert_eq!(nego.destination(), BrokerId(5));
        assert!(!nego.is_hop_by_hop());
        let rec = MoveMsg::Reconfigure {
            m,
            client: ClientId(1),
            source: BrokerId(1),
            target: BrokerId(5),
            profile: ClientProfile::default(),
        };
        assert_eq!(rec.destination(), BrokerId(1));
        assert!(rec.is_hop_by_hop());
        assert_eq!(rec.move_id(), m);
    }

    #[test]
    fn message_kind_tags_move_ctl() {
        let msg: Message = MoveMsg::Ack {
            m: MoveId(2),
            source: BrokerId(1),
            target: BrokerId(2),
        }
        .into();
        assert_eq!(msg.kind(), transmob_broker::MsgKind::MoveCtl);
    }

    #[test]
    fn display_is_compact() {
        let msg = MoveMsg::Ack {
            m: MoveId(2),
            source: BrokerId(1),
            target: BrokerId(2),
        };
        assert_eq!(msg.to_string(), "ack(M2)");
    }
}
