//! Exhaustive model checking of the movement protocol's state
//! machines — the mechanized version of the paper's Fig. 5 and of the
//! two safety claims its proofs rest on:
//!
//! 1. every **final** global state has exactly one `Started` client
//!    copy and one `Clean` copy;
//! 2. every **reachable** global state has at most one `Started` copy.
//!
//! The model is the abstract protocol of Fig. 4: local coordinator and
//! client states at the source and target, plus the multiset of
//! coordinator-to-coordinator messages in flight. Messages are
//! delivered in any order (the network may reorder across the two
//! directions), which over-approximates the FIFO overlay — if the
//! invariants hold here, they hold in the implementation.
//!
//! With [`ExploreConfig::with_failures`], timeout-abort transitions are
//! added (the non-blocking 3PC variant) and the same invariants are
//! re-verified.
//!
//! With [`ExploreConfig::with_recovery`], crashes become *transient*:
//! the durability log preserves the coordinator state and the input
//! queue across the outage (messages addressed to a crashed container
//! are held, not lost), and a recovery transition rebuilds the client
//! copy from the logged coordinator state — the model of
//! `MobileBroker::recover` over a `DurabilityLog`. Each side may crash
//! at any point of the protocol, at most once per run (enough to cover
//! every crash point while keeping the graph finite), and the same two
//! safety claims plus progress are verified over the enlarged graph.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::states::{ClientState, SourceCoordState, TargetCoordState};

/// A coordinator-to-coordinator message of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoordMsg {
    /// (1) negotiate.
    Nego,
    /// (2) approve (the reconfiguration message).
    Approve,
    /// (3) reject.
    Reject,
    /// (4) state.
    State,
    /// (5) ack.
    Ack,
    /// Timeout-abort sweep (failure variant only).
    AbortToTarget,
    /// Timeout-abort sweep toward the source (failure variant only).
    AbortToSource,
}

impl fmt::Display for CoordMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoordMsg::Nego => "nego",
            CoordMsg::Approve => "approve",
            CoordMsg::Reject => "reject",
            CoordMsg::State => "state",
            CoordMsg::Ack => "ack",
            CoordMsg::AbortToTarget => "abort→T",
            CoordMsg::AbortToSource => "abort→S",
        };
        f.write_str(s)
    }
}

/// One global protocol state: the vector of local states plus the
/// in-flight messages (paper Sec. 4.2, "global state").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Global {
    /// Source coordinator state.
    pub src: SourceCoordState,
    /// Source client copy state.
    pub src_client: ClientState,
    /// Target coordinator state.
    pub tgt: TargetCoordState,
    /// Target client copy state.
    pub tgt_client: ClientState,
    /// In-flight messages (multiset).
    pub msgs: BTreeMap<CoordMsg, u8>,
    /// The source container (coordinator + client) has crashed.
    pub src_crashed: bool,
    /// The target container has crashed.
    pub tgt_crashed: bool,
    /// The source already crashed and recovered once (recovery
    /// variant; bounds the graph to one crash per side).
    pub src_recovered: bool,
    /// The target already crashed and recovered once.
    pub tgt_recovered: bool,
}

impl Global {
    /// The protocol's initial global state: a running client at the
    /// source, nothing at the target.
    pub fn initial() -> Self {
        Global {
            src: SourceCoordState::Init,
            src_client: ClientState::Started,
            tgt: TargetCoordState::Init,
            tgt_client: ClientState::Init,
            msgs: BTreeMap::new(),
            src_crashed: false,
            tgt_crashed: false,
            src_recovered: false,
            tgt_recovered: false,
        }
    }

    /// Whether either container crashed in this run.
    pub fn crashed(&self) -> bool {
        self.src_crashed || self.tgt_crashed
    }

    /// Number of `Started` client copies in this state.
    pub fn started_count(&self) -> usize {
        usize::from(self.src_client == ClientState::Started)
            + usize::from(self.tgt_client == ClientState::Started)
    }

    /// The coordinator-pair label as used in the paper's Fig. 5 (e.g.
    /// `"wS,pT"`).
    pub fn label(&self) -> String {
        let s = match self.src {
            SourceCoordState::Init => "i",
            SourceCoordState::Wait => "w",
            SourceCoordState::Prepare => "p",
            SourceCoordState::Abort => "a",
            SourceCoordState::Commit => "c",
        };
        let t = match self.tgt {
            TargetCoordState::Init => "i",
            TargetCoordState::Prepare => "p",
            TargetCoordState::Abort => "a",
            TargetCoordState::Commit => "c",
        };
        format!("{s}S,{t}T")
    }

    fn with_msg(mut self, m: CoordMsg) -> Self {
        *self.msgs.entry(m).or_insert(0) += 1;
        self
    }

    fn take_msg(&self, m: CoordMsg) -> Option<Self> {
        let n = *self.msgs.get(&m)?;
        let mut next = self.clone();
        if n == 1 {
            next.msgs.remove(&m);
        } else {
            next.msgs.insert(m, n - 1);
        }
        Some(next)
    }
}

/// Exploration options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreConfig {
    /// Whether the target may reject the client.
    pub allow_reject: bool,
    /// Whether timeout-abort transitions are enabled (non-blocking
    /// variant).
    pub with_failures: bool,
    /// Whether crashes are transient: a durability log holds the
    /// coordinator state and the pending input queue across the
    /// outage, and a recovery transition rebuilds the client copy
    /// from the logged coordinator state. Implies `with_failures`.
    pub with_recovery: bool,
}

impl ExploreConfig {
    /// The paper's Fig. 5 setting: rejection possible, no timeouts.
    pub fn fig5() -> Self {
        ExploreConfig {
            allow_reject: true,
            with_failures: false,
            with_recovery: false,
        }
    }

    /// Fail-stop crashes and timeouts, no recovery (a crashed
    /// container stays down and its messages are lost).
    pub fn failures() -> Self {
        ExploreConfig {
            allow_reject: true,
            with_failures: true,
            with_recovery: false,
        }
    }

    /// Crash–recovery setting: each side may crash at any protocol
    /// step and later restart from its durability log.
    pub fn recovery() -> Self {
        ExploreConfig {
            allow_reject: true,
            with_failures: true,
            with_recovery: true,
        }
    }
}

/// A labelled transition of the global graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Pre-state.
    pub from: Global,
    /// Transition label (message consumed or action taken).
    pub label: String,
    /// Post-state.
    pub to: Global,
}

/// The result of exploring the global state graph.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every reachable global state.
    pub states: BTreeSet<Global>,
    /// States with no outgoing transitions.
    pub finals: BTreeSet<Global>,
    /// The transition relation.
    pub edges: Vec<Edge>,
}

impl Exploration {
    /// Distinct coordinator-pair labels, Fig. 5 style.
    pub fn labels(&self) -> BTreeSet<String> {
        self.states.iter().map(Global::label).collect()
    }

    /// Verifies the paper's property (1): in a final global state,
    /// exactly one client copy is started and one is clean.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating final state.
    pub fn check_final_states(&self) -> Result<(), String> {
        for g in &self.finals {
            if g.crashed() {
                // The paper's atomicity claim (b) holds "barring an
                // unrecoverable crash failure"; crashed runs are only
                // subject to property (2).
                continue;
            }
            let started = g.started_count();
            let clean = usize::from(g.src_client == ClientState::Clean)
                + usize::from(g.tgt_client == ClientState::Clean)
                // A target copy that was never created counts as the
                // inert copy for an aborted/rejected movement.
                + usize::from(g.tgt_client == ClientState::Init);
            if started != 1 || clean != 1 {
                return Err(format!(
                    "final state {} has {started} started / {clean} clean copies ({:?},{:?})",
                    g.label(),
                    g.src_client,
                    g.tgt_client
                ));
            }
        }
        Ok(())
    }

    /// Verifies the paper's property (2): at most one started copy in
    /// every reachable state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating state.
    pub fn check_at_most_one_started(&self) -> Result<(), String> {
        for g in &self.states {
            if g.started_count() > 1 {
                return Err(format!("state {} has two started copies", g.label()));
            }
        }
        Ok(())
    }

    /// Verifies progress (liveness in the finite graph): every
    /// reachable state can still reach some final state — the protocol
    /// can never wedge itself in a live-lock component.
    ///
    /// # Errors
    ///
    /// Returns a description of the first stuck state.
    pub fn check_progress(&self) -> Result<(), String> {
        use std::collections::{BTreeMap, BTreeSet, VecDeque};
        // Reverse reachability from the finals.
        let mut reverse: BTreeMap<&Global, Vec<&Global>> = BTreeMap::new();
        for e in &self.edges {
            reverse.entry(&e.to).or_default().push(&e.from);
        }
        let mut can_finish: BTreeSet<&Global> = self.finals.iter().collect();
        let mut queue: VecDeque<&Global> = can_finish.iter().copied().collect();
        while let Some(g) = queue.pop_front() {
            if let Some(preds) = reverse.get(g) {
                for p in preds {
                    if can_finish.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        for g in &self.states {
            if !can_finish.contains(g) {
                return Err(format!(
                    "state {} ({:?}/{:?}, msgs {:?}) cannot reach a final state",
                    g.label(),
                    g.src_client,
                    g.tgt_client,
                    g.msgs
                ));
            }
        }
        Ok(())
    }

    /// Renders the coordinator-level graph in Graphviz DOT (the
    /// regenerated Fig. 5).
    pub fn to_dot(&self) -> String {
        let mut edges: BTreeSet<(String, String, String)> = BTreeSet::new();
        for e in &self.edges {
            let (a, b) = (e.from.label(), e.to.label());
            if a != b {
                edges.insert((a, e.label.clone(), b));
            }
        }
        let mut out = String::from("digraph fig5 {\n  rankdir=TB;\n");
        for (a, l, b) in edges {
            out.push_str(&format!("  \"{a}\" -> \"{b}\" [label=\"{l}\"];\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Explores the reachable global state graph by BFS.
pub fn explore(mut config: ExploreConfig) -> Exploration {
    // Recovery presupposes crashes.
    config.with_failures |= config.with_recovery;
    let mut states = BTreeSet::new();
    let mut edges = Vec::new();
    let mut queue = VecDeque::from([Global::initial()]);
    states.insert(Global::initial());
    while let Some(g) = queue.pop_front() {
        for (label, next) in successors(&g, config) {
            edges.push(Edge {
                from: g.clone(),
                label,
                to: next.clone(),
            });
            if states.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    let finals = states
        .iter()
        .filter(|g| successors(g, config).is_empty())
        .cloned()
        .collect();
    Exploration {
        states,
        finals,
        edges,
    }
}

/// Enabled transitions of a global state under the Fig. 4 machines.
fn successors(g: &Global, config: ExploreConfig) -> Vec<(String, Global)> {
    let mut out = Vec::new();
    if (g.src_crashed || g.tgt_crashed) && !config.with_recovery {
        // Crashed containers absorb messages addressed to them (the
        // messaging layer delivers into a dead queue). Under the
        // recovery variant the durable input queue holds them across
        // the outage instead, so these transitions are disabled there.
        if g.src_crashed {
            for m in [
                CoordMsg::Approve,
                CoordMsg::Reject,
                CoordMsg::Ack,
                CoordMsg::AbortToSource,
            ] {
                if let Some(next) = g.take_msg(m) {
                    out.push((format!("<{m}> (lost: src down)"), next));
                }
            }
        }
        if g.tgt_crashed {
            for m in [CoordMsg::Nego, CoordMsg::State, CoordMsg::AbortToTarget] {
                if let Some(next) = g.take_msg(m) {
                    out.push((format!("<{m}> (lost: tgt down)"), next));
                }
            }
        }
    }
    // Application issues `move` (only from the true initial state).
    if !g.src_crashed && g.src == SourceCoordState::Init && g.src_client == ClientState::Started {
        let mut next = g.clone();
        next.src = SourceCoordState::Wait;
        next.src_client = ClientState::PauseMove;
        out.push(("[move]/<nego>".to_owned(), next.with_msg(CoordMsg::Nego)));
    }
    // Target consumes nego.
    if !g.tgt_crashed && g.tgt == TargetCoordState::Init {
        if let Some(base) = g.take_msg(CoordMsg::Nego) {
            let mut accept = base.clone();
            accept.tgt = TargetCoordState::Prepare;
            accept.tgt_client = ClientState::Created;
            out.push((
                "<nego>/<approve>".to_owned(),
                accept.with_msg(CoordMsg::Approve),
            ));
            if config.allow_reject {
                let mut reject = base;
                reject.tgt = TargetCoordState::Abort;
                reject.tgt_client = ClientState::Clean;
                out.push((
                    "<nego>/<reject>".to_owned(),
                    reject.with_msg(CoordMsg::Reject),
                ));
            }
        }
    }
    // Source consumes approve.
    if !g.src_crashed && g.src == SourceCoordState::Wait {
        if let Some(base) = g.take_msg(CoordMsg::Approve) {
            let mut next = base;
            next.src = SourceCoordState::Prepare;
            next.src_client = ClientState::PrepareStop;
            out.push((
                "<approve>/<state>".to_owned(),
                next.with_msg(CoordMsg::State),
            ));
        }
        if let Some(base) = g.take_msg(CoordMsg::Reject) {
            let mut next = base;
            next.src = SourceCoordState::Abort;
            next.src_client = ClientState::Started;
            out.push(("<reject>".to_owned(), next));
        }
    }
    // Target consumes state.
    if !g.tgt_crashed && g.tgt == TargetCoordState::Prepare {
        if let Some(base) = g.take_msg(CoordMsg::State) {
            let mut next = base;
            next.tgt = TargetCoordState::Commit;
            next.tgt_client = ClientState::Started;
            out.push(("<state>/<ack>".to_owned(), next.with_msg(CoordMsg::Ack)));
        }
    }
    // Source consumes ack.
    if !g.src_crashed && g.src == SourceCoordState::Prepare {
        if let Some(base) = g.take_msg(CoordMsg::Ack) {
            let mut next = base;
            next.src = SourceCoordState::Commit;
            next.src_client = ClientState::Clean;
            out.push(("<ack>".to_owned(), next));
        }
    }
    if config.with_failures {
        // Crash failures: a container (coordinator + its client copy —
        // they fail together, Sec. 4.1) can crash mid-protocol. In the
        // fail-stop variant only the windows where a crash is
        // interesting are modelled; in the recovery variant a side may
        // crash at *any* coordinator state, at most once per run.
        let src_crash_window = if config.with_recovery {
            !g.src_recovered
        } else {
            matches!(g.src, SourceCoordState::Wait | SourceCoordState::Prepare)
        };
        if !g.src_crashed && src_crash_window {
            let mut next = g.clone();
            next.src_crashed = true;
            next.src_client = ClientState::Clean;
            out.push(("src crash".to_owned(), next));
        }
        let tgt_crash_window = if config.with_recovery {
            !g.tgt_recovered
        } else {
            g.tgt == TargetCoordState::Prepare
        };
        if !g.tgt_crashed && tgt_crash_window {
            let mut next = g.clone();
            next.tgt_crashed = true;
            next.tgt_client = ClientState::Clean;
            out.push(("tgt crash".to_owned(), next));
        }
        if config.with_recovery {
            // Restart from the durability log: the coordinator state
            // survives (every input was logged before it was applied),
            // and the client copy is rebuilt to the state the
            // coordinator's phase implies — `MobileBroker::recover`.
            if g.src_crashed {
                let mut next = g.clone();
                next.src_crashed = false;
                next.src_recovered = true;
                next.src_client = match g.src {
                    SourceCoordState::Init | SourceCoordState::Abort => ClientState::Started,
                    SourceCoordState::Wait => ClientState::PauseMove,
                    SourceCoordState::Prepare => ClientState::PrepareStop,
                    SourceCoordState::Commit => ClientState::Clean,
                };
                out.push(("src recover".to_owned(), next));
            }
            if g.tgt_crashed {
                let mut next = g.clone();
                next.tgt_crashed = false;
                next.tgt_recovered = true;
                next.tgt_client = match g.tgt {
                    TargetCoordState::Init => ClientState::Init,
                    TargetCoordState::Prepare => ClientState::Created,
                    TargetCoordState::Abort => ClientState::Clean,
                    TargetCoordState::Commit => ClientState::Started,
                };
                out.push(("tgt recover".to_owned(), next));
            }
        }
        // The source-side negotiate timeout is safe even when spurious
        // (nothing has been committed yet), so the model lets it fire
        // whenever the source is still waiting — this is how the
        // paper's Fig. 5 reaches the (aS,pT) global state. Late
        // replies are absorbed by the aborted source below.
        if !g.src_crashed && g.src == SourceCoordState::Wait {
            let mut next = g.clone();
            next.src = SourceCoordState::Abort;
            next.src_client = ClientState::Started;
            out.push((
                "timeout/<abort>".to_owned(),
                next.with_msg(CoordMsg::AbortToTarget),
            ));
        }
        // The target's state timer is always armed in the
        // implementation; the fail-stop model only lets it fire when
        // the source is down (which keeps the Fig. 5-plus-crashes
        // graph tight), but under recovery the source may be back up
        // by the time the timer expires, so it may fire whenever no
        // state transfer is on the wire — e.g. after the source
        // aborted from Wait while the target's accept was in flight,
        // which would otherwise wedge the prepared copy forever.
        let tgt_timer_may_fire = if config.with_recovery {
            true
        } else {
            g.src_crashed
        };
        if !g.tgt_crashed
            && g.tgt == TargetCoordState::Prepare
            && tgt_timer_may_fire
            && !g.msgs.contains_key(&CoordMsg::State)
        {
            let mut next = g.clone();
            next.tgt = TargetCoordState::Abort;
            next.tgt_client = ClientState::Clean;
            out.push((
                "timeout/<abort>".to_owned(),
                next.with_msg(CoordMsg::AbortToSource),
            ));
        }
        // Live receivers consume abort sweeps.
        if !g.tgt_crashed {
            if let Some(base) = g.take_msg(CoordMsg::AbortToTarget) {
                if g.tgt == TargetCoordState::Prepare {
                    let mut next = base;
                    next.tgt = TargetCoordState::Abort;
                    next.tgt_client = ClientState::Clean;
                    out.push(("<abort>".to_owned(), next));
                } else {
                    out.push(("<abort> (absorbed)".to_owned(), base));
                }
            }
        }
        if !g.src_crashed {
            if let Some(base) = g.take_msg(CoordMsg::AbortToSource) {
                if g.src == SourceCoordState::Wait
                    || (config.with_recovery && g.src == SourceCoordState::Prepare)
                {
                    // The implementation's abort handler also resumes a
                    // *prepared* source (the target timed out and will
                    // never commit, so resuming is safe). That pairing
                    // is only reachable once crashes are transient: the
                    // target times out while the source is down, then
                    // the source recovers into Prepare via the held
                    // approve.
                    let mut next = base;
                    next.src = SourceCoordState::Abort;
                    next.src_client = ClientState::Started;
                    out.push(("<abort>".to_owned(), next));
                } else {
                    out.push(("<abort> (absorbed)".to_owned(), base));
                }
            }
        }
        // An aborted source ignores (absorbs) late replies, matching
        // the implementation's tolerant handlers.
        if !g.src_crashed && g.src == SourceCoordState::Abort {
            for m in [CoordMsg::Approve, CoordMsg::Reject, CoordMsg::Ack] {
                if let Some(base) = g.take_msg(m) {
                    out.push((format!("<{m}> (late, ignored)"), base));
                }
            }
        }
        // An aborted target likewise ignores a late state transfer.
        if !g.tgt_crashed && g.tgt == TargetCoordState::Abort {
            if let Some(base) = g.take_msg(CoordMsg::State) {
                out.push(("<state> (late, ignored)".to_owned(), base));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reachable_graph_matches_paper() {
        let ex = explore(ExploreConfig::fig5());
        // The paper's Fig. 5 shows exactly these coordinator-pair
        // labels.
        let expected: BTreeSet<String> = [
            "iS,iT", "wS,iT", "wS,pT", "wS,aT", "aS,aT", "pS,pT", "pS,cT", "cS,cT",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        assert_eq!(ex.labels(), expected);
    }

    #[test]
    fn fig5_final_states_are_commit_or_abort() {
        let ex = explore(ExploreConfig::fig5());
        let final_labels: BTreeSet<String> = ex.finals.iter().map(Global::label).collect();
        let expected: BTreeSet<String> =
            ["cS,cT", "aS,aT"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(final_labels, expected);
    }

    #[test]
    fn paper_property_1_exactly_one_started_and_clean_in_finals() {
        let ex = explore(ExploreConfig::fig5());
        ex.check_final_states().unwrap();
    }

    #[test]
    fn paper_property_2_at_most_one_started_everywhere() {
        let ex = explore(ExploreConfig::fig5());
        ex.check_at_most_one_started().unwrap();
    }

    #[test]
    fn invariants_hold_under_timeout_failures() {
        let ex = explore(ExploreConfig::failures());
        ex.check_at_most_one_started().unwrap();
        ex.check_final_states().unwrap();
        // The failure variant reaches strictly more states.
        let plain = explore(ExploreConfig::fig5());
        assert!(ex.states.len() > plain.states.len());
    }

    #[test]
    fn happy_path_without_reject_reaches_only_commit() {
        let ex = explore(ExploreConfig {
            allow_reject: false,
            ..ExploreConfig::fig5()
        });
        let finals: BTreeSet<String> = ex.finals.iter().map(Global::label).collect();
        assert_eq!(finals.len(), 1);
        assert!(finals.contains("cS,cT"));
    }

    #[test]
    fn protocol_always_makes_progress() {
        explore(ExploreConfig::fig5()).check_progress().unwrap();
        explore(ExploreConfig {
            allow_reject: false,
            ..ExploreConfig::fig5()
        })
        .check_progress()
        .unwrap();
        explore(ExploreConfig::failures()).check_progress().unwrap();
    }

    #[test]
    fn dot_export_mentions_all_labels() {
        let ex = explore(ExploreConfig::fig5());
        let dot = ex.to_dot();
        for l in ex.labels() {
            assert!(dot.contains(&l), "missing {l} in dot output");
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn state_space_is_small_and_finite() {
        let ex = explore(ExploreConfig::failures());
        assert!(
            ex.states.len() < 100,
            "unexpected blow-up: {}",
            ex.states.len()
        );
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;

    #[test]
    fn crash_recover_at_every_step_preserves_both_safety_properties() {
        let ex = explore(ExploreConfig::recovery());
        ex.check_at_most_one_started().unwrap();
        ex.check_final_states().unwrap();
        // Transient crashes reach strictly more states than fail-stop
        // (each side can now crash at any coordinator state and come
        // back while its messages are held).
        let fail_stop = explore(ExploreConfig::failures());
        assert!(ex.states.len() > fail_stop.states.len());
    }

    #[test]
    fn every_crashed_run_recovers_to_a_live_commit_or_abort() {
        // The crash-recovery headline: no final state is crashed, and
        // the only outcomes are the same clean commit/abort pair as in
        // the failure-free graph — an outage never wedges the
        // transaction or invents a third outcome.
        let ex = explore(ExploreConfig::recovery());
        assert!(ex.finals.iter().all(|g| !g.crashed()));
        let final_labels: BTreeSet<String> = ex.finals.iter().map(Global::label).collect();
        let expected: BTreeSet<String> =
            ["cS,cT", "aS,aT"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(final_labels, expected);
    }

    #[test]
    fn recovered_runs_can_still_commit() {
        // Recovery is not merely abort-safe: there are committed finals
        // in which each side crashed mid-protocol and restarted.
        let ex = explore(ExploreConfig::recovery());
        let committed_after = |src_side: bool| {
            ex.finals.iter().any(|g| {
                g.label() == "cS,cT"
                    && if src_side {
                        g.src_recovered
                    } else {
                        g.tgt_recovered
                    }
            })
        };
        assert!(committed_after(true), "no commit after a source restart");
        assert!(committed_after(false), "no commit after a target restart");
    }

    #[test]
    fn recovery_graph_makes_progress_and_stays_finite() {
        let ex = explore(ExploreConfig::recovery());
        ex.check_progress().unwrap();
        assert!(
            ex.states.len() < 2000,
            "unexpected blow-up: {}",
            ex.states.len()
        );
    }

    #[test]
    fn with_recovery_implies_with_failures() {
        // A recovery exploration with the failure flag left unset must
        // behave identically to the canonical recovery config.
        let implicit = explore(ExploreConfig {
            allow_reject: true,
            with_failures: false,
            with_recovery: true,
        });
        let explicit = explore(ExploreConfig::recovery());
        assert_eq!(implicit.states, explicit.states);
    }
}

#[cfg(test)]
mod label_tests {
    use super::*;

    #[test]
    fn abort_while_target_prepared_reachable_with_timeouts() {
        // The paper's Fig. 5 includes the (aS,pT) global state, reached
        // when the source aborts while the target is prepared. In this
        // model that requires the timeout transitions (the base
        // exploration aborts only via explicit rejection).
        let ex = explore(ExploreConfig::failures());
        assert!(
            ex.labels().contains("aS,pT"),
            "missing the paper's aS,pT state: {:?}",
            ex.labels()
        );
    }
}
