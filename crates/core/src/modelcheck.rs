//! Exhaustive model checking of the movement protocol's state
//! machines — the mechanized version of the paper's Fig. 5 and of the
//! two safety claims its proofs rest on:
//!
//! 1. every **final** global state has exactly one `Started` client
//!    copy and one `Clean` copy;
//! 2. every **reachable** global state has at most one `Started` copy.
//!
//! The model is the abstract protocol of Fig. 4: local coordinator and
//! client states at the source and target, plus the multiset of
//! coordinator-to-coordinator messages in flight. Messages are
//! delivered in any order (the network may reorder across the two
//! directions), which over-approximates the FIFO overlay — if the
//! invariants hold here, they hold in the implementation.
//!
//! With [`ExploreConfig::with_failures`], timeout-abort transitions are
//! added (the non-blocking 3PC variant) and the same invariants are
//! re-verified.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::states::{ClientState, SourceCoordState, TargetCoordState};

/// A coordinator-to-coordinator message of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoordMsg {
    /// (1) negotiate.
    Nego,
    /// (2) approve (the reconfiguration message).
    Approve,
    /// (3) reject.
    Reject,
    /// (4) state.
    State,
    /// (5) ack.
    Ack,
    /// Timeout-abort sweep (failure variant only).
    AbortToTarget,
    /// Timeout-abort sweep toward the source (failure variant only).
    AbortToSource,
}

impl fmt::Display for CoordMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoordMsg::Nego => "nego",
            CoordMsg::Approve => "approve",
            CoordMsg::Reject => "reject",
            CoordMsg::State => "state",
            CoordMsg::Ack => "ack",
            CoordMsg::AbortToTarget => "abort→T",
            CoordMsg::AbortToSource => "abort→S",
        };
        f.write_str(s)
    }
}

/// One global protocol state: the vector of local states plus the
/// in-flight messages (paper Sec. 4.2, "global state").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Global {
    /// Source coordinator state.
    pub src: SourceCoordState,
    /// Source client copy state.
    pub src_client: ClientState,
    /// Target coordinator state.
    pub tgt: TargetCoordState,
    /// Target client copy state.
    pub tgt_client: ClientState,
    /// In-flight messages (multiset).
    pub msgs: BTreeMap<CoordMsg, u8>,
    /// The source container (coordinator + client) has crashed.
    pub src_crashed: bool,
    /// The target container has crashed.
    pub tgt_crashed: bool,
}

impl Global {
    /// The protocol's initial global state: a running client at the
    /// source, nothing at the target.
    pub fn initial() -> Self {
        Global {
            src: SourceCoordState::Init,
            src_client: ClientState::Started,
            tgt: TargetCoordState::Init,
            tgt_client: ClientState::Init,
            msgs: BTreeMap::new(),
            src_crashed: false,
            tgt_crashed: false,
        }
    }

    /// Whether either container crashed in this run.
    pub fn crashed(&self) -> bool {
        self.src_crashed || self.tgt_crashed
    }

    /// Number of `Started` client copies in this state.
    pub fn started_count(&self) -> usize {
        usize::from(self.src_client == ClientState::Started)
            + usize::from(self.tgt_client == ClientState::Started)
    }

    /// The coordinator-pair label as used in the paper's Fig. 5 (e.g.
    /// `"wS,pT"`).
    pub fn label(&self) -> String {
        let s = match self.src {
            SourceCoordState::Init => "i",
            SourceCoordState::Wait => "w",
            SourceCoordState::Prepare => "p",
            SourceCoordState::Abort => "a",
            SourceCoordState::Commit => "c",
        };
        let t = match self.tgt {
            TargetCoordState::Init => "i",
            TargetCoordState::Prepare => "p",
            TargetCoordState::Abort => "a",
            TargetCoordState::Commit => "c",
        };
        format!("{s}S,{t}T")
    }

    fn with_msg(mut self, m: CoordMsg) -> Self {
        *self.msgs.entry(m).or_insert(0) += 1;
        self
    }

    fn take_msg(&self, m: CoordMsg) -> Option<Self> {
        let n = *self.msgs.get(&m)?;
        let mut next = self.clone();
        if n == 1 {
            next.msgs.remove(&m);
        } else {
            next.msgs.insert(m, n - 1);
        }
        Some(next)
    }
}

/// Exploration options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreConfig {
    /// Whether the target may reject the client.
    pub allow_reject: bool,
    /// Whether timeout-abort transitions are enabled (non-blocking
    /// variant).
    pub with_failures: bool,
}

impl ExploreConfig {
    /// The paper's Fig. 5 setting: rejection possible, no timeouts.
    pub fn fig5() -> Self {
        ExploreConfig {
            allow_reject: true,
            with_failures: false,
        }
    }
}

/// A labelled transition of the global graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Pre-state.
    pub from: Global,
    /// Transition label (message consumed or action taken).
    pub label: String,
    /// Post-state.
    pub to: Global,
}

/// The result of exploring the global state graph.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every reachable global state.
    pub states: BTreeSet<Global>,
    /// States with no outgoing transitions.
    pub finals: BTreeSet<Global>,
    /// The transition relation.
    pub edges: Vec<Edge>,
}

impl Exploration {
    /// Distinct coordinator-pair labels, Fig. 5 style.
    pub fn labels(&self) -> BTreeSet<String> {
        self.states.iter().map(Global::label).collect()
    }

    /// Verifies the paper's property (1): in a final global state,
    /// exactly one client copy is started and one is clean.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating final state.
    pub fn check_final_states(&self) -> Result<(), String> {
        for g in &self.finals {
            if g.crashed() {
                // The paper's atomicity claim (b) holds "barring an
                // unrecoverable crash failure"; crashed runs are only
                // subject to property (2).
                continue;
            }
            let started = g.started_count();
            let clean = usize::from(g.src_client == ClientState::Clean)
                + usize::from(g.tgt_client == ClientState::Clean)
                // A target copy that was never created counts as the
                // inert copy for an aborted/rejected movement.
                + usize::from(g.tgt_client == ClientState::Init);
            if started != 1 || clean != 1 {
                return Err(format!(
                    "final state {} has {started} started / {clean} clean copies ({:?},{:?})",
                    g.label(),
                    g.src_client,
                    g.tgt_client
                ));
            }
        }
        Ok(())
    }

    /// Verifies the paper's property (2): at most one started copy in
    /// every reachable state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating state.
    pub fn check_at_most_one_started(&self) -> Result<(), String> {
        for g in &self.states {
            if g.started_count() > 1 {
                return Err(format!("state {} has two started copies", g.label()));
            }
        }
        Ok(())
    }

    /// Verifies progress (liveness in the finite graph): every
    /// reachable state can still reach some final state — the protocol
    /// can never wedge itself in a live-lock component.
    ///
    /// # Errors
    ///
    /// Returns a description of the first stuck state.
    pub fn check_progress(&self) -> Result<(), String> {
        use std::collections::{BTreeMap, BTreeSet, VecDeque};
        // Reverse reachability from the finals.
        let mut reverse: BTreeMap<&Global, Vec<&Global>> = BTreeMap::new();
        for e in &self.edges {
            reverse.entry(&e.to).or_default().push(&e.from);
        }
        let mut can_finish: BTreeSet<&Global> = self.finals.iter().collect();
        let mut queue: VecDeque<&Global> = can_finish.iter().copied().collect();
        while let Some(g) = queue.pop_front() {
            if let Some(preds) = reverse.get(g) {
                for p in preds {
                    if can_finish.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        for g in &self.states {
            if !can_finish.contains(g) {
                return Err(format!(
                    "state {} ({:?}/{:?}, msgs {:?}) cannot reach a final state",
                    g.label(),
                    g.src_client,
                    g.tgt_client,
                    g.msgs
                ));
            }
        }
        Ok(())
    }

    /// Renders the coordinator-level graph in Graphviz DOT (the
    /// regenerated Fig. 5).
    pub fn to_dot(&self) -> String {
        let mut edges: BTreeSet<(String, String, String)> = BTreeSet::new();
        for e in &self.edges {
            let (a, b) = (e.from.label(), e.to.label());
            if a != b {
                edges.insert((a, e.label.clone(), b));
            }
        }
        let mut out = String::from("digraph fig5 {\n  rankdir=TB;\n");
        for (a, l, b) in edges {
            out.push_str(&format!("  \"{a}\" -> \"{b}\" [label=\"{l}\"];\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Explores the reachable global state graph by BFS.
pub fn explore(config: ExploreConfig) -> Exploration {
    let mut states = BTreeSet::new();
    let mut edges = Vec::new();
    let mut queue = VecDeque::from([Global::initial()]);
    states.insert(Global::initial());
    while let Some(g) = queue.pop_front() {
        for (label, next) in successors(&g, config) {
            edges.push(Edge {
                from: g.clone(),
                label,
                to: next.clone(),
            });
            if states.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    let finals = states
        .iter()
        .filter(|g| successors(g, config).is_empty())
        .cloned()
        .collect();
    Exploration {
        states,
        finals,
        edges,
    }
}

/// Enabled transitions of a global state under the Fig. 4 machines.
fn successors(g: &Global, config: ExploreConfig) -> Vec<(String, Global)> {
    let mut out = Vec::new();
    if g.src_crashed || g.tgt_crashed {
        // Crashed containers absorb messages addressed to them (the
        // messaging layer delivers into a dead queue).
        if g.src_crashed {
            for m in [
                CoordMsg::Approve,
                CoordMsg::Reject,
                CoordMsg::Ack,
                CoordMsg::AbortToSource,
            ] {
                if let Some(next) = g.take_msg(m) {
                    out.push((format!("<{m}> (lost: src down)"), next));
                }
            }
        }
        if g.tgt_crashed {
            for m in [CoordMsg::Nego, CoordMsg::State, CoordMsg::AbortToTarget] {
                if let Some(next) = g.take_msg(m) {
                    out.push((format!("<{m}> (lost: tgt down)"), next));
                }
            }
        }
    }
    // Application issues `move` (only from the true initial state).
    if !g.src_crashed && g.src == SourceCoordState::Init && g.src_client == ClientState::Started {
        let mut next = g.clone();
        next.src = SourceCoordState::Wait;
        next.src_client = ClientState::PauseMove;
        out.push(("[move]/<nego>".to_owned(), next.with_msg(CoordMsg::Nego)));
    }
    // Target consumes nego.
    if !g.tgt_crashed && g.tgt == TargetCoordState::Init {
        if let Some(base) = g.take_msg(CoordMsg::Nego) {
            let mut accept = base.clone();
            accept.tgt = TargetCoordState::Prepare;
            accept.tgt_client = ClientState::Created;
            out.push((
                "<nego>/<approve>".to_owned(),
                accept.with_msg(CoordMsg::Approve),
            ));
            if config.allow_reject {
                let mut reject = base;
                reject.tgt = TargetCoordState::Abort;
                reject.tgt_client = ClientState::Clean;
                out.push((
                    "<nego>/<reject>".to_owned(),
                    reject.with_msg(CoordMsg::Reject),
                ));
            }
        }
    }
    // Source consumes approve.
    if !g.src_crashed && g.src == SourceCoordState::Wait {
        if let Some(base) = g.take_msg(CoordMsg::Approve) {
            let mut next = base;
            next.src = SourceCoordState::Prepare;
            next.src_client = ClientState::PrepareStop;
            out.push((
                "<approve>/<state>".to_owned(),
                next.with_msg(CoordMsg::State),
            ));
        }
        if let Some(base) = g.take_msg(CoordMsg::Reject) {
            let mut next = base;
            next.src = SourceCoordState::Abort;
            next.src_client = ClientState::Started;
            out.push(("<reject>".to_owned(), next));
        }
    }
    // Target consumes state.
    if !g.tgt_crashed && g.tgt == TargetCoordState::Prepare {
        if let Some(base) = g.take_msg(CoordMsg::State) {
            let mut next = base;
            next.tgt = TargetCoordState::Commit;
            next.tgt_client = ClientState::Started;
            out.push(("<state>/<ack>".to_owned(), next.with_msg(CoordMsg::Ack)));
        }
    }
    // Source consumes ack.
    if !g.src_crashed && g.src == SourceCoordState::Prepare {
        if let Some(base) = g.take_msg(CoordMsg::Ack) {
            let mut next = base;
            next.src = SourceCoordState::Commit;
            next.src_client = ClientState::Clean;
            out.push(("<ack>".to_owned(), next));
        }
    }
    if config.with_failures {
        // Crash failures: a container (coordinator + its client copy —
        // they fail together, Sec. 4.1) can crash mid-protocol.
        if !g.src_crashed && matches!(g.src, SourceCoordState::Wait | SourceCoordState::Prepare) {
            let mut next = g.clone();
            next.src_crashed = true;
            next.src_client = ClientState::Clean;
            out.push(("src crash".to_owned(), next));
        }
        if !g.tgt_crashed && g.tgt == TargetCoordState::Prepare {
            let mut next = g.clone();
            next.tgt_crashed = true;
            next.tgt_client = ClientState::Clean;
            out.push(("tgt crash".to_owned(), next));
        }
        // The source-side negotiate timeout is safe even when spurious
        // (nothing has been committed yet), so the model lets it fire
        // whenever the source is still waiting — this is how the
        // paper's Fig. 5 reaches the (aS,pT) global state. Late
        // replies are absorbed by the aborted source below.
        if !g.src_crashed && g.src == SourceCoordState::Wait {
            let mut next = g.clone();
            next.src = SourceCoordState::Abort;
            next.src_client = ClientState::Started;
            out.push((
                "timeout/<abort>".to_owned(),
                next.with_msg(CoordMsg::AbortToTarget),
            ));
        }
        if !g.tgt_crashed
            && g.tgt == TargetCoordState::Prepare
            && g.src_crashed
            && !g.msgs.contains_key(&CoordMsg::State)
        {
            let mut next = g.clone();
            next.tgt = TargetCoordState::Abort;
            next.tgt_client = ClientState::Clean;
            out.push((
                "timeout/<abort>".to_owned(),
                next.with_msg(CoordMsg::AbortToSource),
            ));
        }
        // Live receivers consume abort sweeps.
        if !g.tgt_crashed {
            if let Some(base) = g.take_msg(CoordMsg::AbortToTarget) {
                if g.tgt == TargetCoordState::Prepare {
                    let mut next = base;
                    next.tgt = TargetCoordState::Abort;
                    next.tgt_client = ClientState::Clean;
                    out.push(("<abort>".to_owned(), next));
                } else {
                    out.push(("<abort> (absorbed)".to_owned(), base));
                }
            }
        }
        if !g.src_crashed {
            if let Some(base) = g.take_msg(CoordMsg::AbortToSource) {
                if g.src == SourceCoordState::Wait {
                    let mut next = base;
                    next.src = SourceCoordState::Abort;
                    next.src_client = ClientState::Started;
                    out.push(("<abort>".to_owned(), next));
                } else {
                    out.push(("<abort> (absorbed)".to_owned(), base));
                }
            }
        }
        // An aborted source ignores (absorbs) late replies, matching
        // the implementation's tolerant handlers.
        if !g.src_crashed && g.src == SourceCoordState::Abort {
            for m in [CoordMsg::Approve, CoordMsg::Reject, CoordMsg::Ack] {
                if let Some(base) = g.take_msg(m) {
                    out.push((format!("<{m}> (late, ignored)"), base));
                }
            }
        }
        // An aborted target likewise ignores a late state transfer.
        if !g.tgt_crashed && g.tgt == TargetCoordState::Abort {
            if let Some(base) = g.take_msg(CoordMsg::State) {
                out.push(("<state> (late, ignored)".to_owned(), base));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reachable_graph_matches_paper() {
        let ex = explore(ExploreConfig::fig5());
        // The paper's Fig. 5 shows exactly these coordinator-pair
        // labels.
        let expected: BTreeSet<String> = [
            "iS,iT", "wS,iT", "wS,pT", "wS,aT", "aS,aT", "pS,pT", "pS,cT", "cS,cT",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        assert_eq!(ex.labels(), expected);
    }

    #[test]
    fn fig5_final_states_are_commit_or_abort() {
        let ex = explore(ExploreConfig::fig5());
        let final_labels: BTreeSet<String> = ex.finals.iter().map(Global::label).collect();
        let expected: BTreeSet<String> =
            ["cS,cT", "aS,aT"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(final_labels, expected);
    }

    #[test]
    fn paper_property_1_exactly_one_started_and_clean_in_finals() {
        let ex = explore(ExploreConfig::fig5());
        ex.check_final_states().unwrap();
    }

    #[test]
    fn paper_property_2_at_most_one_started_everywhere() {
        let ex = explore(ExploreConfig::fig5());
        ex.check_at_most_one_started().unwrap();
    }

    #[test]
    fn invariants_hold_under_timeout_failures() {
        let ex = explore(ExploreConfig {
            allow_reject: true,
            with_failures: true,
        });
        ex.check_at_most_one_started().unwrap();
        ex.check_final_states().unwrap();
        // The failure variant reaches strictly more states.
        let plain = explore(ExploreConfig::fig5());
        assert!(ex.states.len() > plain.states.len());
    }

    #[test]
    fn happy_path_without_reject_reaches_only_commit() {
        let ex = explore(ExploreConfig {
            allow_reject: false,
            with_failures: false,
        });
        let finals: BTreeSet<String> = ex.finals.iter().map(Global::label).collect();
        assert_eq!(finals.len(), 1);
        assert!(finals.contains("cS,cT"));
    }

    #[test]
    fn protocol_always_makes_progress() {
        explore(ExploreConfig::fig5()).check_progress().unwrap();
        explore(ExploreConfig {
            allow_reject: false,
            with_failures: false,
        })
        .check_progress()
        .unwrap();
        explore(ExploreConfig {
            allow_reject: true,
            with_failures: true,
        })
        .check_progress()
        .unwrap();
    }

    #[test]
    fn dot_export_mentions_all_labels() {
        let ex = explore(ExploreConfig::fig5());
        let dot = ex.to_dot();
        for l in ex.labels() {
            assert!(dot.contains(&l), "missing {l} in dot output");
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn state_space_is_small_and_finite() {
        let ex = explore(ExploreConfig {
            allow_reject: true,
            with_failures: true,
        });
        assert!(
            ex.states.len() < 100,
            "unexpected blow-up: {}",
            ex.states.len()
        );
    }
}

#[cfg(test)]
mod label_tests {
    use super::*;

    #[test]
    fn abort_while_target_prepared_reachable_with_timeouts() {
        // The paper's Fig. 5 includes the (aS,pT) global state, reached
        // when the source aborts while the target is prepared. In this
        // model that requires the timeout transitions (the base
        // exploration aborts only via explicit rejection).
        let ex = explore(ExploreConfig {
            allow_reject: true,
            with_failures: true,
        });
        assert!(
            ex.labels().contains("aS,pT"),
            "missing the paper's aS,pT state: {:?}",
            ex.labels()
        );
    }
}
