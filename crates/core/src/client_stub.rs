//! The pub/sub stub layer of a client (paper Sec. 3.2), hosted inside
//! a broker's *mobile container*.
//!
//! The stub tracks the client's state-machine state (Fig. 4), its
//! pub/sub profile, the notifications buffered while it is not
//! running, the exactly-once dedup set, and the application commands
//! queued during movement. The stub is pure data + transitions; the
//! protocol logic that drives it lives in [`crate::MobileBroker`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};
use transmob_pubsub::{
    AdvId, Advertisement, ClientId, Filter, PubId, PublicationMsg, SubId, Subscription,
};

use crate::messages::{ClientOp, ClientProfile, ClientSnapshot};
use crate::states::ClientState;

/// What happened to a notification handed to the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverOutcome {
    /// Surfaced to the application (first delivery, client running).
    Surfaced,
    /// Buffered (client paused/created); will be surfaced on start.
    Buffered,
    /// Dropped as a duplicate (already surfaced or already buffered).
    Duplicate,
}

/// A client's pub/sub stub as hosted by a broker's mobile container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostedClient {
    id: ClientId,
    state: ClientState,
    subs: BTreeMap<u32, Subscription>,
    advs: BTreeMap<u32, Advertisement>,
    next_sub_seq: u32,
    next_adv_seq: u32,
    next_pub_seq: u32,
    buffered: Vec<PublicationMsg>,
    buffered_ids: BTreeSet<PubId>,
    seen: BTreeSet<PubId>,
    queued_ops: VecDeque<ClientOp>,
    /// Notifications surfaced to the application, in order (the
    /// N_i(·) streams of the paper's Sec. 3.4; consumed by the
    /// property checkers and by `take_app_inbox`).
    app_inbox: Vec<PublicationMsg>,
}

impl HostedClient {
    /// Creates a fresh, running client (attach-and-start).
    pub fn started(id: ClientId) -> Self {
        HostedClient {
            id,
            state: ClientState::Started,
            subs: BTreeMap::new(),
            advs: BTreeMap::new(),
            next_sub_seq: 0,
            next_adv_seq: 0,
            next_pub_seq: 0,
            buffered: Vec::new(),
            buffered_ids: BTreeSet::new(),
            seen: BTreeSet::new(),
            queued_ops: VecDeque::new(),
            app_inbox: Vec::new(),
        }
    }

    /// Creates the *target copy* of a moving client from its routing
    /// profile (state `Created`; execution state arrives later with
    /// the snapshot).
    pub fn created_from_profile(id: ClientId, profile: &ClientProfile) -> Self {
        let mut c = HostedClient::started(id);
        c.state = ClientState::Created;
        for s in &profile.subs {
            c.subs.insert(s.id.seq, s.clone());
        }
        for a in &profile.advs {
            c.advs.insert(a.id.seq, a.clone());
        }
        c
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Current state-machine state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Forces a state transition (protocol driver use).
    pub fn set_state(&mut self, s: ClientState) {
        self.state = s;
    }

    /// The client's current routing profile.
    pub fn profile(&self) -> ClientProfile {
        ClientProfile {
            subs: self.subs.values().cloned().collect(),
            advs: self.advs.values().cloned().collect(),
        }
    }

    /// Captures the transferable execution state (paper message (4)),
    /// draining the buffer.
    pub fn take_snapshot(&mut self) -> ClientSnapshot {
        let buffered = std::mem::take(&mut self.buffered);
        self.buffered_ids.clear();
        ClientSnapshot {
            buffered,
            seen: self.seen.iter().copied().collect(),
            queued_ops: std::mem::take(&mut self.queued_ops).into(),
            next_seq: (self.next_sub_seq, self.next_adv_seq, self.next_pub_seq),
        }
    }

    /// Merges a transferred snapshot into this (target) copy: the
    /// source-buffered notifications go *before* locally buffered
    /// ones, both de-duplicated by publication id.
    pub fn merge_snapshot(&mut self, snap: ClientSnapshot) {
        let local = std::mem::take(&mut self.buffered);
        self.buffered_ids.clear();
        self.seen.extend(snap.seen.iter().copied());
        for p in snap.buffered.into_iter().chain(local) {
            if !self.seen.contains(&p.id) && self.buffered_ids.insert(p.id) {
                self.buffered.push(p);
            }
        }
        let mut ops: VecDeque<ClientOp> = snap.queued_ops.into();
        ops.extend(std::mem::take(&mut self.queued_ops));
        self.queued_ops = ops;
        self.next_sub_seq = self.next_sub_seq.max(snap.next_seq.0);
        self.next_adv_seq = self.next_adv_seq.max(snap.next_seq.1);
        self.next_pub_seq = self.next_pub_seq.max(snap.next_seq.2);
    }

    /// Hands a notification to the stub; see [`DeliverOutcome`].
    pub fn deliver(&mut self, p: PublicationMsg) -> DeliverOutcome {
        if self.seen.contains(&p.id) {
            return DeliverOutcome::Duplicate;
        }
        match self.state {
            ClientState::Started => {
                self.seen.insert(p.id);
                self.app_inbox.push(p);
                DeliverOutcome::Surfaced
            }
            s if s.buffers_notifications() => {
                if self.buffered_ids.insert(p.id) {
                    self.buffered.push(p);
                    DeliverOutcome::Buffered
                } else {
                    DeliverOutcome::Duplicate
                }
            }
            _ => DeliverOutcome::Duplicate,
        }
    }

    /// Surfaces all buffered notifications (on start/resume); returns
    /// the newly surfaced ones in order.
    pub fn flush_buffered(&mut self) -> Vec<PublicationMsg> {
        let mut out = Vec::new();
        self.buffered_ids.clear();
        for p in std::mem::take(&mut self.buffered) {
            if self.seen.insert(p.id) {
                self.app_inbox.push(p.clone());
                out.push(p);
            }
        }
        out
    }

    /// Queues an application command for execution after the movement
    /// completes.
    pub fn queue_op(&mut self, op: ClientOp) {
        self.queued_ops.push_back(op);
    }

    /// Drains the queued application commands.
    pub fn drain_ops(&mut self) -> Vec<ClientOp> {
        std::mem::take(&mut self.queued_ops).into()
    }

    /// Registers a new subscription, assigning its id.
    pub fn new_subscription(&mut self, filter: Filter) -> Subscription {
        let id = SubId::new(self.id, self.next_sub_seq);
        self.next_sub_seq += 1;
        let s = Subscription::new(id, filter);
        self.subs.insert(id.seq, s.clone());
        s
    }

    /// Removes a subscription by client-local sequence number.
    pub fn remove_subscription(&mut self, seq: u32) -> Option<Subscription> {
        self.subs.remove(&seq)
    }

    /// Registers a new advertisement, assigning its id.
    pub fn new_advertisement(&mut self, filter: Filter) -> Advertisement {
        let id = AdvId::new(self.id, self.next_adv_seq);
        self.next_adv_seq += 1;
        let a = Advertisement::new(id, filter);
        self.advs.insert(id.seq, a.clone());
        a
    }

    /// Removes an advertisement by client-local sequence number.
    pub fn remove_advertisement(&mut self, seq: u32) -> Option<Advertisement> {
        self.advs.remove(&seq)
    }

    /// Allocates the next publication id. Client ids are assumed to
    /// fit in 32 bits (they do throughout this workspace), keeping
    /// publication ids globally unique.
    pub fn next_pub_id(&mut self) -> PubId {
        let id = PubId((self.id.0 << 32) | u64::from(self.next_pub_seq));
        self.next_pub_seq += 1;
        id
    }

    /// Notifications surfaced to the application so far, in order.
    pub fn app_inbox(&self) -> &[PublicationMsg] {
        &self.app_inbox
    }

    /// Drains the surfaced-notification log.
    pub fn take_app_inbox(&mut self) -> Vec<PublicationMsg> {
        std::mem::take(&mut self.app_inbox)
    }

    /// Number of notifications currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffered.len()
    }

    /// Number of queued application commands.
    pub fn queued_len(&self) -> usize {
        self.queued_ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::Publication;

    fn pubmsg(id: u64, x: i64) -> PublicationMsg {
        PublicationMsg::new(PubId(id), ClientId(99), Publication::new().with("x", x))
    }

    #[test]
    fn started_client_surfaces_and_dedupes() {
        let mut c = HostedClient::started(ClientId(1));
        assert_eq!(c.deliver(pubmsg(1, 5)), DeliverOutcome::Surfaced);
        assert_eq!(c.deliver(pubmsg(1, 5)), DeliverOutcome::Duplicate);
        assert_eq!(c.app_inbox().len(), 1);
    }

    #[test]
    fn paused_client_buffers_then_flushes_in_order() {
        let mut c = HostedClient::started(ClientId(1));
        c.set_state(ClientState::PauseMove);
        assert_eq!(c.deliver(pubmsg(1, 5)), DeliverOutcome::Buffered);
        assert_eq!(c.deliver(pubmsg(2, 6)), DeliverOutcome::Buffered);
        assert_eq!(c.deliver(pubmsg(1, 5)), DeliverOutcome::Duplicate);
        c.set_state(ClientState::Started);
        let flushed = c.flush_buffered();
        assert_eq!(flushed.len(), 2);
        assert_eq!(flushed[0].id, PubId(1));
        assert_eq!(c.app_inbox().len(), 2);
        // A replay after flush is a duplicate.
        assert_eq!(c.deliver(pubmsg(2, 6)), DeliverOutcome::Duplicate);
    }

    #[test]
    fn snapshot_merge_dedupes_and_orders_source_first() {
        // Source copy buffers pubs 1,2; target copy buffers 2,3.
        let mut src = HostedClient::started(ClientId(1));
        src.set_state(ClientState::PauseMove);
        src.deliver(pubmsg(1, 0));
        src.deliver(pubmsg(2, 0));
        let snap = src.take_snapshot();
        assert_eq!(src.buffered_len(), 0);

        let mut tgt = HostedClient::created_from_profile(ClientId(1), &ClientProfile::default());
        tgt.deliver(pubmsg(2, 0));
        tgt.deliver(pubmsg(3, 0));
        tgt.merge_snapshot(snap);
        tgt.set_state(ClientState::Started);
        let flushed = tgt.flush_buffered();
        let ids: Vec<u64> = flushed.iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn snapshot_carries_seen_set() {
        let mut src = HostedClient::started(ClientId(1));
        src.deliver(pubmsg(7, 0)); // surfaced at source
        src.set_state(ClientState::PauseMove);
        let snap = src.take_snapshot();
        let mut tgt = HostedClient::created_from_profile(ClientId(1), &ClientProfile::default());
        // In-flight duplicate arrives at the target before the merge…
        tgt.deliver(pubmsg(7, 0));
        tgt.merge_snapshot(snap);
        tgt.set_state(ClientState::Started);
        // …and is suppressed by the transferred seen set.
        assert!(tgt.flush_buffered().is_empty());
    }

    #[test]
    fn queued_ops_transfer_source_first() {
        let mut src = HostedClient::started(ClientId(1));
        src.set_state(ClientState::PauseMove);
        src.queue_op(ClientOp::Publish(Publication::new().with("o", 1)));
        let snap = src.take_snapshot();
        let mut tgt = HostedClient::created_from_profile(ClientId(1), &ClientProfile::default());
        tgt.queue_op(ClientOp::Publish(Publication::new().with("o", 2)));
        tgt.merge_snapshot(snap);
        let ops = tgt.drain_ops();
        assert_eq!(ops.len(), 2);
        assert!(
            matches!(&ops[0], ClientOp::Publish(p) if p.get("o") == Some(&transmob_pubsub::Value::Int(1)))
        );
    }

    #[test]
    fn id_sequences_survive_moves() {
        let mut src = HostedClient::started(ClientId(1));
        let s0 = src.new_subscription(Filter::builder().any("x").build());
        assert_eq!(s0.id.seq, 0);
        let _ = src.new_advertisement(Filter::builder().any("x").build());
        let _ = src.next_pub_id();
        src.set_state(ClientState::PauseMove);
        let snap = src.take_snapshot();
        let mut tgt = HostedClient::created_from_profile(ClientId(1), &src.profile());
        tgt.merge_snapshot(snap);
        let s1 = tgt.new_subscription(Filter::builder().any("y").build());
        assert_eq!(s1.id.seq, 1, "sequence must continue after a move");
        assert_eq!(tgt.next_pub_id(), PubId((1u64 << 32) | 1));
    }

    #[test]
    fn profile_round_trip() {
        let mut c = HostedClient::started(ClientId(4));
        c.new_subscription(Filter::builder().ge("x", 1).build());
        c.new_advertisement(Filter::builder().le("x", 9).build());
        let p = c.profile();
        assert_eq!(p.subs.len(), 1);
        assert_eq!(p.advs.len(), 1);
        let copy = HostedClient::created_from_profile(ClientId(4), &p);
        assert_eq!(copy.profile(), p);
        assert_eq!(copy.state(), ClientState::Created);
    }

    #[test]
    fn clean_client_drops_notifications() {
        let mut c = HostedClient::started(ClientId(1));
        c.set_state(ClientState::Clean);
        assert_eq!(c.deliver(pubmsg(1, 0)), DeliverOutcome::Duplicate);
        assert_eq!(c.buffered_len(), 0);
    }

    #[test]
    fn unsubscribe_removes_from_profile() {
        let mut c = HostedClient::started(ClientId(1));
        let s = c.new_subscription(Filter::builder().any("x").build());
        assert!(c.remove_subscription(s.id.seq).is_some());
        assert!(c.profile().subs.is_empty());
        assert!(c.remove_subscription(s.id.seq).is_none());
    }
}
