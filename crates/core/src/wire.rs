//! Binary wire encoding ([`Wire`]) for the movement-protocol message
//! family and the unified [`Message`] envelope.
//!
//! Tag bytes are part of the wire contract (DESIGN.md §13) and must
//! never be renumbered. `Message`: 0 PubSub, 1 Move, 2 BrokerDeath.
//! `MoveMsg`: the
//! variants in declaration order, 0 Negotiate … 9 CovDone. `ClientOp`:
//! declaration order, 0 Subscribe … 7 MoveTo. `ProtocolKind`:
//! 0 Reconfig, 1 Covering.

use transmob_broker::PubSubMsg;
use transmob_pubsub::wire::{Wire, WireError, WireReader, WireWriter};
use transmob_pubsub::{
    Advertisement, BrokerId, ClientId, Filter, MoveId, PubId, Publication, PublicationMsg,
    Subscription,
};

use crate::messages::{ClientOp, ClientProfile, ClientSnapshot, Message, MoveMsg, ProtocolKind};

impl Wire for ProtocolKind {
    fn enc(&self, w: &mut WireWriter<'_>) {
        w.byte(match self {
            ProtocolKind::Reconfig => 0,
            ProtocolKind::Covering => 1,
        });
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ProtocolKind::Reconfig),
            1 => Ok(ProtocolKind::Covering),
            t => Err(WireError(format!("unknown protocol tag {t}"))),
        }
    }
}

impl Wire for ClientProfile {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.subs.enc(w);
        self.advs.enc(w);
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ClientProfile {
            subs: Vec::<Subscription>::dec(r)?,
            advs: Vec::<Advertisement>::dec(r)?,
        })
    }
}

impl Wire for ClientOp {
    fn enc(&self, w: &mut WireWriter<'_>) {
        match self {
            ClientOp::Subscribe(f) => {
                w.byte(0);
                f.enc(w);
            }
            ClientOp::Unsubscribe(seq) => {
                w.byte(1);
                seq.enc(w);
            }
            ClientOp::Advertise(f) => {
                w.byte(2);
                f.enc(w);
            }
            ClientOp::Unadvertise(seq) => {
                w.byte(3);
                seq.enc(w);
            }
            ClientOp::Publish(p) => {
                w.byte(4);
                p.enc(w);
            }
            ClientOp::Pause => w.byte(5),
            ClientOp::Resume => w.byte(6),
            ClientOp::MoveTo(b, proto) => {
                w.byte(7);
                b.enc(w);
                proto.enc(w);
            }
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(ClientOp::Subscribe(Filter::dec(r)?)),
            1 => Ok(ClientOp::Unsubscribe(u32::dec(r)?)),
            2 => Ok(ClientOp::Advertise(Filter::dec(r)?)),
            3 => Ok(ClientOp::Unadvertise(u32::dec(r)?)),
            4 => Ok(ClientOp::Publish(Publication::dec(r)?)),
            5 => Ok(ClientOp::Pause),
            6 => Ok(ClientOp::Resume),
            7 => Ok(ClientOp::MoveTo(BrokerId::dec(r)?, ProtocolKind::dec(r)?)),
            t => Err(WireError(format!("unknown client-op tag {t}"))),
        }
    }
}

impl Wire for ClientSnapshot {
    fn enc(&self, w: &mut WireWriter<'_>) {
        self.buffered.enc(w);
        self.seen.enc(w);
        self.queued_ops.enc(w);
        let (s, a, p) = self.next_seq;
        s.enc(w);
        a.enc(w);
        p.enc(w);
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ClientSnapshot {
            buffered: Vec::<PublicationMsg>::dec(r)?,
            seen: Vec::<PubId>::dec(r)?,
            queued_ops: Vec::<ClientOp>::dec(r)?,
            next_seq: (u32::dec(r)?, u32::dec(r)?, u32::dec(r)?),
        })
    }
}

impl Wire for MoveMsg {
    fn enc(&self, w: &mut WireWriter<'_>) {
        match self {
            MoveMsg::Negotiate {
                m,
                client,
                source,
                target,
                profile,
                protocol,
            } => {
                w.byte(0);
                m.enc(w);
                client.enc(w);
                source.enc(w);
                target.enc(w);
                profile.enc(w);
                protocol.enc(w);
            }
            MoveMsg::Reject { m, source, target } => {
                w.byte(1);
                m.enc(w);
                source.enc(w);
                target.enc(w);
            }
            MoveMsg::Reconfigure {
                m,
                client,
                source,
                target,
                profile,
            } => {
                w.byte(2);
                m.enc(w);
                client.enc(w);
                source.enc(w);
                target.enc(w);
                profile.enc(w);
            }
            MoveMsg::StateTransfer {
                m,
                client,
                source,
                target,
                snapshot,
            } => {
                w.byte(3);
                m.enc(w);
                client.enc(w);
                source.enc(w);
                target.enc(w);
                snapshot.enc(w);
            }
            MoveMsg::Ack { m, source, target } => {
                w.byte(4);
                m.enc(w);
                source.enc(w);
                target.enc(w);
            }
            MoveMsg::AbortMove {
                m,
                client,
                source,
                target,
                toward,
            } => {
                w.byte(5);
                m.enc(w);
                client.enc(w);
                source.enc(w);
                target.enc(w);
                toward.enc(w);
            }
            MoveMsg::CovRequest {
                m,
                client,
                source,
                target,
            } => {
                w.byte(6);
                m.enc(w);
                client.enc(w);
                source.enc(w);
                target.enc(w);
            }
            MoveMsg::CovAccept { m, source, target } => {
                w.byte(7);
                m.enc(w);
                source.enc(w);
                target.enc(w);
            }
            MoveMsg::CovTransfer {
                m,
                client,
                source,
                target,
                profile,
                snapshot,
            } => {
                w.byte(8);
                m.enc(w);
                client.enc(w);
                source.enc(w);
                target.enc(w);
                profile.enc(w);
                snapshot.enc(w);
            }
            MoveMsg::CovDone { m, source, target } => {
                w.byte(9);
                m.enc(w);
                source.enc(w);
                target.enc(w);
            }
        }
    }

    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = r.byte()?;
        let m = MoveId::dec(r)?;
        Ok(match tag {
            0 => MoveMsg::Negotiate {
                m,
                client: ClientId::dec(r)?,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
                profile: ClientProfile::dec(r)?,
                protocol: ProtocolKind::dec(r)?,
            },
            1 => MoveMsg::Reject {
                m,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
            },
            2 => MoveMsg::Reconfigure {
                m,
                client: ClientId::dec(r)?,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
                profile: ClientProfile::dec(r)?,
            },
            3 => MoveMsg::StateTransfer {
                m,
                client: ClientId::dec(r)?,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
                snapshot: ClientSnapshot::dec(r)?,
            },
            4 => MoveMsg::Ack {
                m,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
            },
            5 => MoveMsg::AbortMove {
                m,
                client: ClientId::dec(r)?,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
                toward: BrokerId::dec(r)?,
            },
            6 => MoveMsg::CovRequest {
                m,
                client: ClientId::dec(r)?,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
            },
            7 => MoveMsg::CovAccept {
                m,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
            },
            8 => MoveMsg::CovTransfer {
                m,
                client: ClientId::dec(r)?,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
                profile: ClientProfile::dec(r)?,
                snapshot: ClientSnapshot::dec(r)?,
            },
            9 => MoveMsg::CovDone {
                m,
                source: BrokerId::dec(r)?,
                target: BrokerId::dec(r)?,
            },
            t => return Err(WireError(format!("unknown move tag {t}"))),
        })
    }
}

impl Wire for Message {
    fn enc(&self, w: &mut WireWriter<'_>) {
        match self {
            Message::PubSub(p) => {
                w.byte(0);
                p.enc(w);
            }
            Message::Move(m) => {
                w.byte(1);
                m.enc(w);
            }
            Message::BrokerDeath { dead } => {
                w.byte(2);
                dead.enc(w);
            }
        }
    }
    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(Message::PubSub(PubSubMsg::dec(r)?)),
            1 => Ok(Message::Move(MoveMsg::dec(r)?)),
            2 => Ok(Message::BrokerDeath {
                dead: BrokerId::dec(r)?,
            }),
            t => Err(WireError(format!("unknown message tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::wire::{decode_one, encode_one};
    use transmob_pubsub::{AdvId, SubId};

    fn profile() -> ClientProfile {
        ClientProfile {
            subs: vec![Subscription::new(
                SubId::new(ClientId(4), 0),
                Filter::builder()
                    .eq("class", "stock")
                    .lt("price", 50)
                    .build(),
            )],
            advs: vec![Advertisement::new(
                AdvId::new(ClientId(4), 1),
                Filter::builder().any("price").build(),
            )],
        }
    }

    fn snapshot() -> ClientSnapshot {
        ClientSnapshot {
            buffered: vec![PublicationMsg::new(
                PubId(3),
                ClientId(8),
                Publication::new().with("price", 12).with("class", "stock"),
            )],
            seen: vec![PubId(1), PubId(2)],
            queued_ops: vec![
                ClientOp::Publish(Publication::new().with("price", 9)),
                ClientOp::Pause,
                ClientOp::MoveTo(BrokerId(3), ProtocolKind::Covering),
                ClientOp::Unsubscribe(2),
            ],
            next_seq: (5, 2, 11),
        }
    }

    #[test]
    fn every_move_variant_round_trips() {
        let m = MoveId(42);
        let (c, s, t) = (ClientId(4), BrokerId(0), BrokerId(2));
        let msgs = vec![
            MoveMsg::Negotiate {
                m,
                client: c,
                source: s,
                target: t,
                profile: profile(),
                protocol: ProtocolKind::Reconfig,
            },
            MoveMsg::Reject {
                m,
                source: s,
                target: t,
            },
            MoveMsg::Reconfigure {
                m,
                client: c,
                source: s,
                target: t,
                profile: profile(),
            },
            MoveMsg::StateTransfer {
                m,
                client: c,
                source: s,
                target: t,
                snapshot: snapshot(),
            },
            MoveMsg::Ack {
                m,
                source: s,
                target: t,
            },
            MoveMsg::AbortMove {
                m,
                client: c,
                source: s,
                target: t,
                toward: s,
            },
            MoveMsg::CovRequest {
                m,
                client: c,
                source: s,
                target: t,
            },
            MoveMsg::CovAccept {
                m,
                source: s,
                target: t,
            },
            MoveMsg::CovTransfer {
                m,
                client: c,
                source: s,
                target: t,
                profile: profile(),
                snapshot: snapshot(),
            },
            MoveMsg::CovDone {
                m,
                source: s,
                target: t,
            },
        ];
        for msg in &msgs {
            let env = Message::Move(msg.clone());
            let bytes = encode_one(&env);
            assert_eq!(decode_one::<Message>(&bytes).expect("decode"), env);
        }
    }

    #[test]
    fn broker_death_round_trips() {
        let env = Message::BrokerDeath { dead: BrokerId(7) };
        let bytes = encode_one(&env);
        assert_eq!(decode_one::<Message>(&bytes).expect("decode"), env);
    }

    #[test]
    fn binary_is_denser_than_json_for_a_state_transfer() {
        let env = Message::Move(MoveMsg::StateTransfer {
            m: MoveId(1),
            client: ClientId(4),
            source: BrokerId(0),
            target: BrokerId(2),
            snapshot: snapshot(),
        });
        let bytes = encode_one(&env);
        let json = serde_json::to_string(&env).unwrap();
        assert!(
            bytes.len() * 2 < json.len(),
            "binary {} bytes vs json {} bytes",
            bytes.len(),
            json.len()
        );
    }
}
