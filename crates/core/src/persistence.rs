//! Durability: persisting and restoring broker state (the paper's
//! Sec. 3.5 fault-tolerance sketch).
//!
//! The paper argues its routing-layer properties can be made
//! fault-tolerant by persisting each broker's **algorithmic state**
//! (routing tables, protocol bookkeeping) and **queue state**
//! (undelivered messages), recovering both after a crash. This module
//! provides the algorithmic half: a [`BrokerSnapshot`] captures
//! everything a [`MobileBroker`] knows — the routing core, the hosted
//! client stubs (including buffered notifications and queued
//! commands), and the in-flight movement bookkeeping — as plain
//! serializable data. [`MobileBroker::snapshot`] and
//! [`MobileBroker::restore`] round-trip it; the drivers persist queue
//! state themselves (the simulator's crash model holds queues, the
//! write-ahead log in `transmob-sim::wal` persists them to disk).
//!
//! A snapshot is only as fresh as the moment it was taken: restoring a
//! stale snapshot silently forgets routing state acquired afterwards,
//! exactly like restarting a real broker from an old checkpoint — the
//! `durability` integration tests demonstrate both the healthy
//! round-trip and the stale-checkpoint hazard.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use transmob_broker::{BrokerCore, Topology};
use transmob_pubsub::{ClientId, MoveId};

use crate::client_stub::HostedClient;
use crate::mobile_broker::{MobileBroker, MobileBrokerConfig};

/// The serializable algorithmic state of a [`MobileBroker`].
///
/// Everything except the topology handle and the (static)
/// configuration, which the restoring site supplies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerSnapshot {
    /// The routing core: SRT, PRT, covering state, pending
    /// configurations.
    pub core: BrokerCore,
    /// Hosted client stubs with their buffers and dedup state.
    pub clients: BTreeMap<ClientId, HostedClient>,
    /// Movement bookkeeping (opaque, versioned with the crate).
    pub moves: MovesSnapshot,
    /// Movement-id allocation counter.
    pub next_move_seq: u32,
    /// The overlay topology as this broker saw it at checkpoint time.
    /// Brokers repair their topology copy on broker death, so a
    /// checkpoint taken after a repair must restore the repaired
    /// overlay, not the one the restoring site was configured with.
    /// `None` falls back to the restoring site's topology.
    pub topology: Option<Topology>,
}

/// Serialized movement bookkeeping (source/target/path records).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MovesSnapshot {
    /// Source-side records.
    pub src: Vec<(MoveId, crate::mobile_broker::SourceMoveRecord)>,
    /// Target-side records.
    pub tgt: Vec<(MoveId, crate::mobile_broker::TargetMoveRecord)>,
    /// Path-broker records.
    pub path: Vec<(MoveId, crate::mobile_broker::PathMoveRecord)>,
}

impl MobileBroker {
    /// Captures the broker's full algorithmic state.
    pub fn snapshot(&self) -> BrokerSnapshot {
        BrokerSnapshot {
            core: self.core().clone(),
            clients: self
                .clients()
                .map(|(id, stub)| (*id, stub.clone()))
                .collect(),
            moves: self.moves_snapshot(),
            next_move_seq: self.next_move_seq_value(),
            topology: Some(self.topology().clone()),
        }
    }

    /// Reconstructs a broker from a snapshot, re-binding it to the
    /// overlay topology and configuration of the restoring site.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's broker id is not in `topology`.
    pub fn restore(
        topology: Arc<Topology>,
        config: MobileBrokerConfig,
        snapshot: BrokerSnapshot,
    ) -> MobileBroker {
        let id = snapshot.core.id();
        let topology = match snapshot.topology {
            Some(t) => Arc::new(t),
            None => topology,
        };
        assert!(
            topology.contains(id),
            "snapshot broker {id} not in topology"
        );
        MobileBroker::from_parts(
            snapshot.core,
            topology,
            config,
            snapshot.clients,
            snapshot.moves,
            snapshot.next_move_seq,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ClientOp;
    use transmob_pubsub::{BrokerId, Filter};

    #[test]
    fn snapshot_round_trips_through_json() {
        let topo = Arc::new(Topology::chain(3));
        let mut b = MobileBroker::new(
            BrokerId(1),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        b.create_client(ClientId(7));
        let _ = b.client_op(
            ClientId(7),
            ClientOp::Subscribe(Filter::builder().ge("x", 0).build()),
        );
        let _ = b.client_op(
            ClientId(7),
            ClientOp::Advertise(Filter::builder().le("x", 9).build()),
        );
        let snap = b.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize snapshot");
        let back: BrokerSnapshot = serde_json::from_str(&json).expect("restore snapshot");
        let restored = MobileBroker::restore(topo, MobileBrokerConfig::reconfig(), back);
        assert_eq!(restored.id(), BrokerId(1));
        assert_eq!(restored.core().prt().len(), b.core().prt().len());
        assert_eq!(restored.core().srt().len(), b.core().srt().len());
        let stub = restored.client(ClientId(7)).expect("client restored");
        assert_eq!(stub.profile(), b.client(ClientId(7)).unwrap().profile());
    }

    #[test]
    #[should_panic(expected = "not in topology")]
    fn restore_rejects_foreign_topology() {
        let topo = Arc::new(Topology::chain(3));
        let b = MobileBroker::new(
            BrokerId(3),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        // A legacy snapshot (no stored topology) falls back to the
        // restoring site's overlay, which must contain the broker.
        let mut snap = b.snapshot();
        snap.topology = None;
        let other = Arc::new(Topology::chain(2));
        let _ = MobileBroker::restore(other, MobileBrokerConfig::reconfig(), snap);
    }

    #[test]
    fn restore_prefers_the_snapshotted_topology() {
        let topo = Arc::new(Topology::chain(4));
        let b = MobileBroker::new(
            BrokerId(3),
            Arc::clone(&topo),
            MobileBrokerConfig::reconfig(),
        );
        let snap = b.snapshot();
        // The restoring site hands in a stale overlay; the snapshot's
        // own (possibly repaired) copy wins.
        let stale = Arc::new(Topology::chain(3));
        let restored = MobileBroker::restore(stale, MobileBrokerConfig::reconfig(), snap);
        assert_eq!(restored.topology().len(), 4);
    }
}
