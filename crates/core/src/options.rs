//! The single options struct every mobile-broker driver accepts.
//!
//! [`NetworkOptions`] wraps [`MobileBrokerConfig`] so that all four
//! drivers — [`crate::InstantNet`], `transmob_broker::SyncNet`, the
//! simulator, and the TCP runtime — share one `builder().overlay(..)
//! .options(..).start()` construction surface. Anything convertible
//! (`MobileBrokerConfig`, a bare routing-layer
//! [`BrokerConfig`](transmob_broker::BrokerConfig), or the options
//! struct itself) can be passed to an `options(..)` call.

use transmob_broker::BrokerConfig;
use transmob_pubsub::Parallelism;

use crate::mobile_broker::MobileBrokerConfig;

/// Driver-independent network options: the per-broker configuration
/// applied to every node of the overlay.
#[derive(Debug, Clone, Default)]
pub struct NetworkOptions {
    /// The per-broker configuration (routing + movement layers).
    pub config: MobileBrokerConfig,
}

impl NetworkOptions {
    /// Default options: plain routing, reconfiguration-protocol
    /// movement.
    pub fn new() -> Self {
        NetworkOptions::default()
    }

    /// Plain routing, reconfiguration-protocol deployment
    /// ([`MobileBrokerConfig::reconfig`]).
    pub fn reconfig() -> Self {
        MobileBrokerConfig::reconfig().into()
    }

    /// Active covering, covering-protocol deployment
    /// ([`MobileBrokerConfig::covering`]).
    pub fn covering() -> Self {
        MobileBrokerConfig::covering().into()
    }

    /// Applies a sharded / worker-pool layout to every broker's match
    /// tables.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.config.broker.parallelism = par;
        self
    }
}

impl From<MobileBrokerConfig> for NetworkOptions {
    fn from(config: MobileBrokerConfig) -> Self {
        NetworkOptions { config }
    }
}

impl From<BrokerConfig> for NetworkOptions {
    fn from(broker: BrokerConfig) -> Self {
        NetworkOptions {
            config: MobileBrokerConfig {
                broker,
                ..MobileBrokerConfig::default()
            },
        }
    }
}

impl From<NetworkOptions> for MobileBrokerConfig {
    fn from(o: NetworkOptions) -> Self {
        o.config
    }
}

impl From<NetworkOptions> for BrokerConfig {
    fn from(o: NetworkOptions) -> Self {
        o.config.broker
    }
}
